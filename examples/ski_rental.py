#!/usr/bin/env python3
"""The paper's ski-rental application (Section 4), console edition.

One shop (publisher) advertises ski-rental offers; several shoppers
(subscribers) collect them and pick the best one.  The same scenario is run
twice -- once on the TPS layer (SR-TPS) and once written directly against
JXTA (SR-JXTA) -- and the received offers are compared, illustrating the
paper's point: the two behave identically, but the TPS version is a fraction
of the code.

Run it with::

    python examples/ski_rental.py
"""

from __future__ import annotations

from repro.apps.skirental import (
    SkiRental,
    SkiRentalJxtaPublisher,
    SkiRentalJxtaSubscriber,
    SkiRentalTPSPublisher,
    SkiRentalTPSSubscriber,
)
from repro.jxta.platform import JxtaNetworkBuilder

OFFERS = [
    ("XTremShop", 100.0, "Salomon", 14.0),
    ("AlpineHut", 80.0, "Rossignol", 7.0),
    ("GlacierGear", 150.0, "Atomic", 21.0),
    ("ValleyRentals", 55.0, "Head", 3.0),
]


def run_sr_tps() -> list[SkiRental]:
    """Run the scenario on the TPS API (the paper's Section 4.3)."""
    print("=== SR-TPS: ski rental over the TPS layer ===")
    builder = JxtaNetworkBuilder(seed=7)
    builder.add_rendezvous("rdv-0")
    shop_peer = builder.add_peer("shop")
    shopper_peers = [builder.add_peer(f"shopper-{i}") for i in range(2)]

    shop = SkiRentalTPSPublisher(shop_peer)
    builder.settle(rounds=8)
    shoppers = [SkiRentalTPSSubscriber(peer) for peer in shopper_peers]
    builder.settle(rounds=12)

    for shop_name, price, brand, days in OFFERS:
        shop.publish_offer(SkiRental(shop_name, price, brand, days))
        builder.settle(rounds=2)
    builder.settle(rounds=8)

    for shopper in shoppers:
        best = shopper.best_offer()
        print(
            f"[{shopper.peer.name}] received {shopper.received_count()} offers; "
            f"best per day: {best}"
        )
    return shoppers[0].received_offers()


def run_sr_jxta() -> list[SkiRental]:
    """Run the very same scenario written directly against JXTA (Section 4.4)."""
    print()
    print("=== SR-JXTA: the same application written directly on JXTA ===")
    builder = JxtaNetworkBuilder(seed=7)
    builder.add_rendezvous("rdv-0")
    shop_peer = builder.add_peer("shop")
    shopper_peers = [builder.add_peer(f"shopper-{i}") for i in range(2)]

    shop = SkiRentalJxtaPublisher(shop_peer)
    builder.settle(rounds=8)
    shoppers = [
        SkiRentalJxtaSubscriber(peer, create_if_missing=False) for peer in shopper_peers
    ]
    builder.settle(rounds=12)

    for shop_name, price, brand, days in OFFERS:
        shop.publish_offer(SkiRental(shop_name, price, brand, days))
        builder.settle(rounds=2)
    builder.settle(rounds=8)

    for shopper in shoppers:
        print(f"[{shopper.peer.name}] received {shopper.received_count()} offers")
    return shoppers[0].received_offers()


def main() -> None:
    tps_offers = run_sr_tps()
    jxta_offers = run_sr_jxta()
    print()
    same = [str(o) for o in tps_offers] == [str(o) for o in jxta_offers]
    print(f"SR-TPS and SR-JXTA delivered the same offers in the same order: {same}")
    print(
        "The difference is the code you had to write: compare "
        "repro/apps/skirental/tps_app.py with repro/apps/skirental/jxta_app.py."
    )


if __name__ == "__main__":
    main()
