"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works with older setuptools/pip combinations that lack
PEP 660 editable-install support (no ``wheel`` package available offline).
"""

from setuptools import setup

setup()
