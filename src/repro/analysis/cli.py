"""The ``python -m repro lint`` command.

Exit-code contract (the part CI scripts depend on):

* **0** -- no findings after inline suppressions and baseline filtering.
* **1** -- findings remain; the text or JSON report lists them.
* **2** -- usage error: unknown rule, unreadable path, malformed baseline.

``--json`` emits the ``repro-lint/v1`` document on stdout instead of the
text report.  ``--baseline FILE`` names the grandfather file explicitly;
by default ``lint-baseline.json`` next to the current directory is used
when present (``--no-baseline`` ignores it, ``--write-baseline`` rewrites
it from the current findings).  ``--rules RL001,RL004`` restricts the run.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, List, Optional, Sequence, TextIO

from repro.analysis.baseline import Baseline
from repro.analysis.engine import LintEngine
from repro.analysis.findings import build_document, format_report
from repro.analysis.registry import LintConfigError, rule_titles
from repro.analysis.rules import DEFAULT_PROFILE

#: Baseline file auto-discovered in the working directory.
DEFAULT_BASELINE = "lint-baseline.json"

#: Tree linted when no paths are given and it exists (repo-root layout).
DEFAULT_TREE = os.path.join("src", "repro")

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _default_paths() -> List[str]:
    if os.path.isdir(DEFAULT_TREE):
        return [DEFAULT_TREE]
    return ["."]


def _split_rules(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    if not values:
        return None
    rules: List[str] = []
    for value in values:
        rules.extend(part.strip() for part in value.split(",") if part.strip())
    return rules or None


def run(
    args: Any,
    out: Optional[TextIO] = None,
    err: Optional[TextIO] = None,
) -> int:
    """Execute the lint command from parsed argparse ``args``.

    The streams default to the *current* ``sys.stdout``/``sys.stderr`` at
    call time, not import time, so output capture (pytest) works.
    """
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    try:
        return _run(args, out, err)
    except LintConfigError as error:
        print(f"lint: error: {error}", file=err)
        return EXIT_USAGE


def _run(args: Any, out: TextIO, err: TextIO) -> int:
    if getattr(args, "list_rules", False):
        for rule_id, summary in rule_titles().items():
            scope = DEFAULT_PROFILE.get(rule_id)
            where = (
                ", ".join(scope.packages)
                if scope is not None and scope.packages
                else "everywhere"
            )
            print(f"{rule_id}  {summary}  [{where}]", file=out)
        return EXIT_CLEAN

    engine = LintEngine(DEFAULT_PROFILE, rules=_split_rules(getattr(args, "rules", None)))
    paths = list(getattr(args, "paths", None) or _default_paths())
    lint_run = engine.lint_paths(paths)

    baseline_path = getattr(args, "baseline", None)
    use_baseline = not getattr(args, "no_baseline", False)
    if baseline_path is None and use_baseline and os.path.isfile(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE

    if getattr(args, "write_baseline", False):
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(lint_run.findings).write(target)
        print(
            f"wrote {len(lint_run.findings)} finding(s) to baseline {target}",
            file=out,
        )
        return EXIT_CLEAN

    baselined = 0
    findings = lint_run.findings
    if use_baseline and baseline_path is not None:
        findings, baselined = Baseline.load(baseline_path).filter(findings)

    if getattr(args, "json", False):
        document = build_document(
            findings,
            paths=paths,
            rules=list(engine.rule_ids),
            files=lint_run.files,
            suppressed=lint_run.suppressed,
            baselined=baselined,
        )
        json.dump(document, out, indent=2)
        out.write("\n")
    else:
        print(
            format_report(
                findings,
                files=lint_run.files,
                suppressed=lint_run.suppressed,
                baselined=baselined,
            ),
            file=out,
        )
    return EXIT_FINDINGS if findings else EXIT_CLEAN


__all__ = [
    "DEFAULT_BASELINE",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "run",
]
