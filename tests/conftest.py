"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.jxta.platform import JxtaNetworkBuilder


@pytest.fixture
def builder():
    """An empty simulated network builder with a fixed seed."""
    return JxtaNetworkBuilder(seed=1234)


@pytest.fixture
def lan(builder):
    """A LAN with one rendez-vous/router and three ordinary peers, settled.

    Returns the builder; peers are ``rdv-0``, ``peer-0``, ``peer-1``, ``peer-2``.
    """
    builder.add_rendezvous("rdv-0")
    for index in range(3):
        builder.add_peer(f"peer-{index}")
    builder.settle(rounds=6)
    return builder


@pytest.fixture
def two_peers(builder):
    """Two ordinary peers (no rendez-vous) on one multicast LAN, settled."""
    a = builder.add_peer("alpha", connect_rendezvous=False)
    b = builder.add_peer("beta", connect_rendezvous=False)
    builder.settle(rounds=4)
    return a, b, builder
