"""Finding objects and the ``repro-lint/v1`` JSON document.

A :class:`Finding` is one rule violation: rule id, ``file:line:column``
anchor, a one-line message and a *fix hint* pointing at the invariant's
documentation (``docs/CONCURRENCY.md``).  The ``snippet`` field carries the
stripped source line the finding anchors to -- that, not the line number, is
what the baseline matches on, so a baselined exception survives unrelated
edits above it.

:func:`build_document` renders a lint run as the ``repro-lint/v1`` JSON
document (the analysis counterpart of ``repro-bench/v1`` in
:mod:`repro.bench.perf`), and :func:`validate_document` checks one the same
way ``tests/test_perf_harness.py`` checks bench documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence, Tuple

#: The JSON document schema identifier emitted by ``python -m repro lint --json``.
SCHEMA = "repro-lint/v1"

#: Rule id reserved for files the engine cannot parse (not a registered
#: rule: a syntax error precedes every other invariant).
PARSE_ERROR_RULE = "RL000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    #: How to fix it (or where the invariant is documented).
    hint: str = ""
    #: The stripped source line the finding anchors to; the baseline key.
    snippet: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        """The identity the baseline matches on: (rule, path, snippet).

        Deliberately line-number-free, so grandfathered findings survive
        edits elsewhere in the file.
        """
        return (self.rule, _posix(self.path), self.snippet)

    def format(self) -> str:
        """``path:line:col: RULE message  [hint]`` -- the text-report line."""
        location = f"{self.path}:{self.line}:{self.column}"
        line = f"{location}: {self.rule} {self.message}"
        if self.hint:
            line = f"{line}\n    hint: {self.hint}"
        return line

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": _posix(self.path),
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
        }


def _posix(path: str) -> str:
    return path.replace("\\", "/")


@dataclass
class LintRun:
    """Everything one engine run produced, before baseline filtering."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by inline ``# repro-lint: disable=...`` pragmas.
    suppressed: int = 0
    #: Python files actually linted.
    files: int = 0


def build_document(
    findings: Sequence[Finding],
    *,
    paths: Sequence[str],
    rules: Sequence[str],
    files: int,
    suppressed: int,
    baselined: int,
) -> Dict[str, Any]:
    """Render a lint run as the ``repro-lint/v1`` JSON document."""
    from repro._version import __version__

    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "schema": SCHEMA,
        "version": __version__,
        "paths": [_posix(path) for path in paths],
        "rules": list(rules),
        "files": files,
        "findings": [finding.to_json() for finding in findings],
        "counts": dict(sorted(counts.items())),
        "suppressed": suppressed,
        "baselined": baselined,
    }


def validate_document(document: Any) -> List[str]:
    """Why ``document`` is not a well-formed ``repro-lint/v1`` document.

    Returns a list of problem strings (empty when the document is valid),
    mirroring :func:`repro.bench.perf.validate_document`.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"document must be a mapping, got {type(document).__name__}"]
    if document.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}, got {document.get('schema')!r}")
    for key, kind in (
        ("version", str),
        ("paths", list),
        ("rules", list),
        ("files", int),
        ("findings", list),
        ("counts", dict),
        ("suppressed", int),
        ("baselined", int),
    ):
        if not isinstance(document.get(key), kind):
            problems.append(f"{key} must be a {kind.__name__}")
    for index, entry in enumerate(document.get("findings") or ()):
        if not isinstance(entry, dict):
            problems.append(f"findings[{index}] must be a mapping")
            continue
        for key in ("rule", "path", "line", "column", "message", "hint", "snippet"):
            if key not in entry:
                problems.append(f"findings[{index}] missing {key!r}")
    return problems


def format_report(
    findings: Sequence[Finding],
    *,
    files: int,
    suppressed: int,
    baselined: int,
) -> str:
    """The human-readable lint report."""
    lines = [finding.format() for finding in findings]
    summary = (
        f"{len(findings)} finding(s) in {files} file(s)"
        f" ({suppressed} suppressed inline, {baselined} baselined)"
    )
    if lines:
        return "\n".join(lines) + "\n\n" + summary
    return summary


def count_by_rule(findings: Iterable[Finding]) -> Dict[str, int]:
    """Finding counts keyed by rule id, sorted by rule id."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(sorted(counts.items()))


__all__ = [
    "Finding",
    "LintRun",
    "PARSE_ERROR_RULE",
    "SCHEMA",
    "build_document",
    "count_by_rule",
    "format_report",
    "validate_document",
]
