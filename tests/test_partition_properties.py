"""Property tests for the sharded bus's partition function.

The partition contract (module docstring of :mod:`repro.core.sharded_engine`)
promises four things this file pins with hypothesis and deterministic
corpora:

* *stability*: a key's shard assignment never changes -- across repeated
  calls, and across independently built buses with the same parameters
  (CRC-32, not Python's randomised ``hash``);
* *coverage*: every shard is reachable (no dead shards that would silently
  halve a deployment's capacity);
* *ordering*: per-key delivery order is preserved under ``publish_many``,
  even though distinct keys' shards run concurrently on the executor;
* *error path*: content-keyed mode with the declared attribute missing (or
  a raising callable partition) surfaces as :class:`PSException` from the
  publish call -- never a raw ``AttributeError`` crash -- and the bus stays
  fully usable afterwards.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.exceptions import PSException
from repro.core.local_engine import LocalTPSEngine
from repro.core.sharded_engine import ShardedLocalBus


@dataclasses.dataclass
class Tick:
    symbol: str = ""
    price: float = 0.0
    sequence: int = 0


_ROOT = f"{Tick.__module__}.{Tick.__qualname__}"

_keys = st.text(min_size=0, max_size=24)
_shard_counts = st.integers(min_value=1, max_value=16)


class TestStability:
    @settings(max_examples=60, deadline=None)
    @given(key=_keys, shards=_shard_counts)
    def test_assignment_is_stable_across_calls_and_buses(self, key, shards):
        bus = ShardedLocalBus(shards, partition="content", content_key="symbol")
        twin = ShardedLocalBus(shards, partition="content", content_key="symbol")
        event = Tick(symbol=key)
        first = bus.partition_index(_ROOT, event)
        assert 0 <= first < shards
        assert all(bus.partition_index(_ROOT, event) == first for _ in range(5))
        # An independently built bus with the same parameters agrees: the
        # hash is content-defined, not instance- or process-defined.
        assert twin.partition_index(_ROOT, Tick(symbol=key)) == first

    @settings(max_examples=30, deadline=None)
    @given(key=_keys, shards=_shard_counts)
    def test_callable_partition_agrees_with_its_key(self, key, shards):
        bus = ShardedLocalBus(shards, partition=lambda event: event.symbol)
        content = ShardedLocalBus(shards, partition="content", content_key="symbol")
        event = Tick(symbol=key)
        # A callable returning the same key lands on the same shard as the
        # content mode: both hash str(key) against the root name.
        assert bus.partition_index(_ROOT, event) == content.partition_index(
            _ROOT, event
        )


class TestCoverage:
    @pytest.mark.parametrize("shards", [2, 3, 4, 8, 16])
    def test_every_shard_reachable_over_a_key_corpus(self, shards):
        bus = ShardedLocalBus(shards, partition="content", content_key="symbol")
        hit = {
            bus.partition_index(_ROOT, Tick(symbol=f"symbol-{index}"))
            for index in range(64 * shards)
        }
        assert hit == set(range(shards))

    def test_distinct_hierarchies_spread_independently(self):
        # The root name participates in the hash: two hierarchies sharing
        # key values must not be forced onto identical shard sequences.
        bus = ShardedLocalBus(8, partition="content", content_key="symbol")
        keys = [f"symbol-{index}" for index in range(64)]
        a = [bus.partition_index("pkg.RootA", Tick(symbol=key)) for key in keys]
        b = [bus.partition_index("pkg.RootB", Tick(symbol=key)) for key in keys]
        assert a != b


class TestOrdering:
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        sequence=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40),
        shards=st.integers(min_value=2, max_value=6),
    )
    def test_per_key_order_preserved_under_publish_many(self, sequence, shards):
        bus = ShardedLocalBus(shards, partition="content", content_key="symbol")
        publisher = LocalTPSEngine(Tick, bus=bus)
        subscriber = LocalTPSEngine(Tick, bus=bus)
        inbox: List[Tick] = []
        subscriber.subscribe(inbox.append)
        events = [
            Tick(symbol=f"symbol-{key}", sequence=position)
            for position, key in enumerate(sequence)
        ]
        try:
            receipts = publisher.publish_many(events)
        finally:
            bus.shutdown()
        # Exactly-once: one delivery per job, every event in the inbox once.
        assert [receipt.wire_receipts[0] for receipt in receipts] == [1] * len(events)
        assert sorted(event.sequence for event in inbox) == list(range(len(events)))
        # Per-key ordering: each key's events arrive in publish order even
        # though distinct keys' shard groups ran concurrently.
        arrived: Dict[str, List[int]] = {}
        for event in inbox:
            arrived.setdefault(event.symbol, []).append(event.sequence)
        for symbol, sequences in arrived.items():
            expected = [
                event.sequence for event in events if event.symbol == symbol
            ]
            assert sequences == expected, symbol


class TestContentKeyErrorPath:
    def test_missing_attribute_raises_psexception_not_attributeerror(self):
        bus = ShardedLocalBus(4, partition="content", content_key="symbol")
        publisher = LocalTPSEngine(Tick, bus=bus)
        subscriber = LocalTPSEngine(Tick, bus=bus)
        inbox: List[Any] = []
        subscriber.subscribe(inbox.append)
        event = Tick(symbol="ok", sequence=1)

        class KeylessTick(Tick):
            def __getattribute__(self, name: str) -> Any:
                if name == "symbol":
                    raise AttributeError(name)
                return super().__getattribute__(name)

        with pytest.raises(PSException) as excinfo:
            bus.partition_key(KeylessTick())
        message = str(excinfo.value)
        assert "symbol" in message and "content" in message
        # The bus remains fully usable: the error path is a report, not a
        # corruption.
        publisher.publish(event)
        assert [e.sequence for e in inbox] == [1]

    def test_publish_surfaces_the_error_from_the_publish_call(self):
        bus = ShardedLocalBus(4, partition="content", content_key="missing_attr")
        publisher = LocalTPSEngine(Tick, bus=bus)
        with pytest.raises(PSException) as excinfo:
            publisher.publish(Tick(symbol="x"))
        assert "missing_attr" in str(excinfo.value)

    def test_raising_callable_partition_wrapped_in_psexception(self):
        def broken(event: Any) -> str:
            raise RuntimeError("partition exploded")

        bus = ShardedLocalBus(4, partition=broken)
        publisher = LocalTPSEngine(Tick, bus=bus)
        with pytest.raises(PSException) as excinfo:
            publisher.publish(Tick(symbol="x"))
        assert "partition exploded" in str(excinfo.value)

    def test_publish_many_fails_closed_on_a_bad_key(self):
        bus = ShardedLocalBus(4, partition="content", content_key="symbol")
        publisher = LocalTPSEngine(Tick, bus=bus)
        subscriber = LocalTPSEngine(Tick, bus=bus)
        inbox: List[Any] = []
        subscriber.subscribe(inbox.append)

        class KeylessTick(Tick):
            def __getattribute__(self, name: str) -> Any:
                if name == "symbol":
                    raise AttributeError(name)
                return super().__getattribute__(name)

        batch: List[Any] = [Tick(symbol="a"), KeylessTick(), Tick(symbol="b")]
        with pytest.raises(PSException):
            bus.publish_all([(publisher, event) for event in batch])
        # Grouping failed before any delivery: nothing was half-published.
        assert inbox == []


class TestConstructorValidation:
    def test_content_mode_requires_content_key(self):
        with pytest.raises(PSException):
            ShardedLocalBus(4, partition="content")

    def test_content_key_requires_content_mode(self):
        with pytest.raises(PSException):
            ShardedLocalBus(4, partition="root", content_key="symbol")

    def test_unknown_partition_mode_rejected(self):
        with pytest.raises(PSException):
            ShardedLocalBus(4, partition="bogus")

    def test_root_mode_keeps_hierarchy_on_one_shard(self):
        bus = ShardedLocalBus(4)
        assert not bus.intra_hierarchy
        home = bus.shard_index(_ROOT)
        for index in range(16):
            assert bus.partition_index(_ROOT, Tick(symbol=f"s{index}")) == home
