"""Tests for the metric collection helpers (repro.net.metrics)."""

from __future__ import annotations

import pytest

from repro.net.metrics import Counter, MetricsRegistry, TimeSeries, Timer, summarize


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.increment(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.increment(3)
        counter.reset()
        assert counter.value == 0


class TestTimer:
    def test_statistics(self):
        timer = Timer("t")
        for value in (1.0, 2.0, 3.0):
            timer.observe(value)
        assert timer.count == 3
        assert timer.total == pytest.approx(6.0)
        assert timer.mean == pytest.approx(2.0)
        assert timer.stdev == pytest.approx(1.0)

    def test_empty_timer_statistics_are_zero(self):
        timer = Timer("t")
        assert timer.mean == 0.0
        assert timer.stdev == 0.0
        assert timer.percentile(0.5) == 0.0

    def test_negative_duration_rejected(self):
        timer = Timer("t")
        with pytest.raises(ValueError):
            timer.observe(-1.0)

    def test_percentile(self):
        timer = Timer("t")
        for value in range(1, 11):
            timer.observe(float(value))
        assert timer.percentile(0.5) == pytest.approx(5.0)
        assert timer.percentile(1.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            timer.percentile(1.5)

    def test_reset(self):
        timer = Timer("t")
        timer.observe(1.0)
        timer.reset()
        assert timer.count == 0


class TestTimeSeries:
    def test_record_and_values(self):
        series = TimeSeries("s")
        series.record(0.5)
        series.record(1.5, value=2.0)
        assert len(series) == 2
        assert series.values == [1.0, 2.0]
        assert series.times == [0.5, 1.5]

    def test_counts_per_bucket(self):
        series = TimeSeries("s")
        for timestamp in (0.1, 0.2, 1.5, 2.9, 3.1):
            series.record(timestamp)
        counts = series.counts_per_bucket(1.0, start=0.0, end=4.0)
        assert counts == [2, 1, 1, 1]

    def test_counts_per_bucket_ignores_out_of_range_samples(self):
        series = TimeSeries("s")
        series.record(0.5)
        series.record(9.5)
        counts = series.counts_per_bucket(1.0, start=0.0, end=2.0)
        assert counts == [1, 0]

    def test_rate_per_bucket_normalises(self):
        series = TimeSeries("s")
        for timestamp in (0.1, 0.2, 0.3, 0.4):
            series.record(timestamp)
        rates = series.rate_per_bucket(0.5, start=0.0, end=0.5)
        assert rates == [8.0]

    def test_bucket_width_must_be_positive(self):
        series = TimeSeries("s")
        with pytest.raises(ValueError):
            series.counts_per_bucket(0.0)

    def test_empty_series_buckets(self):
        series = TimeSeries("s")
        assert series.counts_per_bucket(1.0) == [0]

    def test_out_of_order_samples_accepted(self):
        series = TimeSeries("s")
        series.record(2.0)
        series.record(1.0)
        assert series.counts_per_bucket(1.0, start=0.0, end=3.0) == [0, 1, 1]


class TestMetricsRegistry:
    def test_same_name_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.timer("y") is registry.timer("y")
        assert registry.series("z") is registry.series("z")

    def test_counters_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").increment(2)
        registry.counter("b").increment()
        assert registry.counters() == {"a": 2, "b": 1}

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").increment()
        registry.timer("t").observe(1.0)
        registry.series("s").record(0.1)
        registry.reset()
        assert registry.counters() == {"a": 0}
        assert registry.timer("t").count == 0
        assert len(registry.series("s")) == 0


def test_summarize():
    mean, stdev, low, high = summarize([1.0, 2.0, 3.0])
    assert mean == pytest.approx(2.0)
    assert stdev == pytest.approx(1.0)
    assert (low, high) == (1.0, 3.0)


def test_summarize_empty():
    assert summarize([]) == (0.0, 0.0, 0.0, 0.0)
