"""Bootstrapping peers and whole networks.

:func:`create_peer` builds one peer on a network: it attaches a node, creates
the :class:`~repro.jxta.peer.Peer`, boots the world (net) peer group with all
standard services, publishes the peer advertisement and connects to any
configured rendez-vous peers.

:class:`JxtaNetworkBuilder` assembles whole topologies (the paper's LAN of
workstations, multi-segment setups with firewalls and routers) with a few
calls; the TPS test-bed helper in :mod:`repro.testbed` and the benchmark
harness build on it.

:class:`PeerGroupFactory` mirrors the JXTA API used in the paper's Figure 17
(``PeerGroupFactory.newPeerGroup()`` followed by ``init(parent, adv)``) for
code transliterated from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.jxta.advertisement import PeerGroupAdvertisement
from repro.jxta.cache import DiscoveryKind
from repro.jxta.errors import JxtaError
from repro.jxta.ids import PeerGroupID, PeerID, WORLD_GROUP_ID
from repro.jxta.peer import Peer, PeerConfig
from repro.jxta.peergroup import PeerGroup
from repro.net.cost import CostModel, NoiseSource, PAPER_TESTBED
from repro.net.firewall import Firewall
from repro.net.network import LinkSpec, Network
from repro.net.node import Node
from repro.net.simclock import Simulator
from repro.net.transport import TransportKind

#: Name of the world (net) peer group.
WORLD_GROUP_NAME = "NetPeerGroup"


def world_group_advertisement(created_at: float = 0.0) -> PeerGroupAdvertisement:
    """The advertisement of the world peer group every peer boots into."""
    return PeerGroupAdvertisement(
        group_id=WORLD_GROUP_ID,
        name=WORLD_GROUP_NAME,
        description="The world peer group",
        group_impl="repro.jxta.peergroup.PeerGroup",
        created_at=created_at,
    )


def create_peer(
    network: Network,
    name: str,
    *,
    rendezvous: bool = False,
    router: bool = False,
    rendezvous_addresses: Sequence[str] = (),
    segment: str = Network.DEFAULT_SEGMENT,
    transports: Optional[List[TransportKind | str]] = None,
    firewall: Optional[Firewall] = None,
    peer_id: Optional[PeerID] = None,
    address: Optional[str] = None,
    publish_advertisement: bool = True,
) -> Peer:
    """Create, attach and boot one peer on ``network``.

    Parameters mirror a JXTA platform configuration file: the peer's name and
    roles, which rendez-vous to connect to, which transports it exposes and
    whether a firewall protects it.  The returned peer has its world group
    ready and (by default) its peer advertisement published locally and
    pushed to the network.
    """
    node = Node(address or name, transports=transports, firewall=firewall)
    network.attach(node, segment=segment)
    salt = len(network.nodes)
    peer = Peer(
        node,
        network.simulator,
        PeerConfig(
            name=name,
            rendezvous=rendezvous,
            router=router,
            rendezvous_addresses=list(rendezvous_addresses),
        ),
        peer_id=peer_id,
        cost_model=network.cost_model,
        noise=network.noise.fork(salt),
    )
    world = PeerGroup(peer, world_group_advertisement(created_at=peer.now))
    peer._set_world_group(world)
    # Publish our own advertisements locally so discovery queries can be answered.
    advertisement = peer.advertisement()
    world.discovery.publish(advertisement, DiscoveryKind.PEER)
    world.discovery.publish(world.advertisement, DiscoveryKind.GROUP)
    if publish_advertisement:
        world.discovery.remote_publish(advertisement, DiscoveryKind.PEER)
    # Connect to the configured rendez-vous peers (lease requests).
    for rdv_address in rendezvous_addresses:
        world.rendezvous.connect(rdv_address)
    return peer


class PeerGroupFactory:
    """JXTA-style two-step group instantiation (Figure 17, lines 10-11)."""

    @staticmethod
    def new_peer_group() -> "UninitializedPeerGroup":
        """Return an uninitialised group; call :meth:`UninitializedPeerGroup.init`."""
        return UninitializedPeerGroup()


class UninitializedPeerGroup:
    """Placeholder returned by :meth:`PeerGroupFactory.new_peer_group`."""

    def __init__(self) -> None:
        self._group: Optional[PeerGroup] = None

    def init(self, parent: PeerGroup, advertisement: PeerGroupAdvertisement) -> PeerGroup:
        """Initialise the group from its advertisement inside ``parent``."""
        self._group = parent.new_group(advertisement)
        return self._group

    def lookup_service(self, name: str):
        """Delegate to the initialised group (raises if :meth:`init` was not called)."""
        if self._group is None:
            raise JxtaError("peer group used before init(parent, advertisement)")
        return self._group.lookup_service(name)


@dataclass
class JxtaNetworkBuilder:
    """Assembles a simulated network of peers.

    Example -- the paper's testbed (a handful of workstations on one LAN,
    one of them acting as rendez-vous)::

        builder = JxtaNetworkBuilder(seed=7)
        rdv = builder.add_rendezvous("rdv-0")
        publisher = builder.add_peer("publisher")
        subscribers = [builder.add_peer(f"subscriber-{i}") for i in range(4)]
        network = builder.network
        network.settle()          # let leases and discovery settle
    """

    seed: int = 2002
    cost_model: CostModel = PAPER_TESTBED
    default_link: Optional[LinkSpec] = None
    simulator: Simulator = field(default_factory=Simulator)

    def __post_init__(self) -> None:
        self.network = Network(
            self.simulator,
            default_link=self.default_link,
            cost_model=self.cost_model,
            noise=NoiseSource(self.seed),
        )
        self.peers: List[Peer] = []
        self._rendezvous_addresses: List[str] = []

    # ------------------------------------------------------------- building

    def add_rendezvous(
        self, name: str, *, segment: str = Network.DEFAULT_SEGMENT
    ) -> Peer:
        """Add a rendez-vous (and router) peer; later peers connect to it."""
        peer = create_peer(
            self.network,
            name,
            rendezvous=True,
            router=True,
            segment=segment,
        )
        self.peers.append(peer)
        self._rendezvous_addresses.append(peer.node.address)
        return peer

    def add_peer(
        self,
        name: str,
        *,
        segment: str = Network.DEFAULT_SEGMENT,
        transports: Optional[List[TransportKind | str]] = None,
        firewall: Optional[Firewall] = None,
        connect_rendezvous: bool = True,
    ) -> Peer:
        """Add an ordinary (edge) peer, connected to every known rendez-vous."""
        peer = create_peer(
            self.network,
            name,
            rendezvous_addresses=self._rendezvous_addresses if connect_rendezvous else (),
            segment=segment,
            transports=transports,
            firewall=firewall,
        )
        self.peers.append(peer)
        return peer

    def connect_segments(self, address_a: str, address_b: str, spec: Optional[LinkSpec] = None):
        """Add an explicit link between two nodes (typically on different segments)."""
        return self.network.connect(address_a, address_b, spec)

    # -------------------------------------------------------------- running

    def settle(self, rounds: int = 16, quantum: float = 1.0) -> int:
        """Let discovery, leases and binding announcements quiesce."""
        return self.network.settle(rounds=rounds, quantum=quantum)

    def peer_named(self, name: str) -> Peer:
        """Look up a built peer by name."""
        for peer in self.peers:
            if peer.name == name:
                return peer
        raise JxtaError(f"no peer named {name!r} was built")


def lan_of(
    count: int,
    *,
    seed: int = 2002,
    with_rendezvous: bool = True,
    cost_model: CostModel = PAPER_TESTBED,
) -> JxtaNetworkBuilder:
    """Convenience: a LAN of ``count`` peers (plus an optional rendez-vous).

    Peers are named ``peer-0`` ... ``peer-N``; the rendez-vous (if any) is
    ``rdv-0``.  The builder is returned so callers can keep adding topology.
    """
    builder = JxtaNetworkBuilder(seed=seed, cost_model=cost_model)
    if with_rendezvous:
        builder.add_rendezvous("rdv-0")
    for index in range(count):
        builder.add_peer(f"peer-{index}")
    return builder


__all__ = [
    "JxtaNetworkBuilder",
    "PeerGroupFactory",
    "UninitializedPeerGroup",
    "WORLD_GROUP_NAME",
    "create_peer",
    "lan_of",
    "world_group_advertisement",
]
