"""Measurement scenarios: N publishers, M subscribers, one application variant.

A scenario reproduces the paper's experimental setup (Section 5): a handful
of workstations on one FastEthernet LAN, one of them acting as rendez-vous,
running the ski-rental application either directly on the wire service
(JXTA-WIRE), hand-written on JXTA (SR-JXTA) or on the TPS layer (SR-TPS).
Messages are padded to the paper's 1910 bytes.

The publishers are initialised first and the network is allowed to settle
before the subscribers start, mirroring the paper's deployment where the shop
(publisher) is already advertising when shoppers arrive; this also keeps the
number of advertisements for the type at one, which is the configuration the
paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.apps.skirental.jxta_app import SkiRentalJxtaPublisher, SkiRentalJxtaSubscriber
from repro.apps.skirental.tps_app import SkiRentalTPSPublisher, SkiRentalTPSSubscriber
from repro.apps.skirental.types import SkiRental
from repro.apps.skirental.wire_app import (
    WirePublisher,
    WireSubscriber,
    shared_wire_advertisement,
)
from repro.core import TPSConfig
from repro.jxta.peer import Peer
from repro.jxta.platform import JxtaNetworkBuilder
from repro.net.cost import CostModel, PAPER_TESTBED
from repro.net.simclock import Simulator

#: Variant labels, matching the paper's figure legends.
JXTA_WIRE = "JXTA-WIRE"
SR_JXTA = "SR-JXTA"
SR_TPS = "SR-TPS"
VARIANTS = (JXTA_WIRE, SR_JXTA, SR_TPS)

#: The message size used throughout the paper's measurements.
PAPER_MESSAGE_SIZE = 1910


@dataclass
class ScenarioConfig:
    """Parameters of one measurement scenario."""

    variant: str = SR_TPS
    publishers: int = 1
    subscribers: int = 1
    seed: int = 2002
    message_size: int = PAPER_MESSAGE_SIZE
    cost_model: CostModel = PAPER_TESTBED
    #: Virtual seconds granted to the publishers' initialisation phase before
    #: the subscribers start.
    publisher_settle: float = 8.0
    #: Virtual seconds granted to the subscribers' initialisation phase before
    #: measurements begin.
    subscriber_settle: float = 12.0

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(f"unknown variant {self.variant!r}; expected one of {VARIANTS}")
        if self.publishers < 1 or self.subscribers < 1:
            raise ValueError("a scenario needs at least one publisher and one subscriber")


class PublisherHandle:
    """Uniform publishing surface over the three application variants."""

    def __init__(self, peer: Peer, publish: Callable[[SkiRental], Any], app: Any) -> None:
        self.peer = peer
        self._publish = publish
        self.app = app
        self.published = 0

    def publish(self, offer: Optional[SkiRental] = None) -> Any:
        """Publish one offer; returns the variant's receipt (with ``cpu_time``)."""
        if offer is None:
            offer = SkiRental(
                shop=f"shop-{self.peer.name}",
                price=99.0 + self.published,
                brand="Salomon",
                number_of_days=7,
            )
        receipt = self._publish(offer)
        self.published += 1
        return receipt


class SubscriberHandle:
    """Uniform receiving surface over the three application variants."""

    def __init__(self, peer: Peer, received_count: Callable[[], int], app: Any) -> None:
        self.peer = peer
        self._received_count = received_count
        self.app = app

    def received_count(self) -> int:
        """Number of application-level events received so far."""
        return self._received_count()

    def receive_times(self) -> List[float]:
        """Virtual timestamps at which the wire service delivered messages here."""
        return list(self.peer.metrics.series("wire_received").times)


@dataclass
class Scenario:
    """A built scenario, ready for a measurement run."""

    config: ScenarioConfig
    builder: JxtaNetworkBuilder
    publishers: List[PublisherHandle]
    subscribers: List[SubscriberHandle]
    setup_time: float = 0.0

    @property
    def simulator(self) -> Simulator:
        """The discrete-event simulator driving the scenario."""
        return self.builder.simulator

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.simulator.now

    def settle(self, rounds: int = 32, quantum: float = 1.0) -> int:
        """Let in-flight traffic quiesce."""
        return self.builder.network.settle(rounds=rounds, quantum=quantum)

    def run_for(self, seconds: float) -> int:
        """Advance virtual time by ``seconds``."""
        return self.simulator.run_for(seconds)

    def run_until(self, time: float) -> int:
        """Advance virtual time to the absolute instant ``time``."""
        return self.simulator.run_until(time)

    def total_received(self) -> int:
        """Sum of application-level events received across all subscribers."""
        return sum(subscriber.received_count() for subscriber in self.subscribers)


def build_scenario(config: ScenarioConfig) -> Scenario:
    """Build the network, the peers and the application variant of ``config``."""
    builder = JxtaNetworkBuilder(seed=config.seed, cost_model=config.cost_model)
    builder.add_rendezvous("rdv-0")
    publisher_peers = [builder.add_peer(f"pub-{i}") for i in range(config.publishers)]
    subscriber_peers = [builder.add_peer(f"sub-{i}") for i in range(config.subscribers)]
    builder.settle(rounds=4)

    if config.variant == JXTA_WIRE:
        publishers, subscribers = _build_wire(config, publisher_peers, subscriber_peers)
    elif config.variant == SR_JXTA:
        publishers, subscribers = _build_sr_jxta(
            config, builder, publisher_peers, subscriber_peers
        )
    else:
        publishers, subscribers = _build_sr_tps(
            config, builder, publisher_peers, subscriber_peers
        )

    scenario = Scenario(
        config=config,
        builder=builder,
        publishers=publishers,
        subscribers=subscribers,
    )
    scenario.settle(rounds=int(config.subscriber_settle), quantum=1.0)
    scenario.setup_time = scenario.now
    return scenario


# --------------------------------------------------------------------------- wire


def _build_wire(
    config: ScenarioConfig,
    publisher_peers: Sequence[Peer],
    subscriber_peers: Sequence[Peer],
) -> tuple[List[PublisherHandle], List[SubscriberHandle]]:
    advertisement = shared_wire_advertisement("SkiRental")
    publishers: List[PublisherHandle] = []
    subscribers: List[SubscriberHandle] = []
    for peer in subscriber_peers:
        app = WireSubscriber(peer, advertisement)
        subscribers.append(SubscriberHandle(peer, app.received_count, app))
    for peer in publisher_peers:
        app = WirePublisher(peer, advertisement)

        def publish(offer: SkiRental, app: WirePublisher = app) -> Any:
            payload = str(offer).encode("utf-8")
            if len(payload) < config.message_size:
                payload = payload + b"\x00" * (config.message_size - len(payload))
            return app.publish_bytes(payload)

        publishers.append(PublisherHandle(peer, publish, app))
    return publishers, subscribers


# ------------------------------------------------------------------------ SR-JXTA


def _build_sr_jxta(
    config: ScenarioConfig,
    builder: JxtaNetworkBuilder,
    publisher_peers: Sequence[Peer],
    subscriber_peers: Sequence[Peer],
) -> tuple[List[PublisherHandle], List[SubscriberHandle]]:
    publishers: List[PublisherHandle] = []
    subscribers: List[SubscriberHandle] = []
    lead = SkiRentalJxtaPublisher(
        publisher_peers[0], message_padding=config.message_size, search_timeout=2.0
    )
    publishers.append(PublisherHandle(publisher_peers[0], lead.publish_offer, lead))
    builder.network.settle(rounds=int(config.publisher_settle))
    for peer in publisher_peers[1:]:
        app = SkiRentalJxtaPublisher(
            peer, message_padding=config.message_size, search_timeout=6.0
        )
        publishers.append(PublisherHandle(peer, app.publish_offer, app))
    for peer in subscriber_peers:
        app = SkiRentalJxtaSubscriber(peer, search_timeout=6.0, create_if_missing=False)
        subscribers.append(SubscriberHandle(peer, app.received_count, app))
    return publishers, subscribers


# ------------------------------------------------------------------------- SR-TPS


def _build_sr_tps(
    config: ScenarioConfig,
    builder: JxtaNetworkBuilder,
    publisher_peers: Sequence[Peer],
    subscriber_peers: Sequence[Peer],
) -> tuple[List[PublisherHandle], List[SubscriberHandle]]:
    publishers: List[PublisherHandle] = []
    subscribers: List[SubscriberHandle] = []
    lead_config = TPSConfig(search_timeout=2.0, message_padding=config.message_size)
    lead = SkiRentalTPSPublisher(publisher_peers[0], config=lead_config)
    publishers.append(PublisherHandle(publisher_peers[0], lead.publish_offer, lead))
    builder.network.settle(rounds=int(config.publisher_settle))
    follower_config = TPSConfig(search_timeout=6.0, message_padding=config.message_size)
    for peer in publisher_peers[1:]:
        app = SkiRentalTPSPublisher(peer, config=follower_config)
        publishers.append(PublisherHandle(peer, app.publish_offer, app))
    subscriber_config = TPSConfig(search_timeout=6.0, create_if_missing=False)
    for peer in subscriber_peers:
        app = SkiRentalTPSSubscriber(peer, config=subscriber_config)
        subscribers.append(SubscriberHandle(peer, app.received_count, app))
    return publishers, subscribers


__all__ = [
    "JXTA_WIRE",
    "PAPER_MESSAGE_SIZE",
    "PublisherHandle",
    "SR_JXTA",
    "SR_TPS",
    "Scenario",
    "ScenarioConfig",
    "SubscriberHandle",
    "VARIANTS",
    "build_scenario",
]
