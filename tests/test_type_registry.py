"""Tests for the TPS type registry, hierarchy handling and criteria."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.skirental.types import PremiumSkiRental, RentalOffer, SkiRental, SnowboardRental
from repro.core.exceptions import PSException, TypeMismatchError
from repro.core.type_registry import (
    Criteria,
    TypeRegistry,
    all_subtypes,
    hierarchy_root,
    type_name,
    validate_event_type,
)


class Base:
    def __init__(self, value=0):
        self.value = value


class Middle(Base):
    pass


class Leaf(Middle):
    pass


class OtherRoot:
    pass


class Mixin:
    pass


class MixedSafe(Base, Mixin):
    """Multiple inheritance where the extra base is a plain mixin rooted elsewhere."""


class TestHierarchyHelpers:
    def test_type_name_is_qualified(self):
        assert type_name(SkiRental).endswith("types.SkiRental")

    def test_hierarchy_root(self):
        assert hierarchy_root(Leaf) is Base
        assert hierarchy_root(Base) is Base
        assert hierarchy_root(PremiumSkiRental) is RentalOffer
        assert hierarchy_root(SnowboardRental) is RentalOffer

    def test_all_subtypes_includes_descendants(self):
        subtypes = all_subtypes(Base)
        assert Base in subtypes and Middle in subtypes and Leaf in subtypes
        assert OtherRoot not in subtypes

    def test_validate_rejects_non_classes_and_builtins(self):
        with pytest.raises(PSException):
            validate_event_type(42)
        with pytest.raises(PSException):
            validate_event_type(str)
        with pytest.raises(PSException):
            validate_event_type(dict)

    def test_multiple_inheritance_follows_primary_base(self):
        assert hierarchy_root(MixedSafe) is Base
        assert MixedSafe in all_subtypes(Base)

    def test_validate_accepts_normal_classes(self):
        assert validate_event_type(Leaf) is Leaf
        assert validate_event_type(MixedSafe) is MixedSafe


class TestTypeRegistry:
    def test_registers_whole_hierarchy(self):
        registry = TypeRegistry(SkiRental)
        names = {type_name(cls) for cls in registry.registered_types()}
        # The root and its known subtypes are registered even when the engine
        # was created for a deeper type.
        assert type_name(RentalOffer) in names
        assert type_name(SkiRental) in names
        assert type_name(PremiumSkiRental) in names
        assert type_name(SnowboardRental) in names

    def test_conforms_follows_figure7(self):
        registry = TypeRegistry(SkiRental)
        assert registry.conforms(SkiRental("s", 1.0, "b", 1))
        assert registry.conforms(PremiumSkiRental("s", 1.0, "b", 1))
        assert not registry.conforms(SnowboardRental("s", 1.0, "b", 1))
        assert not registry.conforms(RentalOffer("s", 1.0, 1))
        assert registry.in_hierarchy(SnowboardRental("s", 1.0, "b", 1))

    def test_check_publishable(self):
        registry = TypeRegistry(SkiRental)
        registry.check_publishable(SkiRental("s", 1.0, "b", 1))
        with pytest.raises(TypeMismatchError):
            registry.check_publishable(SnowboardRental("s", 1.0, "b", 1))
        with pytest.raises(PSException):
            registry.check_publishable(None)
        with pytest.raises(PSException):
            registry.check_publishable(SkiRental)  # a class, not an instance
        with pytest.raises(TypeMismatchError):
            registry.check_publishable("not an offer")

    def test_encode_decode_round_trip_preserves_concrete_type(self):
        registry = TypeRegistry(SkiRental)
        premium = PremiumSkiRental("shop", 150.0, "Atomic", 7, extras=("boots",))
        restored = registry.decode(registry.encode(premium))
        assert isinstance(restored, PremiumSkiRental)
        assert restored == premium

    def test_encode_registers_late_defined_subtypes(self):
        registry = TypeRegistry(Base)

        class LateSubtype(Base):
            pass

        instance = LateSubtype(value=9)
        restored = registry.decode(registry.encode(instance))
        assert type(restored).__name__ == "LateSubtype"
        assert restored.value == 9

    def test_register_foreign_type_rejected(self):
        registry = TypeRegistry(Base)
        with pytest.raises(PSException):
            registry.register(OtherRoot)

    def test_advertised_and_interface_names(self):
        registry = TypeRegistry(PremiumSkiRental)
        assert registry.advertised_name == type_name(RentalOffer)
        assert registry.interface_name == type_name(PremiumSkiRental)


class TestCriteria:
    def test_default_criteria_match_everything(self):
        criteria = Criteria()
        assert criteria.matches_advertisement(object())
        assert criteria.matches_event(object())

    def test_name_contains_filter(self):
        class FakeAdv:
            def __init__(self, name):
                self.name = name

        criteria = Criteria(name_contains="SkiRental")
        assert criteria.matches_advertisement(FakeAdv("PS$...SkiRental"))
        assert not criteria.matches_advertisement(FakeAdv("PS$Other"))

    def test_advertisement_predicate(self):
        criteria = Criteria(advertisement_predicate=lambda adv: adv == "yes")
        assert criteria.matches_advertisement("yes")
        assert not criteria.matches_advertisement("no")

    def test_event_predicate(self):
        criteria = Criteria(event_predicate=lambda offer: offer.price < 100)
        assert criteria.matches_event(SkiRental("s", 50.0, "b", 1))
        assert not criteria.matches_event(SkiRental("s", 150.0, "b", 1))


# ----------------------------------------------------------------- property

_prices = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
_texts = st.text(max_size=20)


@settings(max_examples=60, deadline=None)
@given(shop=_texts, price=_prices, brand=_texts, days=st.floats(min_value=0.5, max_value=365))
def test_property_event_round_trip(shop, price, brand, days):
    """Typed encode/decode is the identity on arbitrary event field values."""
    registry = TypeRegistry(SkiRental)
    offer = SkiRental(shop, price, brand, days)
    restored = registry.decode(registry.encode(offer))
    assert isinstance(restored, SkiRental)
    assert restored == offer


@settings(max_examples=60, deadline=None)
@given(
    price=_prices,
    choose=st.sampled_from(["ski", "premium", "snowboard", "offer"]),
)
def test_property_conformance_matches_isinstance(price, choose):
    """`conforms` agrees with isinstance for every type in the hierarchy."""
    registry = TypeRegistry(SkiRental)
    event = {
        "ski": SkiRental("s", price, "b", 1),
        "premium": PremiumSkiRental("s", price, "b", 1),
        "snowboard": SnowboardRental("s", price, "b", 1),
        "offer": RentalOffer("s", price, 1),
    }[choose]
    assert registry.conforms(event) == isinstance(event, SkiRental)
