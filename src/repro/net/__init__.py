"""Discrete-event simulated wide-area network substrate.

The paper's evaluation ran on real hardware: Sun Ultra 10 workstations
(440 MHz, 256 MB RAM) connected by 100 Mbit/s FastEthernet, running JXTA 1.0
over TCP, HTTP and IP multicast.  This package stands in for that testbed.
It provides a deterministic discrete-event simulator with:

* a virtual clock and event scheduler (:mod:`repro.net.simclock`);
* network nodes with one or more network interfaces (:mod:`repro.net.node`);
* links and topologies with latency, bandwidth, jitter and loss
  (:mod:`repro.net.network`);
* transport models for TCP, HTTP relays and IP multicast
  (:mod:`repro.net.transport`);
* firewalls and NAT boxes that force relayed routing, exercising the
  Endpoint Routing Protocol (:mod:`repro.net.firewall`);
* a calibrated cost model for per-message CPU work on the paper's era of
  hardware (:mod:`repro.net.cost`);
* metric collection helpers (:mod:`repro.net.metrics`).

Everything above the network (the JXTA substrate and the TPS layer) is real
code doing real work; only the passage of time and the wire itself are
simulated.
"""

from __future__ import annotations

from repro.net.cost import CostModel, PAPER_TESTBED
from repro.net.faults import FaultPlan, LinkFaults
from repro.net.firewall import Firewall, FirewallRule
from repro.net.metrics import Counter, MetricsRegistry, TimeSeries, Timer
from repro.net.network import Link, LinkSpec, Network, NetworkError, NoRouteError
from repro.net.node import NetworkInterface, Node
from repro.net.packet import Packet
from repro.net.simclock import EventHandle, SimClock, Simulator
from repro.net.transport import (
    HttpTransport,
    MulticastTransport,
    TcpTransport,
    Transport,
    TransportKind,
)

__all__ = [
    "CostModel",
    "Counter",
    "EventHandle",
    "FaultPlan",
    "Firewall",
    "FirewallRule",
    "HttpTransport",
    "Link",
    "LinkFaults",
    "LinkSpec",
    "MetricsRegistry",
    "MulticastTransport",
    "Network",
    "NetworkError",
    "NetworkInterface",
    "NoRouteError",
    "Node",
    "Packet",
    "PAPER_TESTBED",
    "SimClock",
    "Simulator",
    "TcpTransport",
    "TimeSeries",
    "Timer",
    "Transport",
    "TransportKind",
]
