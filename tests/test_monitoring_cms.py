"""Tests for the monitoring service and the content (cms-like) service."""

from __future__ import annotations

import pytest

from repro.jxta.cms import ContentSummary
from repro.jxta.monitoring import MonitoringReport


class TestMonitoring:
    def test_local_report_contains_counters(self, two_peers):
        alpha, beta, builder = two_peers
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        from repro.jxta.message import Message

        message = Message()
        message.add("x", "y")
        alpha.endpoint.send(beta.peer_id, message, "svc")
        builder.settle(rounds=2)
        report = alpha.world_group.monitoring.local_report()
        assert report.peer_name == "alpha"
        assert report.counters.get("packets_sent", 0) >= 1

    def test_report_xml_round_trip(self, two_peers):
        alpha, _beta, _builder = two_peers
        alpha.metrics.counter("custom_counter").increment(5)
        alpha.metrics.timer("custom_timer").observe(0.25)
        report = alpha.world_group.monitoring.local_report()
        restored = MonitoringReport.from_xml(report.to_xml())
        assert restored.peer_id == alpha.peer_id
        assert restored.counters["custom_counter"] == 5
        assert restored.timer_means["custom_timer"] == pytest.approx(0.25)

    def test_collect_remote_reports(self, lan):
        builder = lan
        collector = builder.peer_named("peer-0")
        collector.world_group.monitoring.collect_remote()
        builder.settle(rounds=3)
        collected = collector.world_group.monitoring.collected
        assert {report.peer_name for report in collected} == {"rdv-0", "peer-1", "peer-2"}

    def test_collect_from_single_peer(self, two_peers):
        alpha, beta, builder = two_peers
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        alpha.world_group.monitoring.collect_remote(beta.peer_id)
        builder.settle(rounds=2)
        assert [r.peer_name for r in alpha.world_group.monitoring.collected] == ["beta"]


class TestContentService:
    def test_share_and_list_local(self, two_peers):
        alpha, _beta, _builder = two_peers
        content = alpha.world_group.content
        summary = content.share("report.txt", b"hello world", description="a report")
        assert summary.size == 11
        assert summary.owner == alpha.peer_id
        assert content.list_local() == [summary]

    def test_unshare(self, two_peers):
        alpha, _beta, _builder = two_peers
        content = alpha.world_group.content
        summary = content.share("x", b"1")
        assert content.unshare(summary.codat_id)
        assert not content.unshare(summary.codat_id)
        assert content.list_local() == []

    def test_summary_xml_round_trip(self, two_peers):
        alpha, _beta, _builder = two_peers
        summary = alpha.world_group.content.share("doc", b"abc", description="desc")
        restored = ContentSummary.from_xml_element(summary.to_xml_element())
        assert restored.codat_id == summary.codat_id
        assert restored.checksum == summary.checksum
        assert restored.owner == alpha.peer_id

    def test_search_remote_by_prefix(self, lan):
        builder = lan
        seeker = builder.peer_named("peer-0")
        provider_1 = builder.peer_named("peer-1")
        provider_2 = builder.peer_named("peer-2")
        provider_1.world_group.content.share("holiday-photo-1.jpg", b"\x01" * 10)
        provider_2.world_group.content.share("holiday-photo-2.jpg", b"\x02" * 20)
        provider_2.world_group.content.share("unrelated.txt", b"zzz")
        seeker.world_group.content.search_remote("holiday-*")
        builder.settle(rounds=3)
        names = {summary.name for summary in seeker.world_group.content.found}
        assert names == {"holiday-photo-1.jpg", "holiday-photo-2.jpg"}

    def test_fetch_content_from_owner(self, two_peers):
        alpha, beta, builder = two_peers
        payload = bytes(range(64))
        beta.world_group.content.share("blob.bin", payload)
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        alpha.world_group.content.search_remote("blob.bin")
        builder.settle(rounds=3)
        (summary,) = alpha.world_group.content.found
        alpha.world_group.content.fetch(summary)
        builder.settle(rounds=3)
        assert alpha.world_group.content.fetched[summary.codat_id.to_urn()] == payload

    def test_search_exact_name(self, two_peers):
        alpha, beta, builder = two_peers
        beta.world_group.content.share("exact.txt", b"x")
        beta.world_group.content.share("exact.txt.bak", b"y")
        alpha.world_group.content.search_remote("exact.txt")
        builder.settle(rounds=3)
        assert [s.name for s in alpha.world_group.content.found] == ["exact.txt"]

    def test_duplicate_search_results_not_duplicated(self, two_peers):
        alpha, beta, builder = two_peers
        beta.world_group.content.share("thing", b"x")
        alpha.world_group.content.search_remote("thing")
        builder.settle(rounds=3)
        alpha.world_group.content.search_remote("thing")
        builder.settle(rounds=3)
        assert len(alpha.world_group.content.found) == 1
