"""Advertisement management of the TPS layer.

In the paper's architecture (Figures 10 and 11) the "Advs" block "is
responsible for creating a new advertisement for the type we are interested
in as well as for finding and collecting the multiple advertisements that are
in relation with our type".  One TPS type (hierarchy) is represented by one
peer-group advertisement whose name is ``PS_PREFIX`` + the type name and
which hosts the WIRE service over a pipe named after the type.

Two classes implement the block, mirroring the paper's
``AdvertisementsCreator`` (Figure 15) and ``AdvertisementsFinder``
(Figure 16), plus the listener interface finders notify.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Union

from repro.jxta.advertisement import (
    PeerGroupAdvertisement,
    PipeAdvertisement,
    ServiceAdvertisement,
)
from repro.jxta.cache import DiscoveryKind
from repro.jxta.discovery import DiscoveryEvent, DiscoveryService
from repro.jxta.ids import PeerGroupID, PipeID
from repro.jxta.peergroup import PeerGroup
from repro.jxta.pipes import PipeKind
from repro.jxta.wire import WireService
from repro.net.simclock import PeriodicTask

#: Prefix of TPS peer-group advertisement names (``PS_PREFIX`` in Figure 15).
PS_PREFIX = "PS$"


class TPSAdvertisementsListener(Protocol):
    """Notified by a finder for every *new* matching advertisement."""

    def handle_new_advertisements(self, advertisement: PeerGroupAdvertisement) -> None:
        """Called once per newly discovered peer-group advertisement."""


#: Plain callables are accepted wherever a listener is expected.
ListenerLike = Union[TPSAdvertisementsListener, Callable[[PeerGroupAdvertisement], None]]


class TPSAdvertisementsCreator:
    """Creates and publishes the peer-group advertisement for one TPS type.

    Mirrors the paper's Figure 15: build a pipe advertisement named after the
    type, wrap it in a WIRE service advertisement, attach that service (plus
    the resolver parameters) to a new peer-group advertisement named
    ``PS_PREFIX + type name``, and publish the result both locally and
    remotely.
    """

    def __init__(self, root_group: PeerGroup, discovery: Optional[DiscoveryService] = None) -> None:
        self.root_group = root_group
        self.discovery = discovery or root_group.discovery
        self.advertisement: Optional[PeerGroupAdvertisement] = None

    def create_peer_group_advertisement(self, name: str) -> PeerGroupAdvertisement:
        """Build the peer-group advertisement for the type called ``name``."""
        local_peer_id = self.root_group.get_peer_id()
        pipe_advertisement = PipeAdvertisement(
            pipe_id=PipeID(),
            name=name,
            pipe_kind=PipeKind.WIRE.value,
            created_at=self.root_group.peer.now,
        )
        advertisement = PeerGroupAdvertisement(
            group_id=PeerGroupID(),
            name=PS_PREFIX + pipe_advertisement.name,
            creator_peer_id=local_peer_id,
            app=self.root_group.advertisement.get_app(),
            group_impl=self.root_group.advertisement.get_group_impl(),
            is_rendezvous=True,
            created_at=self.root_group.peer.now,
        )
        services = self.root_group.advertisement.get_service_advertisements()

        wire_advertisement = ServiceAdvertisement(
            name=WireService.WireName,
            version=WireService.WireVersion,
            uri=WireService.WireUri,
            code=WireService.WireCode,
            security=WireService.WireSecurity,
            keywords=pipe_advertisement.name,
            pipe=pipe_advertisement,
        )

        resolver = services.get("jxta.service.resolver", ServiceAdvertisement(
            name="jxta.service.resolver"
        ))
        params = resolver.get_params()
        params.append(local_peer_id.to_urn())
        resolver.set_params(params)
        services["jxta.service.resolver"] = resolver

        services[WireService.WireName] = wire_advertisement
        advertisement.set_service_advertisements(services)

        self.advertisement = advertisement
        return advertisement

    def publish_advertisement(
        self, advertisement: PeerGroupAdvertisement, kind: int = DiscoveryKind.GROUP
    ) -> None:
        """Publish the advertisement locally and push it to remote peers."""
        self.discovery.publish(advertisement, kind)
        self.discovery.remote_publish(advertisement, kind)


class TPSAdvertisementsFinder:
    """Searches, collects and de-duplicates advertisements for one TPS type.

    Mirrors the paper's Figure 16: flush stale advertisements, periodically
    issue a remote discovery query for peer-group advertisements whose name
    starts with the prefix, harvest the local cache, and dispatch every *new*
    advertisement (new group ID) to the registered listeners.  Instead of a
    Java thread with ``sleep``, the periodic work is scheduled on the
    simulation clock.
    """

    #: How many advertisements we accept per responding peer.
    NUMBER_OF_ADV_PER_PEER = 10
    #: Default re-query interval (seconds of virtual time), the Java thread's
    #: ``SLEEPING_TIME``.
    SLEEPING_TIME = 5.0

    def __init__(
        self,
        group: PeerGroup,
        prefix: str,
        *,
        kind: int = DiscoveryKind.GROUP,
    ) -> None:
        self.group = group
        self.discovery = group.discovery
        self.prefix = prefix
        self.kind = kind
        self.advertisements: List[PeerGroupAdvertisement] = []
        self._listeners: List[ListenerLike] = []
        self._task: Optional[PeriodicTask] = None
        self._running = False

    # ------------------------------------------------------------ listeners

    def add_advertisements_listener(self, listener: ListenerLike) -> None:
        """Register a listener notified of every new advertisement."""
        self._listeners.append(listener)

    def remove_advertisements_listener(self, listener: ListenerLike) -> None:
        """Unregister a listener (missing listeners are ignored)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    # ------------------------------------------------------------ lifecycle

    def start(self, *, flush: bool = True, interval: Optional[float] = None) -> None:
        """Begin searching: flush stale caches, query now and then periodically."""
        if self._running:
            return
        self._running = True
        if flush:
            # The paper's finder flushes the whole cache at startup (Figure 16,
            # lines 9-11).  We flush only remotely learned advertisements:
            # locally published ones (our own peer advertisement, or another
            # engine's type advertisement on the same peer) must stay so this
            # peer keeps answering discovery queries for them.
            self.discovery.cache.flush(DiscoveryKind.ADV, remote_only=True)
            self.discovery.cache.flush(DiscoveryKind.PEER, remote_only=True)
            self.discovery.cache.flush(DiscoveryKind.GROUP, remote_only=True)
        self.discovery.add_discovery_listener(self._on_discovery_event)
        self._poll()
        self._task = self.group.peer.simulator.schedule_periodic(
            interval or self.SLEEPING_TIME,
            self._poll,
            label=f"tps-finder:{self.prefix}",
        )

    def stop(self) -> None:
        """Stop searching.  Idempotent."""
        if not self._running:
            return
        self._running = False
        if self._task is not None:
            self._task.stop()
        self.discovery.remove_discovery_listener(self._on_discovery_event)

    @property
    def running(self) -> bool:
        """Whether the finder is currently searching."""
        return self._running

    # -------------------------------------------------------------- internal

    def _poll(self) -> None:
        """One search round: remote query plus a harvest of the local cache."""
        self.discovery.get_remote_advertisements(
            None,
            self.kind,
            "Name",
            self.prefix + "*",
            self.NUMBER_OF_ADV_PER_PEER,
        )
        for advertisement in self.discovery.get_local_advertisements(
            self.kind, "Name", self.prefix + "*"
        ):
            self._handle_new_advertisement(advertisement)

    def _on_discovery_event(self, event: DiscoveryEvent) -> None:
        if event.kind != self.kind:
            return
        for advertisement in event.advertisements:
            if isinstance(advertisement, PeerGroupAdvertisement) and advertisement.matches(
                "Name", self.prefix + "*"
            ):
                self._handle_new_advertisement(advertisement)

    def find_advertisement(
        self, advertisements: List[PeerGroupAdvertisement], advertisement: PeerGroupAdvertisement
    ) -> bool:
        """Whether an advertisement with the same group ID is already known.

        This is the duplicate check of Figure 16 (lines 42-60): peer-group
        advertisements are considered the same when their group IDs match.
        """
        if not isinstance(advertisement, PeerGroupAdvertisement):
            return True
        gid = advertisement.get_gid()
        return any(existing.get_gid() == gid for existing in advertisements)

    def _handle_new_advertisement(self, advertisement: PeerGroupAdvertisement) -> None:
        if not isinstance(advertisement, PeerGroupAdvertisement):
            return
        if self.find_advertisement(self.advertisements, advertisement):
            return
        self.advertisements.append(advertisement)
        for listener in list(self._listeners):
            callback = getattr(listener, "handle_new_advertisements", listener)
            callback(advertisement)


__all__ = [
    "PS_PREFIX",
    "TPSAdvertisementsCreator",
    "TPSAdvertisementsFinder",
    "TPSAdvertisementsListener",
]
