"""``TPSEngine``: the entry point of the TPS API.

The paper's initialisation phase (Section 4.3.2) is two lines::

    TPSEngine<SkiRental> tpse = new TPSEngine<SkiRental>();
    TPSInterface tpsInt = tpse.newInterface("JXTA", null, new SkiRental(), argv);

The Python rendering keeps the same two steps::

    tpse = TPSEngine(SkiRental, peer=peer)
    tps_int = tpse.new_interface("JXTA")

Differences, and why:

* Generic Java erases type parameters, so the paper must pass a *dummy
  instance* of the type; Python keeps the class object itself, so the
  instance argument is optional (it is still accepted -- and type-checked --
  for fidelity with the paper's listings).
* The JXTA binding needs to know which simulated peer it runs on, hence the
  explicit ``peer`` argument (real JXTA bootstraps a process-global platform
  from a configuration file).
* ``new_interface("LOCAL")`` returns an in-process binding with identical
  semantics, useful for tests and prototypes.

The v2 API keeps the two-line initialisation and the Figure 8 surface
byte-for-byte (pinned by ``tests/test_api_surface.py``) while opening both
ends of the factory:

* the binding *name* resolves through the pluggable registry of
  :mod:`repro.core.bindings` -- ``"JXTA"``, ``"LOCAL"`` and ``"SHARDED"``
  (an N-shard in-process bus, :mod:`repro.core.sharded_engine`) self-register
  there, and applications may :func:`~repro.core.bindings.register_binding`
  their own without touching this module;
* the engine has a lifecycle: :meth:`TPSEngine.close` closes every interface
  it created (idempotently), the engine is a context manager, and
  ``new_interface`` after close raises :class:`PSException`.

Locking model: ``new_interface`` and ``close`` serialise their flag checks
and ``interfaces`` bookkeeping on a per-engine lock, so a close racing an
interface creation either sees the new interface (and closes it) or makes
the creation fail with the uniform post-close error -- never a leaked open
interface.  The lock is not held while binding factories or interface
teardown run.
"""

from __future__ import annotations

import threading
from typing import Any, Generic, Optional, Sequence, Type, TypeVar

from repro.core.bindings import BindingRequest, get_binding
from repro.core.exceptions import PSException
from repro.core.interface import TPSInterface
from repro.core.jxta_engine import JxtaTPSEngine, TPSConfig
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.type_registry import Criteria, type_name, validate_event_type
from repro.jxta.peer import Peer
from repro.serialization.object_codec import ObjectCodec

EventT = TypeVar("EventT")


class TPSEngine(Generic[EventT]):
    """Factory of :class:`~repro.core.interface.TPSInterface` instances for one type.

    One engine covers one event type (and, through subtype matching, its
    hierarchy).  "If a publisher (or a subscriber) is interested in several
    'unrelated' types [...] several instances of the publish/subscribe engine
    for each type of interest must be created."  (paper, Section 4.2)
    """

    #: Names of the built-in bindings (any registered name is accepted).
    JXTA = "JXTA"
    LOCAL = "LOCAL"

    def __init__(
        self,
        event_type: Type[EventT],
        *,
        peer: Optional[Peer] = None,
        codec: Optional[ObjectCodec] = None,
        config: Optional[TPSConfig] = None,
        local_bus: Optional[LocalBus] = None,
    ) -> None:
        validate_event_type(event_type)
        self.event_type = event_type
        self.peer = peer
        self.codec = codec
        self.config = config
        self.local_bus = local_bus
        self.interfaces: list[TPSInterface[EventT]] = []
        self._closed = False
        self._lock = threading.Lock()

    def new_interface(
        self,
        name: str = JXTA,
        criteria: Optional[Criteria] = None,
        instance: Optional[EventT] = None,
        argv: Optional[Sequence[str]] = None,
        **params: Any,
    ) -> TPSInterface[EventT]:
        """Create a TPS interface bound to the named infrastructure.

        Parameters mirror the paper's ``newInterface(String name, Criteria c,
        Type t, String[] arg)``: the binding name (resolved through the
        registry of :mod:`repro.core.bindings` -- ``"JXTA"``, ``"LOCAL"``,
        ``"SHARDED"``, the composite bindings or anything the application
        registered), optional advertisement/content filtering criteria, an
        optional instance of the event type (checked, then ignored -- Python
        does not need it) and the application's command-line arguments
        (passed through to the binding factory).

        Any further keyword arguments are *binding parameters*, validated
        against the binding's declared schema before its factory runs --
        e.g. ``new_interface("JXTA", search_timeout=2.0)``, or ``shards=16``
        for the sharded bindings.  Unknown or ill-typed parameters raise
        :class:`PSException` naming the offending key and the accepted
        schema.
        """
        self._check_open()
        if instance is not None and not isinstance(instance, self.event_type):
            raise PSException(
                f"the instance passed to new_interface is a "
                f"{type_name(type(instance))}, not a {type_name(self.event_type)}"
            )
        spec = get_binding(name)
        request = BindingRequest(
            event_type=self.event_type,
            criteria=criteria,
            instance=instance,
            argv=tuple(argv) if argv is not None else None,
            peer=self.peer,
            codec=self.codec,
            config=self.config,
            local_bus=self.local_bus,
            params=params,
        )
        interface: TPSInterface[EventT] = spec.create(request)
        with self._lock:
            if not self._closed:
                self.interfaces.append(interface)
                return interface
        # The engine closed while the factory ran: don't leak an open
        # interface past close() -- tear it down (best-effort: a teardown
        # error must not mask the uniform engine-closed report) and raise
        # directly, not via _check_open, because a failing concurrent
        # close() may already have reverted the flag.
        try:
            interface.close()
        except BaseException:  # noqa: BLE001  # repro-lint: disable=RL005 - best-effort cleanup before the closed-engine report
            pass
        raise PSException(
            f"the TPS engine for {type_name(self.event_type)} is closed; "
            "new_interface is no longer available"
        )

    # Paper-compatible camelCase alias.
    def newInterface(  # noqa: N802 - paper-compatible alias
        self,
        name: str = JXTA,
        criteria: Optional[Criteria] = None,
        instance: Optional[EventT] = None,
        argv: Optional[Sequence[str]] = None,
        **params: Any,
    ) -> TPSInterface[EventT]:
        """Alias of :meth:`new_interface` matching the paper's listing."""
        return self.new_interface(name, criteria, instance, argv, **params)

    # -------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Close every interface this engine created (idempotent).

        Afterwards :meth:`new_interface` raises :class:`PSException`; the
        already-closed interfaces keep answering their history queries.
        Every interface is attempted even when one fails to close; in that
        case the first error is re-raised and the engine reverts to open so
        a retry re-attempts the stragglers (closing an interface twice is a
        no-op).  As with :meth:`TPSInterface.close`, exactly one concurrent
        caller runs the teardown, and a teardown failure (plus the revert)
        is visible only to that caller -- racing losers have already
        returned, so the winner owns the retry.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            interfaces = list(self.interfaces)
        first_error: Optional[BaseException] = None
        for interface in interfaces:
            try:
                interface.close()
            except BaseException as error:  # noqa: BLE001 - re-raised after the loop
                if first_error is None:
                    first_error = error
        if first_error is not None:
            with self._lock:
                self._closed = False
            raise first_error

    def _check_open(self) -> None:
        if self._closed:
            raise PSException(
                f"the TPS engine for {type_name(self.event_type)} is closed; "
                "new_interface is no longer available"
            )

    def __enter__(self) -> "TPSEngine[EventT]":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TPSEngine({type_name(self.event_type)}, interfaces={len(self.interfaces)})"


__all__ = ["TPSEngine"]
