"""Wire-service lookup: the "Connections" block of the TPS architecture.

"This block creates readers, input pipes and output pipes from an
advertisement.  It sends and receives new messages with the underlying
JXTA-WIRE service."  (paper, Section 3.4)

Mirroring the paper's ``WireServiceFinder`` (Figure 17), a
:class:`TPSWireServiceFinder` takes a peer-group advertisement that hosts the
WIRE service, instantiates the group locally, looks the wire service up and
hands out :class:`TPSMyInputPipe` / :class:`TPSMyOutputPipe` wrappers around
the wire pipes.
"""

from __future__ import annotations

from typing import Optional

from repro.core.exceptions import PSException
from repro.jxta.advertisement import PeerGroupAdvertisement, PipeAdvertisement
from repro.jxta.errors import JxtaError
from repro.jxta.message import Message
from repro.jxta.peergroup import PeerGroup
from repro.jxta.pipes import PipeMessageListener
from repro.jxta.wire import (
    SendReceipt,
    WireInputPipe,
    WireOutputPipe,
    WireReliability,
    WireService,
)


class WireServiceFinderException(PSException):
    """Raised when the wire service (or its pipe) cannot be found or created."""


class TPSMyInputPipe:
    """TPS-side wrapper around a wire input pipe plus its source advertisement."""

    def __init__(
        self,
        pipe: WireInputPipe,
        advertisement: PeerGroupAdvertisement,
        wire_service: Optional[WireService] = None,
    ) -> None:
        self.pipe = pipe
        self.advertisement = advertisement
        self._wire_service = wire_service

    @property
    def pipe_id(self):
        """The underlying pipe's ID."""
        return self.pipe.pipe_id

    @property
    def received_count(self) -> int:
        """Number of messages delivered to this pipe."""
        return self.pipe.received_count

    def add_listener(self, listener: PipeMessageListener) -> None:
        """Register a message listener on the underlying pipe."""
        self.pipe.add_listener(listener)

    def close(self) -> None:
        """Close the underlying pipe, deregistering it from the wire service.

        Routing the close through :meth:`WireService.close_input_pipe` (when
        the service is known) removes the pipe from the service's delivery
        table, so late messages count as ``wire_unbound_deliveries`` instead
        of being silently eaten by a closed ``InputPipe.receive``.
        """
        if self._wire_service is not None:
            self._wire_service.close_input_pipe(self.pipe)
        else:
            self.pipe.close()


class TPSMyOutputPipe:
    """TPS-side wrapper around a wire output pipe plus its source advertisement."""

    def __init__(self, pipe: WireOutputPipe, advertisement: PeerGroupAdvertisement) -> None:
        self.pipe = pipe
        self.advertisement = advertisement

    @property
    def pipe_id(self):
        """The underlying pipe's ID."""
        return self.pipe.pipe_id

    def send(self, message: Message) -> SendReceipt:
        """Send a message on the underlying wire pipe (``msg.dup()`` is handled there)."""
        return self.pipe.send(message)

    def add_failure_listener(self, listener) -> None:
        """Register a terminal-delivery-failure listener on the wire pipe."""
        self.pipe.add_failure_listener(listener)

    def resolved_targets(self) -> int:
        """Number of remote peers currently resolved for this pipe."""
        return len(self.pipe.resolved_peers())

    def close(self) -> None:
        """Close the underlying pipe."""
        self.pipe.close()


class TPSWireServiceFinder:
    """Finds the WIRE service advertised by a TPS peer-group advertisement.

    Usage (mirroring Figure 17)::

        finder = TPSWireServiceFinder(world_group, pg_advertisement)
        finder.lookup_wire_service()
        input_pipe = finder.create_input_pipe(listener)
        output_pipe = finder.create_output_pipe()
    """

    #: How long an output pipe may wait for resolution, kept for API fidelity
    #: with the paper's ``TIME_TO_WAIT`` (the simulation resolves bindings
    #: asynchronously, so this is only used as a hint).
    TIME_TO_WAIT = 3.0

    def __init__(self, peer_group: PeerGroup, pg_advertisement: PeerGroupAdvertisement) -> None:
        self.peer_group = peer_group
        self.pg_advertisement = pg_advertisement
        self.wire_group: Optional[PeerGroup] = None
        self.wire_service: Optional[WireService] = None
        self.my_input_pipe: Optional[TPSMyInputPipe] = None
        self.my_output_pipe: Optional[TPSMyOutputPipe] = None

    # ---------------------------------------------------------------- lookup

    def lookup_wire_service(self) -> WireService:
        """Instantiate the advertised group and look up its wire service."""
        if self.peer_group is None or self.pg_advertisement is None:
            raise WireServiceFinderException("Unable to lookup the wire service")
        try:
            self.wire_group = self.peer_group.new_group(self.pg_advertisement)
            self.wire_service = self.wire_group.lookup_service(WireService.WireName)
        except JxtaError as exc:
            raise WireServiceFinderException("Unable to lookup the wire service") from exc
        return self.wire_service

    def get_pipe_advertisement(self) -> PipeAdvertisement:
        """The pipe advertisement carried by the group's wire service advertisement."""
        service = self.pg_advertisement.service(WireService.WireName)
        if service is None or service.get_pipe() is None:
            raise WireServiceFinderException(
                "the peer-group advertisement does not carry a wire service pipe"
            )
        return service.get_pipe()

    # ----------------------------------------------------------------- pipes

    def create_input_pipe(
        self,
        listener: Optional[PipeMessageListener] = None,
        *,
        processing_cost: float = 0.0,
        reliability: Optional[WireReliability] = None,
    ) -> TPSMyInputPipe:
        """Create the wire input pipe used to receive events for this type."""
        wire = self._require_wire()
        pipe_advertisement = self.get_pipe_advertisement()
        try:
            pipe = wire.create_input_pipe(
                pipe_advertisement,
                listener,
                processing_cost=processing_cost,
                reliability=reliability,
            )
        except JxtaError as exc:
            raise WireServiceFinderException("Unable to create the input pipe.") from exc
        self.my_input_pipe = TPSMyInputPipe(pipe, self.pg_advertisement, wire)
        return self.my_input_pipe

    def create_output_pipe(
        self,
        *,
        extra_send_cost: float = 0.0,
        reliability: Optional[WireReliability] = None,
    ) -> TPSMyOutputPipe:
        """Create the wire output pipe used to publish events for this type."""
        wire = self._require_wire()
        pipe_advertisement = self.get_pipe_advertisement()
        try:
            pipe = wire.create_output_pipe(
                pipe_advertisement,
                extra_send_cost=extra_send_cost,
                reliability=reliability,
            )
        except JxtaError as exc:
            raise WireServiceFinderException("Unable to create the output pipe.") from exc
        self.my_output_pipe = TPSMyOutputPipe(pipe, self.pg_advertisement)
        return self.my_output_pipe

    def publish(self, message: Message) -> SendReceipt:
        """Send a message on the output pipe (Figure 17's ``publish``)."""
        if self.my_output_pipe is None:
            raise WireServiceFinderException("no output pipe has been created")
        return self.my_output_pipe.send(message.dup())

    def _require_wire(self) -> WireService:
        if self.wire_service is None:
            self.lookup_wire_service()
        assert self.wire_service is not None
        return self.wire_service


__all__ = [
    "TPSMyInputPipe",
    "TPSMyOutputPipe",
    "TPSWireServiceFinder",
    "WireServiceFinderException",
]
