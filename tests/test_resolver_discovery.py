"""Tests for the Peer Resolver Protocol and the Peer Discovery Protocol."""

from __future__ import annotations

from typing import Optional

import pytest

from repro.jxta.advertisement import PeerGroupAdvertisement, PipeAdvertisement
from repro.jxta.cache import DiscoveryKind
from repro.jxta.discovery import DiscoveryEvent
from repro.jxta.errors import ResolverError
from repro.jxta.resolver import ResolverQuery, ResolverResponse


class EchoHandler:
    """A resolver handler answering every query with an upper-cased echo."""

    def __init__(self):
        self.queries = []
        self.responses = []

    def process_query(self, query: ResolverQuery) -> Optional[str]:
        self.queries.append(query)
        return query.body.upper()

    def process_response(self, response: ResolverResponse) -> None:
        self.responses.append(response)


class SilentHandler(EchoHandler):
    """A handler that records queries but never responds."""

    def process_query(self, query: ResolverQuery) -> Optional[str]:
        self.queries.append(query)
        return None


class TestResolver:
    def test_directed_query_and_response(self, two_peers):
        alpha, beta, builder = two_peers
        asker, answerer = EchoHandler(), EchoHandler()
        alpha.world_group.resolver.register_handler("echo", asker)
        beta.world_group.resolver.register_handler("echo", answerer)
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        query_id = alpha.world_group.resolver.send_query("echo", "hello", dest_peer=beta.peer_id)
        builder.settle(rounds=2)
        assert [q.body for q in answerer.queries] == ["hello"]
        assert [r.body for r in asker.responses] == ["HELLO"]
        assert asker.responses[0].query_id == query_id
        assert asker.responses[0].src_peer == beta.peer_id

    def test_propagated_query_collects_multiple_responses(self, lan):
        builder = lan
        source = builder.peer_named("peer-0")
        handler = EchoHandler()
        source.world_group.resolver.register_handler("echo", handler)
        for name in ("peer-1", "peer-2", "rdv-0"):
            builder.peer_named(name).world_group.resolver.register_handler("echo", EchoHandler())
        source.world_group.resolver.send_query("echo", "ping")
        builder.settle(rounds=3)
        assert len(handler.responses) == 3
        assert {r.body for r in handler.responses} == {"PING"}

    def test_query_requires_registered_local_handler(self, two_peers):
        alpha, _beta, _builder = two_peers
        with pytest.raises(ResolverError):
            alpha.world_group.resolver.send_query("unregistered", "x")

    def test_unhandled_query_is_counted_not_crashed(self, two_peers):
        alpha, beta, builder = two_peers
        alpha.world_group.resolver.register_handler("only-here", EchoHandler())
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        alpha.world_group.resolver.send_query("only-here", "x", dest_peer=beta.peer_id)
        builder.settle(rounds=2)
        assert beta.metrics.counters().get("resolver_unhandled", 0) == 1

    def test_no_response_when_handler_returns_none(self, two_peers):
        alpha, beta, builder = two_peers
        asker = EchoHandler()
        alpha.world_group.resolver.register_handler("silent", asker)
        beta.world_group.resolver.register_handler("silent", SilentHandler())
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        alpha.world_group.resolver.send_query("silent", "x", dest_peer=beta.peer_id)
        builder.settle(rounds=2)
        assert asker.responses == []

    def test_unregister_handler(self, two_peers):
        alpha, _beta, _builder = two_peers
        resolver = alpha.world_group.resolver
        resolver.register_handler("temp", EchoHandler())
        assert "temp" in resolver.handler_names()
        resolver.unregister_handler("temp")
        assert "temp" not in resolver.handler_names()

    def test_group_scoping_isolates_queries(self, two_peers):
        alpha, beta, builder = two_peers
        # beta registers the handler only in a child group alpha is not part of.
        child_adv = PeerGroupAdvertisement(name="private-group")
        child = beta.world_group.new_group(child_adv)
        handler = EchoHandler()
        child.resolver.register_handler("echo", handler)
        alpha.world_group.resolver.register_handler("echo", EchoHandler())
        alpha.world_group.resolver.send_query("echo", "ping")
        builder.settle(rounds=3)
        assert handler.queries == []  # world-group query never reaches the child group


class TestDiscovery:
    def test_local_publish_and_search(self, two_peers):
        alpha, _beta, _builder = two_peers
        discovery = alpha.world_group.discovery
        advertisement = PeerGroupAdvertisement(name="PS$Widget")
        discovery.publish(advertisement, DiscoveryKind.GROUP)
        found = discovery.get_local_advertisements(DiscoveryKind.GROUP, "Name", "PS$*")
        assert advertisement in found

    def test_remote_query_finds_published_advertisement(self, two_peers):
        alpha, beta, builder = two_peers
        advertisement = PeerGroupAdvertisement(name="PS$Widget")
        beta.world_group.discovery.publish(advertisement, DiscoveryKind.GROUP)
        events: list[DiscoveryEvent] = []
        alpha.world_group.discovery.add_discovery_listener(events.append)
        alpha.world_group.discovery.get_remote_advertisements(
            None, DiscoveryKind.GROUP, "Name", "PS$*"
        )
        builder.settle(rounds=3)
        assert len(events) == 1
        (event,) = events
        assert event.kind == DiscoveryKind.GROUP
        assert event.src_peer == beta.peer_id
        assert event.advertisements[0].get_gid() == advertisement.get_gid()
        # The response is also cached locally.
        local = alpha.world_group.discovery.get_local_advertisements(
            DiscoveryKind.GROUP, "Name", "PS$*"
        )
        assert local and local[0].get_gid() == advertisement.get_gid()

    def test_remote_query_directed_to_one_peer(self, lan):
        builder = lan
        alpha = builder.peer_named("peer-0")
        beta = builder.peer_named("peer-1")
        gamma = builder.peer_named("peer-2")
        beta.world_group.discovery.publish(
            PeerGroupAdvertisement(name="PS$OnBeta"), DiscoveryKind.GROUP
        )
        gamma.world_group.discovery.publish(
            PeerGroupAdvertisement(name="PS$OnGamma"), DiscoveryKind.GROUP
        )
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        events = []
        alpha.world_group.discovery.add_discovery_listener(events.append)
        alpha.world_group.discovery.get_remote_advertisements(
            beta.peer_id, DiscoveryKind.GROUP, "Name", "PS$*"
        )
        builder.settle(rounds=3)
        names = {adv.name for event in events for adv in event.advertisements}
        assert names == {"PS$OnBeta"}

    def test_remote_publish_pushes_to_other_peers(self, two_peers):
        alpha, beta, builder = two_peers
        advertisement = PeerGroupAdvertisement(name="PS$Pushed")
        alpha.world_group.discovery.publish(advertisement, DiscoveryKind.GROUP)
        alpha.world_group.discovery.remote_publish(advertisement, DiscoveryKind.GROUP)
        builder.settle(rounds=3)
        found = beta.world_group.discovery.get_local_advertisements(
            DiscoveryKind.GROUP, "Name", "PS$Pushed"
        )
        assert len(found) == 1

    def test_threshold_limits_response_size(self, two_peers):
        alpha, beta, builder = two_peers
        for index in range(8):
            beta.world_group.discovery.publish(
                PeerGroupAdvertisement(name=f"PS$Many-{index}"), DiscoveryKind.GROUP
            )
        events = []
        alpha.world_group.discovery.add_discovery_listener(events.append)
        alpha.world_group.discovery.get_remote_advertisements(
            None, DiscoveryKind.GROUP, "Name", "PS$Many-*", threshold=3
        )
        builder.settle(rounds=3)
        assert sum(len(e.advertisements) for e in events) == 3

    def test_flush_advertisements(self, two_peers):
        alpha, _beta, _builder = two_peers
        discovery = alpha.world_group.discovery
        advertisement = PeerGroupAdvertisement(name="PS$Flushable")
        discovery.publish(advertisement, DiscoveryKind.GROUP)
        removed = discovery.flush_advertisements(advertisement.get_gid().to_urn(), DiscoveryKind.GROUP)
        assert removed == 1
        # Flushing everything of a kind.
        discovery.publish(advertisement, DiscoveryKind.GROUP)
        assert discovery.flush_advertisements(None, DiscoveryKind.GROUP) >= 1

    def test_listener_remove(self, two_peers):
        alpha, beta, builder = two_peers
        events = []
        discovery = alpha.world_group.discovery
        discovery.add_discovery_listener(events.append)
        discovery.remove_discovery_listener(events.append)
        beta.world_group.discovery.publish(
            PeerGroupAdvertisement(name="PS$X"), DiscoveryKind.GROUP
        )
        discovery.get_remote_advertisements(None, DiscoveryKind.GROUP, "Name", "PS$*")
        builder.settle(rounds=3)
        assert events == []

    def test_peer_advertisements_published_at_boot(self, lan):
        builder = lan
        rendezvous = builder.peer_named("rdv-0")
        # Peers push their peer advertisement at creation; the rendez-vous
        # (present from the start) has learned about the later peers.
        found = rendezvous.world_group.discovery.get_local_advertisements(
            DiscoveryKind.PEER, "Name", "peer-*"
        )
        assert len(found) >= 1


class TestMalformedRemoteBodies:
    """A remote peer's malformed XML must never crash the dispatch loop.

    Every resolver handler on the receive path guards its ``parse_xml`` call:
    the body is counted in a ``*_malformed`` metric and dropped.  (Before the
    parse-path fixes, these raised XmlParseError straight through
    ``ResolverService._on_envelope``.)
    """

    BAD_BODIES = ["<not xml", "", "plain text", "<a>&#xZZ;</a>", "<a></b>"]

    @staticmethod
    def _query(body):
        from repro.jxta.ids import PeerID

        return ResolverQuery(handler_name="h", query_id="q1", body=body, src_peer=PeerID())

    @staticmethod
    def _response(body):
        from repro.jxta.ids import PeerID

        return ResolverResponse(handler_name="h", query_id="q1", body=body, src_peer=PeerID())

    def test_discovery_drops_malformed_bodies(self, two_peers):
        alpha, _, _ = two_peers
        discovery = alpha.world_group.discovery
        for body in self.BAD_BODIES:
            assert discovery.process_query(self._query(body)) is None
            discovery.process_response(self._response(body))
        # Numeric fields that do not parse are dropped too.
        assert discovery.process_query(self._query("<DiscoveryQuery><Kind>NaN</Kind></DiscoveryQuery>")) is None
        assert alpha.metrics.counters().get("discovery_malformed", 0) >= len(self.BAD_BODIES) * 2 + 1

    def test_cms_drops_malformed_bodies(self, two_peers):
        alpha, _, _ = two_peers
        content = alpha.world_group.content
        for body in self.BAD_BODIES:
            assert content.process_query(self._query(body)) is None
            content.process_response(self._response(body))
        # Non-hex fetch payloads are dropped, not raised from bytes.fromhex.
        content.process_response(self._response(
            "<ContentFetchResponse><Id>x</Id><Data>zz</Data><Checksum>c</Checksum>"
            "</ContentFetchResponse>"
        ))
        assert alpha.metrics.counters().get("cms_malformed", 0) >= len(self.BAD_BODIES) * 2 + 1

    def test_pipe_binding_drops_malformed_bodies(self, two_peers):
        alpha, _, _ = two_peers
        service = alpha.world_group.pipe_service
        for body in self.BAD_BODIES:
            assert service.process_query(self._query(body)) is None
            service.process_response(self._response(body))
        assert alpha.metrics.counters().get("pbp_malformed", 0) >= len(self.BAD_BODIES) * 2

    def test_peerinfo_drops_malformed_bodies(self, two_peers):
        alpha, _, _ = two_peers
        service = alpha.world_group.peerinfo
        for body in self.BAD_BODIES + ["<PeerInfoResponse><PID>bogus</PID></PeerInfoResponse>"]:
            service.process_response(self._response(body))
        assert service.received == []
        assert alpha.metrics.counters().get("peerinfo_malformed", 0) >= len(self.BAD_BODIES) + 1

    def test_monitoring_drops_malformed_bodies(self, two_peers):
        alpha, _, _ = two_peers
        service = alpha.world_group.monitoring
        for body in self.BAD_BODIES + [
            "<MonitoringReport><PID>bogus</PID></MonitoringReport>"
        ]:
            service.process_response(self._response(body))
        assert service.collected == []
        assert alpha.metrics.counters().get("monitoring_malformed", 0) >= len(self.BAD_BODIES) + 1

    def test_advertisement_factory_wraps_parse_errors(self):
        from repro.jxta.advertisement import AdvertisementFactory
        from repro.jxta.errors import AdvertisementError

        with pytest.raises(AdvertisementError):
            AdvertisementFactory.from_document("<not xml")
