"""Type-based Publish/Subscribe (TPS) -- the paper's contribution.

The public API mirrors the paper's Section 3:

* :class:`TPSEngine` -- one per event type (hierarchy); its
  :meth:`~repro.core.engine.TPSEngine.new_interface` returns a
  :class:`TPSInterface`.
* :class:`TPSInterface` -- the seven operations of Figure 8: ``publish``,
  ``subscribe`` (single callback or a list), ``unsubscribe`` (one or all),
  ``objects_received`` and ``objects_sent``.
* :class:`TPSCallBackInterface` / :class:`TPSExceptionHandler` -- the typed
  callback and exception-handler interfaces (plain callables are accepted
  everywhere).
* :class:`Criteria` -- advertisement and content filtering.
* :class:`PSException` / :class:`CallBackException` -- the API's exceptions.

Two bindings are provided: ``"JXTA"`` (over the simulated JXTA substrate,
:class:`JxtaTPSEngine`) and ``"LOCAL"`` (in-process, :class:`LocalTPSEngine`).
"""

from __future__ import annotations

from repro.core.advertisements import (
    PS_PREFIX,
    TPSAdvertisementsCreator,
    TPSAdvertisementsFinder,
)
from repro.core.callbacks import (
    CollectingCallback,
    CollectingExceptionHandler,
    FunctionCallback,
    FunctionExceptionHandler,
    PrintingExceptionHandler,
    TPSCallBackInterface,
    TPSExceptionHandler,
)
from repro.core.engine import TPSEngine
from repro.core.exceptions import (
    CallBackException,
    NotInitializedError,
    PSException,
    TypeMismatchError,
)
from repro.core.interface import PublishReceipt, Subscription, TPSInterface
from repro.core.jxta_engine import JxtaTPSEngine, TPSAttachment, TPSConfig
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.reply import Reply, ReplyEndpoint, Replyable, reply
from repro.core.subscriber import TPSPipeReader, TPSSubscriberManager
from repro.core.type_registry import (
    Criteria,
    TypeRegistry,
    all_subtypes,
    hierarchy_root,
    type_name,
)
from repro.core.wire_finder import (
    TPSMyInputPipe,
    TPSMyOutputPipe,
    TPSWireServiceFinder,
    WireServiceFinderException,
)
from repro.core.xml_types import (
    DynamicEvent,
    XmlEventCodec,
    XmlTypeDescription,
    describe_type,
)

__all__ = [
    "DynamicEvent",
    "Reply",
    "ReplyEndpoint",
    "Replyable",
    "XmlEventCodec",
    "XmlTypeDescription",
    "describe_type",
    "reply",
    "CallBackException",
    "CollectingCallback",
    "CollectingExceptionHandler",
    "Criteria",
    "FunctionCallback",
    "FunctionExceptionHandler",
    "JxtaTPSEngine",
    "LocalBus",
    "LocalTPSEngine",
    "NotInitializedError",
    "PSException",
    "PS_PREFIX",
    "PrintingExceptionHandler",
    "PublishReceipt",
    "Subscription",
    "TPSAdvertisementsCreator",
    "TPSAdvertisementsFinder",
    "TPSAttachment",
    "TPSCallBackInterface",
    "TPSConfig",
    "TPSEngine",
    "TPSExceptionHandler",
    "TPSInterface",
    "TPSMyInputPipe",
    "TPSMyOutputPipe",
    "TPSPipeReader",
    "TPSSubscriberManager",
    "TPSWireServiceFinder",
    "TypeMismatchError",
    "TypeRegistry",
    "all_subtypes",
    "hierarchy_root",
    "type_name",
]
