"""Unit tests for the TPS architecture blocks of Figures 10-11.

The end-to-end behaviour is covered by ``test_jxta_engine.py``; these tests
exercise the individual blocks -- the advertisements creator, the
advertisements finder and the wire-service finder -- the way the paper's
Section 3.4 describes them, independently of the engine that normally drives
them.
"""

from __future__ import annotations

import pytest

from repro.core.advertisements import (
    PS_PREFIX,
    TPSAdvertisementsCreator,
    TPSAdvertisementsFinder,
)
from repro.core.wire_finder import TPSWireServiceFinder, WireServiceFinderException
from repro.jxta.advertisement import PeerGroupAdvertisement
from repro.jxta.cache import DiscoveryKind
from repro.jxta.message import Message
from repro.jxta.pipes import PipeKind
from repro.jxta.wire import WireService


class TestAdvertisementsCreator:
    def test_created_advertisement_structure(self, two_peers):
        alpha, _beta, _builder = two_peers
        creator = TPSAdvertisementsCreator(alpha.world_group)
        advertisement = creator.create_peer_group_advertisement("SkiRental")
        # Name = PS_PREFIX + pipe name; the pipe is named after the type.
        assert advertisement.name == PS_PREFIX + "SkiRental"
        assert advertisement.creator_peer_id == alpha.peer_id
        wire = advertisement.service(WireService.WireName)
        assert wire is not None
        assert wire.version == WireService.WireVersion
        assert wire.get_pipe().name == "SkiRental"
        assert wire.get_pipe().pipe_kind == PipeKind.WIRE.value
        # The resolver service advertisement carries the creator's peer id as
        # an extra parameter (Figure 15, lines 37-41).
        resolver = advertisement.service("jxta.service.resolver")
        assert alpha.peer_id.to_urn() in resolver.get_params()
        assert creator.advertisement is advertisement

    def test_publish_advertisement_reaches_remote_cache(self, two_peers):
        alpha, beta, builder = two_peers
        creator = TPSAdvertisementsCreator(alpha.world_group)
        advertisement = creator.create_peer_group_advertisement("Widget")
        creator.publish_advertisement(advertisement)
        builder.settle(rounds=3)
        local = alpha.world_group.discovery.get_local_advertisements(
            DiscoveryKind.GROUP, "Name", PS_PREFIX + "Widget"
        )
        remote = beta.world_group.discovery.get_local_advertisements(
            DiscoveryKind.GROUP, "Name", PS_PREFIX + "Widget"
        )
        assert len(local) == 1
        assert len(remote) == 1

    def test_each_creation_gets_fresh_ids(self, two_peers):
        alpha, _beta, _builder = two_peers
        creator = TPSAdvertisementsCreator(alpha.world_group)
        first = creator.create_peer_group_advertisement("T")
        second = creator.create_peer_group_advertisement("T")
        assert first.get_gid() != second.get_gid()
        assert (
            first.service(WireService.WireName).get_pipe().pipe_id
            != second.service(WireService.WireName).get_pipe().pipe_id
        )


class TestAdvertisementsFinder:
    def test_finder_discovers_remote_advertisement(self, two_peers):
        alpha, beta, builder = two_peers
        creator = TPSAdvertisementsCreator(beta.world_group)
        advertisement = creator.create_peer_group_advertisement("Thing")
        creator.publish_advertisement(advertisement)
        builder.settle(rounds=2)
        finder = TPSAdvertisementsFinder(alpha.world_group, PS_PREFIX + "Thing")
        found = []
        finder.add_advertisements_listener(found.append)
        finder.start()
        builder.settle(rounds=4)
        assert len(found) == 1
        assert found[0].get_gid() == advertisement.get_gid()
        assert finder.advertisements == found
        finder.stop()
        assert not finder.running

    def test_finder_deduplicates_by_group_id(self, two_peers):
        alpha, beta, builder = two_peers
        creator = TPSAdvertisementsCreator(beta.world_group)
        advertisement = creator.create_peer_group_advertisement("Dup")
        creator.publish_advertisement(advertisement)
        builder.settle(rounds=2)
        finder = TPSAdvertisementsFinder(alpha.world_group, PS_PREFIX + "Dup")
        found = []
        finder.add_advertisements_listener(found.append)
        finder.start(interval=2.0)
        # Several polling rounds pass; the advertisement is reported once.
        builder.settle(rounds=10)
        assert len(found) == 1
        finder.stop()

    def test_finder_ignores_non_matching_prefixes(self, two_peers):
        alpha, beta, builder = two_peers
        creator = TPSAdvertisementsCreator(beta.world_group)
        creator.publish_advertisement(creator.create_peer_group_advertisement("Other"))
        builder.settle(rounds=2)
        finder = TPSAdvertisementsFinder(alpha.world_group, PS_PREFIX + "Wanted")
        found = []
        finder.add_advertisements_listener(found.append)
        finder.start()
        builder.settle(rounds=4)
        assert found == []
        finder.stop()

    def test_finder_picks_up_later_advertisements(self, two_peers):
        alpha, beta, builder = two_peers
        finder = TPSAdvertisementsFinder(alpha.world_group, PS_PREFIX + "Late")
        found = []
        finder.add_advertisements_listener(found.append)
        finder.start(interval=2.0)
        builder.settle(rounds=3)
        assert found == []
        creator = TPSAdvertisementsCreator(beta.world_group)
        creator.publish_advertisement(creator.create_peer_group_advertisement("Late"))
        builder.settle(rounds=6)
        assert len(found) == 1
        finder.stop()

    def test_find_advertisement_helper(self, two_peers):
        alpha, _beta, _builder = two_peers
        finder = TPSAdvertisementsFinder(alpha.world_group, PS_PREFIX)
        a = PeerGroupAdvertisement(name=PS_PREFIX + "A")
        b = PeerGroupAdvertisement(name=PS_PREFIX + "B")
        assert not finder.find_advertisement([], a)
        assert finder.find_advertisement([a], a)
        assert not finder.find_advertisement([a], b)

    def test_start_twice_is_idempotent(self, two_peers):
        alpha, _beta, builder = two_peers
        finder = TPSAdvertisementsFinder(alpha.world_group, PS_PREFIX + "X")
        finder.start()
        finder.start()
        builder.settle(rounds=2)
        finder.stop()
        finder.stop()


class TestWireServiceFinder:
    def _advertisement(self, group, name="Wired"):
        creator = TPSAdvertisementsCreator(group)
        return creator.create_peer_group_advertisement(name)

    def test_lookup_and_pipe_creation(self, two_peers):
        alpha, beta, builder = two_peers
        advertisement = self._advertisement(beta.world_group)
        # Subscriber side (beta): input pipe.
        sub_finder = TPSWireServiceFinder(beta.world_group, advertisement)
        sub_finder.lookup_wire_service()
        received = []
        sub_finder.create_input_pipe(lambda message, source: received.append(message))
        builder.settle(rounds=2)
        # Publisher side (alpha): output pipe.
        pub_finder = TPSWireServiceFinder(alpha.world_group, advertisement)
        assert isinstance(pub_finder.lookup_wire_service(), WireService)
        output = pub_finder.create_output_pipe()
        builder.settle(rounds=2)
        assert output.resolved_targets() == 1
        message = Message()
        message.add("payload", "through the finder")
        pub_finder.publish(message)
        builder.settle(rounds=4)
        assert len(received) == 1
        assert received[0].get_text("payload") == "through the finder"

    def test_publish_without_output_pipe_raises(self, two_peers):
        alpha, _beta, _builder = two_peers
        advertisement = self._advertisement(alpha.world_group)
        finder = TPSWireServiceFinder(alpha.world_group, advertisement)
        finder.lookup_wire_service()
        with pytest.raises(WireServiceFinderException):
            finder.publish(Message())

    def test_advertisement_without_wire_service_rejected(self, two_peers):
        alpha, _beta, _builder = two_peers
        bare = PeerGroupAdvertisement(name=PS_PREFIX + "Bare")
        finder = TPSWireServiceFinder(alpha.world_group, bare)
        finder.lookup_wire_service()
        with pytest.raises(WireServiceFinderException):
            finder.create_input_pipe()
        with pytest.raises(WireServiceFinderException):
            finder.create_output_pipe()

    def test_lazy_lookup_on_pipe_creation(self, two_peers):
        alpha, _beta, builder = two_peers
        advertisement = self._advertisement(alpha.world_group)
        finder = TPSWireServiceFinder(alpha.world_group, advertisement)
        # create_output_pipe looks the wire service up on demand.
        output = finder.create_output_pipe()
        assert finder.wire_service is not None
        assert output.pipe_id == advertisement.service(WireService.WireName).get_pipe().pipe_id
