"""Rendez-vous service: connection leases and propagation membership.

"Rendez-vous (rdv) are specific peers that keep track of information about
peers that are connected.  Rendez-vous allow to make the bridge between two
different sub-networks.  They are mainly used to dispatch information and
discovery queries between peers."  (paper, Section 2.1)

The propagation mechanics themselves (re-flooding with duplicate suppression)
live in the endpoint service; this service manages the *connections*: an edge
peer requests a lease from a configured rendez-vous address, the rendez-vous
grants it and records the client, and the client renews the lease
periodically.  Both sides expose their connection tables, which the endpoint
uses when propagating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.jxta.endpoint import EndpointEnvelope
from repro.jxta.ids import PeerID
from repro.jxta.message import Message
from repro.net.simclock import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.peergroup import PeerGroup

#: How long a granted lease lasts (seconds of virtual time).
DEFAULT_LEASE_DURATION = 30 * 60.0
#: How often clients renew their leases.
DEFAULT_RENEWAL_INTERVAL = 10 * 60.0


@dataclass
class Lease:
    """One granted rendez-vous connection."""

    peer_id: PeerID
    address: str
    granted_at: float
    expires_at: float

    def valid(self, now: float) -> bool:
        """Whether the lease is still in force at virtual time ``now``."""
        return now < self.expires_at


class RendezvousService:
    """Per-group rendez-vous connection management."""

    SERVICE_NAME = "jxta.service.rendezvous"

    _KIND_REQUEST = "lease-request"
    _KIND_GRANT = "lease-grant"
    _KIND_CANCEL = "lease-cancel"

    def __init__(self, group: "PeerGroup") -> None:
        self.group = group
        self.peer = group.peer
        self._param = group.group_id.to_urn()
        #: Leases granted by this peer (when acting as a rendez-vous).
        self._granted: Dict[str, Lease] = {}
        #: Leases held by this peer on remote rendez-vous peers.
        self._held: Dict[str, Lease] = {}
        self._renewal_task: Optional[PeriodicTask] = None
        self.peer.endpoint.register_listener(self.SERVICE_NAME, self._param, self._on_envelope)

    # ------------------------------------------------------------ properties

    def granted_leases(self) -> Dict[str, Lease]:
        """Leases this rendez-vous has granted (client URN -> lease)."""
        return dict(self._granted)

    def held_leases(self) -> Dict[str, Lease]:
        """Leases this peer holds on rendez-vous peers (rdv URN -> lease)."""
        return dict(self._held)

    def is_connected(self) -> bool:
        """Whether this peer currently holds at least one valid lease."""
        now = self.peer.now
        return any(lease.valid(now) for lease in self._held.values())

    # --------------------------------------------------------------- client

    def connect(self, rendezvous_address: str) -> bool:
        """Request a lease from the rendez-vous at ``rendezvous_address``.

        The grant arrives asynchronously; once it does, the rendez-vous is
        added to the endpoint's propagation targets.  Returns True when the
        request could be sent.
        """
        message = Message()
        message.add("kind", self._KIND_REQUEST)
        message.add("peer", self.peer.peer_id.to_urn())
        message.add("address", self.peer.node.address)
        message.add("name", self.peer.name)
        sent = self.peer.endpoint.send_to_address(
            rendezvous_address, message, self.SERVICE_NAME, self._param
        )
        if sent:
            self.peer.metrics.counter("rendezvous_lease_requests").increment()
        return sent

    def start_lease_renewal(
        self, interval: float = DEFAULT_RENEWAL_INTERVAL
    ) -> PeriodicTask:
        """Renew held leases periodically (idempotent)."""
        if self._renewal_task is None or self._renewal_task.stopped:
            self._renewal_task = self.peer.simulator.schedule_periodic(
                interval, self._renew_all, label=f"rdv-renewal:{self.peer.name}"
            )
        return self._renewal_task

    def stop_lease_renewal(self) -> None:
        """Stop the periodic lease renewal, if running."""
        if self._renewal_task is not None:
            self._renewal_task.stop()

    def disconnect(self, rendezvous_peer: PeerID) -> None:
        """Cancel a held lease and drop the rendez-vous from propagation."""
        urn = rendezvous_peer.to_urn()
        lease = self._held.pop(urn, None)
        self.peer.endpoint.remove_rendezvous(urn)
        if lease is None:
            return
        message = Message()
        message.add("kind", self._KIND_CANCEL)
        message.add("peer", self.peer.peer_id.to_urn())
        self.peer.endpoint.send(rendezvous_peer, message, self.SERVICE_NAME, self._param)

    def _renew_all(self) -> None:
        for urn, lease in list(self._held.items()):
            self.connect(lease.address)

    # --------------------------------------------------------- rendez-vous

    def expire_leases(self) -> int:
        """Drop granted leases whose lifetime has passed; return how many."""
        now = self.peer.now
        doomed = [urn for urn, lease in self._granted.items() if not lease.valid(now)]
        for urn in doomed:
            del self._granted[urn]
            self.peer.endpoint.remove_client(urn)
        return len(doomed)

    # --------------------------------------------------------------- receive

    def _on_envelope(self, envelope: EndpointEnvelope, message: Message) -> None:
        kind = message.get_text("kind")
        if kind == self._KIND_REQUEST:
            self._handle_request(envelope, message)
        elif kind == self._KIND_GRANT:
            self._handle_grant(envelope, message)
        elif kind == self._KIND_CANCEL:
            self._handle_cancel(message)

    def _handle_request(self, envelope: EndpointEnvelope, message: Message) -> None:
        if not self.peer.is_rendezvous:
            # Only rendez-vous peers grant leases.
            self.peer.metrics.counter("rendezvous_requests_refused").increment()
            return
        client_urn = message.get_text("peer")
        client_address = message.get_text("address")
        now = self.peer.now
        lease = Lease(
            peer_id=PeerID.from_urn(client_urn),
            address=client_address,
            granted_at=now,
            expires_at=now + DEFAULT_LEASE_DURATION,
        )
        self._granted[client_urn] = lease
        self.peer.endpoint.add_client(client_urn, client_address)
        self.peer.metrics.counter("rendezvous_leases_granted").increment()
        grant = Message()
        grant.add("kind", self._KIND_GRANT)
        grant.add("peer", self.peer.peer_id.to_urn())
        grant.add("address", self.peer.node.address)
        grant.add("expires_at", f"{lease.expires_at:.6f}")
        self.peer.endpoint.send(
            PeerID.from_urn(client_urn), grant, self.SERVICE_NAME, self._param
        )

    def _handle_grant(self, envelope: EndpointEnvelope, message: Message) -> None:
        rdv_urn = message.get_text("peer")
        rdv_address = message.get_text("address")
        expires_at = float(message.get_text("expires_at", "0"))
        self._held[rdv_urn] = Lease(
            peer_id=PeerID.from_urn(rdv_urn),
            address=rdv_address,
            granted_at=self.peer.now,
            expires_at=expires_at,
        )
        self.peer.endpoint.add_rendezvous(rdv_urn, rdv_address)
        self.peer.metrics.counter("rendezvous_leases_held").increment()

    def _handle_cancel(self, message: Message) -> None:
        client_urn = message.get_text("peer")
        self._granted.pop(client_urn, None)
        self.peer.endpoint.remove_client(client_urn)
        self.peer.metrics.counter("rendezvous_leases_cancelled").increment()


__all__ = ["DEFAULT_LEASE_DURATION", "DEFAULT_RENEWAL_INTERVAL", "Lease", "RendezvousService"]
