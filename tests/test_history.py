"""Unit and regression tests of the PR 10 history stores.

Covers the :class:`~repro.core.history.RingHistory` offset/eviction
contract, the :class:`~repro.storage.log.LogHistory` durable format
(including crash-recovery truncation of torn tails and cross-restart offset
continuity), the ``make_history`` factory validation, and the satellite-1
regression: no engine's in-memory history may grow beyond its configured
bound under a sustained publish loop.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.apps.skirental.types import SkiRental
from repro.core import TPSConfig, TPSEngine
from repro.core.exceptions import PSException
from repro.core.history import (
    DEFAULT_HISTORY_SIZE,
    RingHistory,
    make_history,
    make_history_pair,
)
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.type_registry import TypeRegistry
from repro.storage.log import LogHistory

pytestmark = [pytest.mark.durability]


def _offer(index: int) -> SkiRental:
    return SkiRental(f"shop-{index}", float(index), "Salomon", 7)


def _codec():
    return TypeRegistry(SkiRental).codec


def _log(path, **kwargs) -> LogHistory:
    codec = _codec()
    return LogHistory(str(path), encode=codec.encode, decode=codec.decode, **kwargs)


class TestRingHistory:
    def test_offsets_are_dense_and_monotonic(self):
        ring = RingHistory(8)
        offsets = [ring.append(_offer(i)) for i in range(5)]
        assert offsets == [0, 1, 2, 3, 4]
        assert ring.next_offset == 5
        assert ring.start_offset == 0
        assert len(ring) == 5

    def test_eviction_advances_start_offset_but_never_reuses_offsets(self):
        ring = RingHistory(3)
        for i in range(10):
            assert ring.append(i) == i
        assert len(ring) == 3
        assert ring.start_offset == 7
        assert ring.next_offset == 10
        assert [entry[0] for entry in ring.since(0)] == [7, 8, 9]
        assert ring.snapshot() == [7, 8, 9]

    def test_since_filters_by_offset(self):
        ring = RingHistory(16)
        for i in range(6):
            ring.append(i * 10, meta=f"m{i}")
        entries = ring.since(4)
        assert entries == [(4, 40, "m4"), (5, 50, "m5")]
        assert ring.since(6) == []

    def test_clear_keeps_the_offset_counter_monotone(self):
        ring = RingHistory(4)
        for i in range(4):
            ring.append(i)
        ring.clear()
        assert len(ring) == 0
        assert ring.start_offset == ring.next_offset == 4
        assert ring.append("next") == 4

    def test_unbounded_when_capacity_nonpositive(self):
        ring = RingHistory(0)
        for i in range(5000):
            ring.append(i)
        assert len(ring) == 5000
        assert ring.start_offset == 0

    def test_bool_capacity_rejected(self):
        with pytest.raises(PSException):
            RingHistory(True)


class TestLogHistory:
    def test_round_trip_and_offsets(self, tmp_path):
        log = _log(tmp_path / "sent.log")
        offsets = [log.append(_offer(i), meta=f"id-{i}") for i in range(6)]
        assert offsets == list(range(6))
        entries = log.since(3)
        assert [offset for offset, _, _ in entries] == [3, 4, 5]
        assert [meta for _, _, meta in entries] == ["id-3", "id-4", "id-5"]
        assert [event.shop for _, event, _ in entries] == ["shop-3", "shop-4", "shop-5"]
        assert len(log.snapshot()) == 6
        assert log.start_offset == 0
        log.close()

    def test_offsets_continue_across_reopen(self, tmp_path):
        path = tmp_path / "sent.log"
        log = _log(path)
        for i in range(4):
            log.append(_offer(i))
        log.close()
        reopened = _log(path)
        assert reopened.recovered_records == 4
        assert reopened.truncated_bytes == 0
        assert reopened.next_offset == 4
        assert reopened.append(_offer(4)) == 4
        assert [o for o, _, _ in reopened.since(3)] == [3, 4]
        reopened.close()

    def test_reads_keep_working_after_close_appends_raise(self, tmp_path):
        log = _log(tmp_path / "sent.log")
        log.append(_offer(0))
        log.close()
        assert len(log.snapshot()) == 1
        assert log.since(0)[0][0] == 0
        with pytest.raises(PSException):
            log.append(_offer(1))
        log.close()  # idempotent

    @pytest.mark.parametrize("torn_bytes", [1, 2, 3, 5])
    def test_crash_recovery_truncates_torn_tail(self, tmp_path, torn_bytes):
        """Write N records, chop the tail mid-record, reopen: the complete
        prefix survives and ``since(offset)`` resumes from it."""
        path = tmp_path / "sent.log"
        log = _log(path)
        for i in range(5):
            log.append(_offer(i), meta=f"id-{i}")
        log.close()
        intact = os.path.getsize(path)
        with open(path, "r+b") as segment:
            segment.truncate(intact - torn_bytes)
        recovered = _log(path)
        assert recovered.recovered_records == 4
        assert recovered.truncated_bytes > 0
        assert recovered.next_offset == 4
        resumed = recovered.since(2)
        assert [offset for offset, _, _ in resumed] == [2, 3]
        assert [event.shop for _, event, _ in resumed] == ["shop-2", "shop-3"]
        # New appends continue the offset sequence past the dropped record.
        assert recovered.append(_offer(99)) == 4
        recovered.close()
        reread = _log(path)
        assert reread.recovered_records == 5
        assert [event.shop for _, event, _ in reread.since(4)] == ["shop-99"]
        reread.close()

    def test_recovery_drops_zeroed_header_tail(self, tmp_path):
        path = tmp_path / "sent.log"
        log = _log(path)
        log.append(_offer(0))
        log.close()
        with open(path, "ab") as segment:
            segment.write(b"\x00\x00\x00\x00garbage")
        recovered = _log(path)
        assert recovered.recovered_records == 1
        assert recovered.next_offset == 1
        recovered.close()

    def test_recovery_drops_undecodable_last_record(self, tmp_path):
        path = tmp_path / "sent.log"
        log = _log(path)
        log.append(_offer(0))
        log.close()
        junk = b"not a codec payload"
        with open(path, "ab") as segment:
            segment.write(len(junk).to_bytes(4, "big"))
            segment.write(junk)
        recovered = _log(path)
        assert recovered.recovered_records == 1
        assert recovered.truncated_bytes == 4 + len(junk)
        assert len(recovered.snapshot()) == 1
        recovered.close()

    def test_empty_and_missing_files_recover_to_zero(self, tmp_path):
        log = _log(tmp_path / "fresh.log")
        assert log.recovered_records == 0
        assert log.next_offset == 0
        assert log.snapshot() == []
        log.close()

    def test_group_commit_sync_batches(self, tmp_path):
        log = _log(tmp_path / "sent.log", fsync_every=4)
        for i in range(3):
            log.append(_offer(i))
        # Unsynced appends are still visible to same-process reads (the
        # reader flushes the writer first).
        assert len(log.snapshot()) == 3
        log.sync()
        log.append(_offer(3))
        log.close()
        assert len(log.snapshot()) == 4

    def test_clear_is_a_destructive_offset_reset(self, tmp_path):
        path = tmp_path / "sent.log"
        log = _log(path)
        for i in range(3):
            log.append(_offer(i))
        log.clear()
        assert len(log) == 0
        assert log.next_offset == 0
        assert log.append(_offer(9)) == 0
        log.close()
        assert _log(path).recovered_records == 1


class TestHistoryFactories:
    def test_unknown_kind_rejected(self):
        with pytest.raises(PSException, match="unknown history kind"):
            make_history("parquet")
        with pytest.raises(PSException, match="unknown history kind"):
            make_history_pair("parquet", 10, None)

    def test_log_without_path_rejected(self):
        with pytest.raises(PSException, match="history_path"):
            make_history("log")
        with pytest.raises(PSException, match="history_path"):
            make_history_pair("log", 10, None, codec=_codec())

    def test_pair_creates_directory_with_both_files(self, tmp_path):
        root = tmp_path / "nested" / "stores"
        received, sent = make_history_pair("log", 10, str(root), codec=_codec())
        received.append(_offer(0))
        sent.append(_offer(1))
        received.close()
        sent.close()
        assert (root / "received.log").exists()
        assert (root / "sent.log").exists()


class TestEngineHistoryBounds:
    """Satellite 1: the in-memory history of every engine stays bounded."""

    def test_local_engine_history_never_exceeds_bound_under_10k_publishes(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(SkiRental, bus=bus, history_size=64)
        subscriber = LocalTPSEngine(SkiRental, bus=bus, history_size=64)
        subscriber.subscribe(lambda event: None)
        offer = _offer(0)
        for index in range(10_000):
            publisher.publish(offer)
            if index % 997 == 0:
                assert len(subscriber.objects_received()) <= 64
                assert len(publisher.objects_sent()) <= 64
        assert len(subscriber.objects_received()) == 64
        assert len(publisher.objects_sent()) == 64
        # Offsets kept counting even though retention is bounded.
        assert publisher.sent_offset == 10_000
        assert subscriber.history_offset == 10_000
        publisher.close()
        subscriber.close()

    def test_default_bound_is_the_documented_constant(self):
        engine = LocalTPSEngine(SkiRental, bus=LocalBus())
        assert engine._received.capacity == DEFAULT_HISTORY_SIZE
        assert engine._sent.capacity == DEFAULT_HISTORY_SIZE
        engine.close()

    @pytest.mark.slow
    def test_jxta_engine_history_bounded(self, lan):
        builder = lan
        config = TPSConfig(search_timeout=2.0, history_size=16)
        publisher = TPSEngine(
            SkiRental, peer=builder.peer_named("peer-0"), config=config
        ).new_interface("JXTA")
        subscriber = TPSEngine(
            SkiRental,
            peer=builder.peer_named("peer-1"),
            config=TPSConfig(
                search_timeout=4.0, create_if_missing=False, history_size=16
            ),
        ).new_interface("JXTA")
        subscriber.subscribe(lambda event: None)
        builder.settle(rounds=12)
        for index in range(80):
            publisher.publish(_offer(index))
            builder.settle(rounds=2)
        assert len(publisher.objects_sent()) == 16
        assert len(subscriber.objects_received()) <= 16
        assert publisher.sent_offset == 80

    @pytest.mark.asyncio
    def test_async_engine_history_bounded(self):
        async def main():
            engine = TPSEngine(SkiRental)
            publisher = engine.new_interface("ASYNC", history_size=32)
            subscriber = engine.new_interface("ASYNC", history_size=32)
            subscriber.subscribe(lambda event: None)
            for index in range(500):
                await publisher.publish(_offer(index))
            assert len(publisher.objects_sent()) == 32
            assert len(subscriber.objects_received()) == 32
            assert publisher.sent_offset == 500
            await publisher.close()
            await subscriber.close()
            return True

        loop = asyncio.new_event_loop()
        try:
            assert loop.run_until_complete(main())
        finally:
            loop.close()

    def test_history_binding_params_validated(self):
        engine = TPSEngine(SkiRental, local_bus=LocalBus())
        with pytest.raises(PSException, match="'history'"):
            engine.new_interface("LOCAL", history="parquet")
        with pytest.raises(PSException, match="'history_size'"):
            engine.new_interface("LOCAL", history_size=True)
        with pytest.raises(PSException, match="history_path"):
            engine.new_interface("LOCAL", history="log")
