"""A compact binary codec for application-defined event objects.

The paper's event types are plain serialisable Java classes
(``public class SkiRental implements Serializable``).  When a publisher calls
``publish(new SkiRental(...))`` the instance is serialised, carried inside a
JXTA message across the wire service, and reconstructed on each subscriber so
the typed callback (``handle(SkiRental skiR)``) receives a real object of the
right type.

:class:`ObjectCodec` plays the role of Java serialisation here.  It is a
deterministic, self-describing tagged binary format supporting the usual
scalar types, lists, tuples, dicts and *registered classes*.  Classes are
encoded by their registered name plus their instance ``__dict__`` (or the
value returned by an optional ``__getstate__``), and decoded by instantiating
the class without calling ``__init__`` and restoring the state -- the same
contract Java serialisation provides.

Requiring registration is what gives the TPS layer its type-safety story:
only event types the engine knows about can cross the wire, and the decoded
object is an instance of the exact registered class (so ``isinstance`` checks
and subtype matching are meaningful on the subscriber side).
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, Optional, Tuple, Type


class SerializationError(ValueError):
    """Raised when a value cannot be encoded or bytes cannot be decoded."""


class UnregisteredTypeError(SerializationError):
    """Raised when encoding or decoding an object whose class is not registered."""


# One-byte type tags of the wire format.
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"I"
_T_FLOAT = b"D"
_T_STR = b"S"
_T_BYTES = b"B"
_T_LIST = b"L"
_T_TUPLE = b"U"
_T_DICT = b"M"
_T_OBJECT = b"O"


class ObjectCodec:
    """Encodes and decodes Python objects to a deterministic binary format.

    Parameters
    ----------
    strict:
        When True (the default), encountering an unregistered class raises
        :class:`UnregisteredTypeError`.  When False, unregistered objects are
        encoded as plain dictionaries of their attributes (useful for the raw
        JXTA-WIRE baseline, which has no type knowledge and therefore no type
        safety -- exactly the paper's point).
    """

    def __init__(self, *, strict: bool = True) -> None:
        self.strict = strict
        self._classes_by_name: Dict[str, Type[Any]] = {}
        self._names_by_class: Dict[Type[Any], str] = {}

    # ------------------------------------------------------------ registry

    def register(self, cls: Type[Any], name: Optional[str] = None) -> Type[Any]:
        """Register a class for encoding/decoding under ``name``.

        The default name is ``module.QualifiedName``.  Registering the same
        class twice under the same name is a no-op; re-registering a name for
        a different class raises, because silently swapping types would break
        the decoder on in-flight messages.
        """
        label = name or f"{cls.__module__}.{cls.__qualname__}"
        existing = self._classes_by_name.get(label)
        if existing is not None and existing is not cls:
            raise SerializationError(
                f"type name {label!r} is already registered for {existing!r}"
            )
        self._classes_by_name[label] = cls
        self._names_by_class[cls] = label
        return cls

    def is_registered(self, cls: Type[Any]) -> bool:
        """Whether the given class has been registered."""
        return cls in self._names_by_class

    def registered_name(self, cls: Type[Any]) -> Optional[str]:
        """The wire name of a registered class, or None."""
        return self._names_by_class.get(cls)

    def class_for(self, name: str) -> Optional[Type[Any]]:
        """The class registered under ``name``, or None."""
        return self._classes_by_name.get(name)

    # ------------------------------------------------------------- encoding

    def encode(self, value: Any) -> bytes:
        """Encode ``value`` to bytes."""
        out = bytearray()
        self._encode_value(value, out)
        return bytes(out)

    def _encode_value(self, value: Any, out: bytearray) -> None:
        if value is None:
            out += _T_NONE
        elif value is True:
            out += _T_TRUE
        elif value is False:
            out += _T_FALSE
        elif isinstance(value, int):
            payload = str(value).encode("ascii")
            out += _T_INT + struct.pack(">I", len(payload)) + payload
        elif isinstance(value, float):
            out += _T_FLOAT + struct.pack(">d", value)
        elif isinstance(value, str):
            payload = value.encode("utf-8")
            out += _T_STR + struct.pack(">I", len(payload)) + payload
        elif isinstance(value, (bytes, bytearray)):
            out += _T_BYTES + struct.pack(">I", len(value)) + bytes(value)
        elif isinstance(value, list):
            out += _T_LIST + struct.pack(">I", len(value))
            for item in value:
                self._encode_value(item, out)
        elif isinstance(value, tuple):
            out += _T_TUPLE + struct.pack(">I", len(value))
            for item in value:
                self._encode_value(item, out)
        elif isinstance(value, dict):
            out += _T_DICT + struct.pack(">I", len(value))
            for key in sorted(value, key=repr):
                self._encode_value(key, out)
                self._encode_value(value[key], out)
        else:
            self._encode_object(value, out)

    def _object_state(self, value: Any) -> Dict[str, Any]:
        getstate = getattr(value, "__getstate__", None)
        if callable(getstate):
            state = getstate()
            if isinstance(state, dict):
                return state
        if hasattr(value, "__dict__"):
            return dict(vars(value))
        raise SerializationError(
            f"cannot extract a serialisable state from {type(value).__name__}"
        )

    def _encode_object(self, value: Any, out: bytearray) -> None:
        cls = type(value)
        name = self._names_by_class.get(cls)
        if name is None:
            if self.strict:
                raise UnregisteredTypeError(
                    f"type {cls.__module__}.{cls.__qualname__} is not registered with this codec"
                )
            # Lenient mode: degrade to a plain dict (losing the type, exactly
            # like hand-rolled XML payloads over raw JXTA would).
            self._encode_value(self._object_state(value), out)
            return
        state = self._object_state(value)
        name_bytes = name.encode("utf-8")
        out += _T_OBJECT + struct.pack(">I", len(name_bytes)) + name_bytes
        self._encode_value(state, out)

    # ------------------------------------------------------------- decoding

    def decode(self, data: bytes) -> Any:
        """Decode bytes produced by :meth:`encode` back into a value."""
        value, offset = self._decode_value(data, 0)
        if offset != len(data):
            raise SerializationError(
                f"trailing bytes after decoded value ({len(data) - offset} left)"
            )
        return value

    def _decode_value(self, data: bytes, offset: int) -> Tuple[Any, int]:
        if offset >= len(data):
            raise SerializationError("truncated input")
        tag = data[offset : offset + 1]
        offset += 1
        if tag == _T_NONE:
            return None, offset
        if tag == _T_TRUE:
            return True, offset
        if tag == _T_FALSE:
            return False, offset
        if tag == _T_INT:
            length, offset = self._read_length(data, offset)
            return int(data[offset : offset + length].decode("ascii")), offset + length
        if tag == _T_FLOAT:
            if offset + 8 > len(data):
                raise SerializationError("truncated float")
            (value,) = struct.unpack(">d", data[offset : offset + 8])
            return value, offset + 8
        if tag == _T_STR:
            length, offset = self._read_length(data, offset)
            return data[offset : offset + length].decode("utf-8"), offset + length
        if tag == _T_BYTES:
            length, offset = self._read_length(data, offset)
            return data[offset : offset + length], offset + length
        if tag == _T_LIST:
            count, offset = self._read_length(data, offset)
            items = []
            for _ in range(count):
                item, offset = self._decode_value(data, offset)
                items.append(item)
            return items, offset
        if tag == _T_TUPLE:
            count, offset = self._read_length(data, offset)
            items = []
            for _ in range(count):
                item, offset = self._decode_value(data, offset)
                items.append(item)
            return tuple(items), offset
        if tag == _T_DICT:
            count, offset = self._read_length(data, offset)
            result: Dict[Any, Any] = {}
            for _ in range(count):
                key, offset = self._decode_value(data, offset)
                value, offset = self._decode_value(data, offset)
                result[key] = value
            return result, offset
        if tag == _T_OBJECT:
            length, offset = self._read_length(data, offset)
            name = data[offset : offset + length].decode("utf-8")
            offset += length
            state, offset = self._decode_value(data, offset)
            cls = self._classes_by_name.get(name)
            if cls is None:
                raise UnregisteredTypeError(
                    f"cannot decode object of unregistered type {name!r}"
                )
            instance = object.__new__(cls)
            setstate = getattr(instance, "__setstate__", None)
            if callable(setstate):
                setstate(state)
            else:
                instance.__dict__.update(state)
            return instance, offset
        raise SerializationError(f"unknown type tag {tag!r} at offset {offset - 1}")

    @staticmethod
    def _read_length(data: bytes, offset: int) -> Tuple[int, int]:
        if offset + 4 > len(data):
            raise SerializationError("truncated length prefix")
        (length,) = struct.unpack(">I", data[offset : offset + 4])
        if offset + 4 + length > len(data):
            raise SerializationError("declared length exceeds available bytes")
        return length, offset + 4

    # ---------------------------------------------------------------- sizing

    def encoded_size(self, value: Any) -> int:
        """Return the number of bytes :meth:`encode` would produce."""
        return len(self.encode(value))


__all__ = ["ObjectCodec", "SerializationError", "UnregisteredTypeError"]
