"""Deterministic link-level fault injection.

The paper's substrate (JXTA 1.0, August 2001) was *unreliable*: messages were
lost, duplicated and arbitrarily delayed, to the point that the authors could
not even measure propagation latency (Section 5).  The simulated network is,
by default, far better behaved -- every routed packet arrives exactly once,
in order -- so the robustness claims of the layers above were under-exercised.

A :class:`FaultPlan` closes that gap.  It is a seeded, deterministic oracle
the :class:`~repro.net.network.Network` consults once per scheduled delivery:

* **probabilistic faults** per link (:class:`LinkFaults`): independent
  drop / duplicate / reorder / delay probabilities, resolved per directed
  pair with wildcard fallbacks (``(src, dst)`` > ``(src, "*")`` >
  ``("*", dst)`` > plan default);
* **scripted one-shot faults**: "drop the next N packets from A to B"
  (:meth:`FaultPlan.drop_next`), consumed before any random draw so tests
  can stage exact loss sequences;
* **determinism**: the plan owns its *own* ``random.Random(seed)``, separate
  from the network's :class:`~repro.net.cost.NoiseSource`, so installing a
  plan never perturbs the jitter/loss sequences of existing seeded
  experiments, and two plans built with the same seed and consulted with the
  same call sequence make identical decisions.

Reordering and delaying are expressed as *extra latency* on the faulted
packet: a reordered packet is held back long enough that packets sent after
it overtake it, which is exactly how reordering manifests on a real network.
Duplication schedules a second, independently delayed delivery of the same
packet.

The network surfaces what the plan did through its metrics registry
(``faults_dropped``, ``faults_duplicated``, ``faults_delayed``,
``faults_scripted``), alongside the routing counters
(``packets_no_route``, ``packets_blocked``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING, Tuple

from repro.net.entropy import seeded_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

#: Wildcard address matching any peer in a fault rule.
ANY = "*"


@dataclass(frozen=True)
class LinkFaults:
    """Probabilistic fault parameters for one directed link.

    Attributes
    ----------
    drop:
        Probability of silently dropping a packet.
    duplicate:
        Probability of delivering a packet twice.
    reorder:
        Probability of holding a packet back long enough for later packets
        to overtake it.
    delay:
        Probability of adding a small extra delay (without necessarily
        reordering).
    reorder_window:
        Extra seconds (upper bound) added to a reordered packet; must
        comfortably exceed the link latency for overtaking to happen.
    delay_window:
        Extra seconds (upper bound) added to a delayed packet or to a
        duplicate's second copy.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    reorder_window: float = 0.25
    delay_window: float = 0.05

    @property
    def active(self) -> bool:
        """Whether any fault probability is non-zero."""
        return self.drop > 0 or self.duplicate > 0 or self.reorder > 0 or self.delay > 0


@dataclass(frozen=True)
class FaultDecision:
    """What the plan decided for one packet.

    ``deliveries`` holds one extra-delay value per copy to deliver (empty
    when the packet is dropped; two entries when it is duplicated).
    ``scripted`` marks decisions taken by a scripted one-shot fault rather
    than a random draw.
    """

    drop: bool
    scripted: bool
    deliveries: Tuple[float, ...]


#: The decision taken for an unfaulted packet: one copy, no extra delay.
CLEAN_DECISION = FaultDecision(drop=False, scripted=False, deliveries=(0.0,))


class FaultPlan:
    """A seeded, deterministic schedule of link faults.

    The plan is consulted by :meth:`Network._schedule_delivery` for every
    packet that survived the legacy loss-rate draw.  All randomness comes
    from the plan's private RNG, so a given seed plus a given sequence of
    :meth:`decide` calls always yields the same sequence of decisions --
    property-tested in ``tests/test_faults.py``.
    """

    def __init__(
        self,
        seed: int = 2002,
        default: Optional[LinkFaults] = None,
        *,
        rng: Optional[random.Random] = None,
    ) -> None:
        """``rng`` injects a pre-built random stream (tests sharing one
        across components); by default the plan owns a private
        ``seeded_rng(seed)`` stream."""
        self.seed = seed
        self._rng = rng if rng is not None else seeded_rng(seed)
        #: Directed (source, destination) -> fault parameters; either side
        #: may be the ``"*"`` wildcard.
        self._rules: Dict[Tuple[str, str], LinkFaults] = {}
        #: Plan-wide fallback applied when no rule matches.
        self.default = default
        #: Directed (source, destination) -> packets still to drop (scripted).
        self._scripted_drops: Dict[Tuple[str, str], int] = {}
        #: Decisions taken, for observability and determinism tests.
        self.decisions = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.scripted = 0

    @classmethod
    def chaos(
        cls,
        seed: int = 2002,
        *,
        drop: float = 0.02,
        duplicate: float = 0.05,
        reorder: float = 0.08,
        delay: float = 0.05,
    ) -> "FaultPlan":
        """The standard chaos plan used by the conformance matrix.

        Every link drops, duplicates, reorders and delays with small
        probabilities -- enough to exercise the ack/retry/dedup machinery on
        every run while still letting discovery traffic converge.
        """
        return cls(
            seed=seed,
            default=LinkFaults(
                drop=drop, duplicate=duplicate, reorder=reorder, delay=delay
            ),
        )

    # ------------------------------------------------------------------ rules

    def set_link(
        self,
        source: str,
        destination: str,
        faults: LinkFaults,
        *,
        symmetric: bool = False,
    ) -> "FaultPlan":
        """Install fault parameters for the directed pair (or ``"*"`` wildcard).

        With ``symmetric=True`` the reverse direction gets the same faults.
        Returns the plan for chaining.
        """
        self._rules[(source, destination)] = faults
        if symmetric:
            self._rules[(destination, source)] = faults
        return self

    def clear_link(self, source: str, destination: str) -> None:
        """Remove a previously installed rule (no-op when absent)."""
        self._rules.pop((source, destination), None)

    def faults_for(self, source: str, destination: str) -> Optional[LinkFaults]:
        """The effective fault parameters for a directed pair, or None."""
        for key in (
            (source, destination),
            (source, ANY),
            (ANY, destination),
            (ANY, ANY),
        ):
            rule = self._rules.get(key)
            if rule is not None:
                return rule
        return self.default

    def drop_next(self, source: str, destination: str, count: int = 1) -> "FaultPlan":
        """Script: drop the next ``count`` packets from ``source`` to ``destination``.

        Scripted drops are consumed before any probabilistic draw, so they
        fire deterministically regardless of the plan's seed.  Returns the
        plan for chaining.
        """
        if count < 0:
            raise ValueError(f"scripted drop count must be >= 0, got {count}")
        key = (source, destination)
        self._scripted_drops[key] = self._scripted_drops.get(key, 0) + count
        return self

    def pending_scripted_drops(self, source: str, destination: str) -> int:
        """How many scripted drops remain armed for the directed pair."""
        return self._scripted_drops.get((source, destination), 0)

    # --------------------------------------------------------------- decision

    def decide(self, source: str, destination: str) -> FaultDecision:
        """Decide the fate of one packet travelling ``source`` -> ``destination``."""
        self.decisions += 1
        remaining = self._scripted_drops.get((source, destination), 0)
        if remaining > 0:
            if remaining == 1:
                del self._scripted_drops[(source, destination)]
            else:
                self._scripted_drops[(source, destination)] = remaining - 1
            self.dropped += 1
            self.scripted += 1
            return FaultDecision(drop=True, scripted=True, deliveries=())
        faults = self.faults_for(source, destination)
        if faults is None or not faults.active:
            return CLEAN_DECISION
        rng = self._rng
        if faults.drop > 0 and rng.random() < faults.drop:
            self.dropped += 1
            return FaultDecision(drop=True, scripted=False, deliveries=())
        extra = 0.0
        if faults.reorder > 0 and rng.random() < faults.reorder:
            # Hold the packet back past at least half the window so packets
            # sent shortly after it overtake it.
            extra += rng.uniform(faults.reorder_window / 2, faults.reorder_window)
        if faults.delay > 0 and rng.random() < faults.delay:
            extra += rng.uniform(0.0, faults.delay_window)
        deliveries: Tuple[float, ...]
        if faults.duplicate > 0 and rng.random() < faults.duplicate:
            # The duplicate copy takes its own (independent) extra delay, so
            # the two copies may arrive in either order.
            deliveries = (extra, extra + rng.uniform(0.0, faults.delay_window))
            self.duplicated += 1
        else:
            deliveries = (extra,)
        if extra > 0.0:
            self.delayed += 1
        return FaultDecision(drop=False, scripted=False, deliveries=deliveries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(seed={self.seed}, rules={len(self._rules)}, "
            f"decisions={self.decisions}, dropped={self.dropped})"
        )


__all__ = ["ANY", "CLEAN_DECISION", "FaultDecision", "FaultPlan", "LinkFaults"]
