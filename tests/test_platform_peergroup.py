"""Tests for peer bootstrapping, peer groups and the network builder."""

from __future__ import annotations

import pytest

from repro.jxta.advertisement import PeerGroupAdvertisement
from repro.jxta.errors import JxtaError, ServiceNotFoundError
from repro.jxta.ids import WORLD_GROUP_ID
from repro.jxta.peergroup import PeerGroup
from repro.jxta.platform import (
    JxtaNetworkBuilder,
    PeerGroupFactory,
    create_peer,
    lan_of,
    world_group_advertisement,
)
from repro.jxta.wire import WireService
from repro.net.network import Network
from repro.net.simclock import Simulator


class TestCreatePeer:
    def test_peer_boots_with_world_group_and_services(self):
        network = Network(Simulator())
        peer = create_peer(network, "solo")
        world = peer.world_group
        assert world.group_id == WORLD_GROUP_ID
        assert world.name == "NetPeerGroup"
        for name in (
            PeerGroup.RESOLVER,
            PeerGroup.DISCOVERY,
            PeerGroup.MEMBERSHIP,
            PeerGroup.PIPE,
            PeerGroup.RENDEZVOUS,
            PeerGroup.WIRE,
            PeerGroup.PEERINFO,
            PeerGroup.MONITORING,
            PeerGroup.CMS,
        ):
            assert world.lookup_service(name) is not None

    def test_unknown_service_raises(self):
        network = Network(Simulator())
        peer = create_peer(network, "solo")
        with pytest.raises(ServiceNotFoundError):
            peer.world_group.lookup_service("jxta.service.nope")

    def test_duplicate_address_rejected(self):
        network = Network(Simulator())
        create_peer(network, "dup")
        with pytest.raises(Exception):
            create_peer(network, "dup")

    def test_peer_advertisement_reflects_roles_and_endpoints(self):
        network = Network(Simulator())
        peer = create_peer(network, "rdv", rendezvous=True, router=True)
        advertisement = peer.advertisement()
        assert advertisement.is_rendezvous and advertisement.is_router
        assert any(endpoint.startswith("tcp://") for endpoint in advertisement.endpoints)
        assert advertisement.peer_id == peer.peer_id

    def test_uptime_advances_with_virtual_time(self):
        network = Network(Simulator())
        peer = create_peer(network, "p")
        network.simulator.run_until(42.0)
        assert peer.uptime() == pytest.approx(42.0)

    def test_world_group_access_before_boot_fails(self):
        from repro.jxta.peer import Peer, PeerConfig
        from repro.net.node import Node

        network = Network(Simulator())
        node = network.create_node("raw")
        peer = Peer(node, network.simulator, PeerConfig(name="raw"))
        with pytest.raises(RuntimeError):
            peer.world_group


class TestPeerGroups:
    def test_new_group_is_scoped_and_registered(self, two_peers):
        alpha, _beta, _builder = two_peers
        advertisement = PeerGroupAdvertisement(name="workgroup")
        child = alpha.world_group.new_group(advertisement)
        assert child.parent is alpha.world_group
        assert child.group_id == advertisement.group_id
        assert child in alpha.joined_groups
        assert alpha.joined_groups[0] is alpha.world_group

    def test_peer_group_factory_two_step_init(self, two_peers):
        alpha, _beta, _builder = two_peers
        uninitialised = PeerGroupFactory.new_peer_group()
        with pytest.raises(JxtaError):
            uninitialised.lookup_service(WireService.WireName)
        advertisement = PeerGroupAdvertisement(name="wire-group")
        group = uninitialised.init(alpha.world_group, advertisement)
        assert isinstance(group.lookup_service(WireService.WireName), WireService)
        assert uninitialised.lookup_service(WireService.WireName) is group.wire

    def test_service_names_listed(self, two_peers):
        alpha, _beta, _builder = two_peers
        names = alpha.world_group.service_names()
        assert PeerGroup.WIRE in names and PeerGroup.DISCOVERY in names

    def test_world_group_advertisement_helper(self):
        advertisement = world_group_advertisement()
        assert advertisement.group_id == WORLD_GROUP_ID
        assert advertisement.name == "NetPeerGroup"


class TestBuilder:
    def test_lan_of_builds_named_peers(self):
        builder = lan_of(3, seed=5)
        builder.settle(rounds=4)
        assert builder.peer_named("rdv-0").is_rendezvous
        assert len(builder.peers) == 4
        with pytest.raises(JxtaError):
            builder.peer_named("missing")

    def test_lan_without_rendezvous(self):
        builder = lan_of(2, seed=5, with_rendezvous=False)
        assert all(not peer.is_rendezvous for peer in builder.peers)

    def test_same_seed_same_peer_ids(self):
        first = JxtaNetworkBuilder(seed=77)
        first.add_peer("a", connect_rendezvous=False)
        second = JxtaNetworkBuilder(seed=77)
        second.add_peer("a", connect_rendezvous=False)
        # Noise sources are derived deterministically from the seed.
        assert first.network.noise.seed == second.network.noise.seed

    def test_testbed_helper(self):
        from repro import tps_network

        net = tps_network(peers=2, seed=3)
        assert len(net) == 2
        assert net.rendezvous is not None
        assert net.peer(0).name == "peer-0"
        assert net.peer_named("rdv-0").is_rendezvous
        before = net.now
        net.run_for(5.0)
        assert net.now == pytest.approx(before + 5.0)

    def test_testbed_requires_at_least_one_peer(self):
        from repro import tps_network

        with pytest.raises(ValueError):
            tps_network(peers=0)
