"""Property and regression tests for the scanning XML parser overhaul.

The scanning parser (``parse_xml``, the default) is only safe because it
accepts exactly the documents the legacy character-at-a-time parser
(``parse_xml(..., fast=False)``) accepts, and produces identical trees.
These tests pin that equivalence on generated documents with hostile text,
attribute values and entity forms -- and cover the two confirmed
reproduction bugs this PR fixes:

* malformed numeric character references used to escape as raw
  ``ValueError`` from ``int()``/``chr()`` instead of :class:`XmlParseError`;
* significant boundary whitespace in element text was lost on round-trip
  (written raw, stripped on parse) while entity-encoded spaces survived.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.serialization.xml_codec import (
    XmlElement,
    XmlParseError,
    escape_element_text,
    escape_text,
    parse_xml,
    to_xml,
    unescape_text,
)

# Hostile content: raw specials, entity look-alikes, boundary/interior
# whitespace, embedded markup -- everything the writer must make survive.
_hostile_text = st.one_of(
    st.text(max_size=40),
    st.sampled_from(
        [
            " leading and trailing ",
            "\t tabbed \n",
            "   ",
            "&amp;",
            "&#65;",
            "&bogus;",
            "a & b < c > d",
            '<fake attr="1"/>',
            "</close>",
            "x&#32;y",
            " nbsp ",
        ]
    ),
)
_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9._:-]{0,10}", fullmatch=True)


@st.composite
def element_trees(draw, depth=2):
    element = XmlElement(draw(_names))
    element.text = draw(_hostile_text)
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        element.attributes[draw(_names)] = draw(_hostile_text)
    if depth > 0:
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            element.children.append(draw(element_trees(depth=depth - 1)))
    return element


class TestParserEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(element=element_trees())
    def test_fast_legacy_and_original_agree_compact(self, element):
        """fast-parse == legacy-parse == original tree, on compact documents."""
        document = to_xml(element)
        fast = parse_xml(document)
        legacy = parse_xml(document, fast=False)
        assert fast == legacy == element

    @settings(max_examples=80, deadline=None)
    @given(element=element_trees(), indent=st.sampled_from([1, 2, 4]))
    def test_fast_legacy_and_original_agree_pretty(self, element, indent):
        """Pretty-printing whitespace is the writer's, never the document's:
        both parsers strip exactly it and recover the original tree."""
        document = element.to_string(indent=indent)
        fast = parse_xml(document)
        legacy = parse_xml(document, fast=False)
        assert fast == legacy == element

    @settings(max_examples=100, deadline=None)
    @given(document=st.text(max_size=60))
    def test_parsers_reject_the_same_garbage(self, document):
        """On arbitrary input the two parsers agree: same tree or both raise."""
        try:
            fast = parse_xml(document)
        except XmlParseError:
            with pytest.raises(XmlParseError):
                parse_xml(document, fast=False)
        else:
            assert parse_xml(document, fast=False) == fast

    @pytest.mark.parametrize(
        "document",
        [
            '<?xml version="1.0"?><!-- pre --><Root a="1" b=\'2\'><!-- in -->'
            "<Child kind='x'>text</Child> tail <Empty/></Root><!-- post -->",
            "<a>one<b/>two<c/>three</a>",
            "<a x=\"a&lt;b&amp;c\">&#x41;&#66;</a>",
            "<long.name-with:colons _a='1'/>",
            "<a  spaced = '1'  ></a >",
        ],
    )
    def test_handwritten_documents_agree(self, document):
        assert parse_xml(document) == parse_xml(document, fast=False)


class TestNumericReferenceRegressions:
    """Bug 1: malformed character references must raise XmlParseError."""

    @pytest.mark.parametrize(
        "document",
        [
            "<a>&#xZZ;</a>",       # invalid hex digits -> used to be raw ValueError
            "<a>&#1114112;</a>",   # beyond chr() range -> used to be raw ValueError
            "<a>&#x110000;</a>",   # beyond chr() range, hex spelling
            "<a>&#-5;</a>",        # negative code point
            "<a>&#x;</a>",         # empty digits
            "<a>&#99999999999999999999;</a>",  # overflows C long inside chr()
            "<a attr='&#xQQ;'/>",  # same, in an attribute value
            "<a>&#2_0;</a>",       # int() underscore leniency must not leak in
            "<a>&# 65;</a>",       # nor surrounding whitespace
            "<a>&#+65;</a>",       # nor an explicit sign
            "<a>&#x+41;</a>",
            "<a>&#xD800;</a>",     # surrogate: not an XML char; would crash
            "<a>&#57343;</a>",     # the next UTF-8 encode if accepted
        ],
    )
    def test_malformed_references_raise_parse_errors(self, document):
        for fast in (True, False):
            with pytest.raises(XmlParseError):
                parse_xml(document, fast=fast)

    def test_error_carries_entity_offset(self):
        with pytest.raises(XmlParseError) as info:
            unescape_text("ab&#xZZ;")
        assert info.value.position == 2

    def test_valid_references_still_decode(self):
        assert unescape_text("&#65;&#x42;&#X43;") == "ABC"
        # Maximum valid code point stays accepted.
        assert unescape_text("&#1114111;") == chr(0x10FFFF)


class TestWhitespaceRoundTrip:
    """Bug 2: significant boundary whitespace must survive the round-trip."""

    def test_boundary_whitespace_is_entity_encoded_on_write(self):
        element = XmlElement("a", text=" x ")
        assert to_xml(element, declaration=False) == "<a>&#32;x&#32;</a>"

    @pytest.mark.parametrize(
        "text", [" x ", "x ", " x", "\tx\n", "  ", " ", "a b", "a\nb", " "]
    )
    def test_text_round_trips_exactly(self, text):
        element = XmlElement("a", text=text)
        document = to_xml(element, declaration=False)
        for fast in (True, False):
            assert parse_xml(document, fast=fast).text == text

    def test_text_with_children_round_trips(self):
        element = XmlElement("r", text=" padded ")
        element.add("c", "  inner  ")
        for indent in (None, 2):
            document = element.to_string(indent=indent)
            assert parse_xml(document) == element

    def test_interior_whitespace_was_never_at_risk(self):
        assert escape_element_text("a  b") == "a  b"

    def test_wire_documents_without_boundary_whitespace_are_unchanged(self):
        """The Fig 18-20 documents have no boundary whitespace in text: the
        fix must not alter their bytes."""
        element = XmlElement("Adv", attributes={"type": "jxta:PA"})
        element.add("Name", "peer-0")
        assert (
            to_xml(element, declaration=False)
            == "<Adv type=\"jxta:PA\"><Name>peer-0</Name></Adv>"
        )

    @settings(max_examples=150, deadline=None)
    @given(text=st.text(max_size=50))
    def test_escape_element_text_round_trips_any_string(self, text):
        document = f"<a>{escape_element_text(text)}</a>"
        assert parse_xml(document).text == text
        assert parse_xml(document, fast=False).text == text


class TestUnescapeBulkPath:
    """The chained-replace bulk path must match the entity loop exactly."""

    def test_embedded_document_unescapes(self):
        inner = to_xml(XmlElement("Inner", attributes={"q": 'a"b'}))
        assert unescape_text(escape_text(inner)) == inner

    def test_amp_entities_are_not_reinterpreted(self):
        # "&amp;lt;" is an escaped "&lt;", not a "<".
        assert unescape_text("&amp;lt;") == "&lt;"
        assert unescape_text("&amp;amp;") == "&amp;"

    @settings(max_examples=150, deadline=None)
    @given(text=st.text(alphabet='&<>"\'; ax#3', max_size=30))
    def test_escape_then_unescape_is_identity_on_entity_heavy_text(self, text):
        assert unescape_text(escape_text(text)) == text
