#!/usr/bin/env python3
"""Content-keyed intra-hierarchy sharding and the SHARDED+JXTA composite.

The parameterised binding registry in one sitting:

1. *Binding parameters* -- ``new_interface("SHARDED", shards=4,
   content_key="symbol")`` configures the binding at the call site; the
   registry validates the keys against the binding's declared schema and
   interfaces created with the same parameters share one bus.
2. *Intra-hierarchy sharding* -- one hot ``Trade`` hierarchy spreads over
   all 4 shards by the ``symbol`` attribute's CRC-32, so ``publish_many``
   batches run distinct symbols' shards in parallel while each symbol's
   trades stay in publish order.
3. *The composite binding* -- ``new_interface("SHARDED+JXTA", shards=4)``
   pairs the sharded in-process bus (same-peer traffic, synchronous) with a
   JXTA wire leg (remote peers, simulated network), delivering each event
   exactly once on both paths.

Run it with::

    python examples/hot_hierarchy.py
"""

from __future__ import annotations

from collections import Counter

from repro.core import TPSConfig, TPSEngine, registered_bindings
from repro.jxta.platform import JxtaNetworkBuilder


class Trade:
    """The event type: one executed trade on the single hot hierarchy."""

    def __init__(self, symbol: str = "", price: float = 0.0, size: int = 0) -> None:
        self.symbol = symbol
        self.price = price
        self.size = size

    def __str__(self) -> str:
        return f"{self.symbol} {self.size}@{self.price:.2f}"


SYMBOLS = ("SKI", "SNOW", "POLE", "BOOT", "WAX", "LIFT")


def sharded_hot_hierarchy() -> None:
    """Part 1: one hierarchy, four shards, per-symbol ordering."""
    report = TPSEngine(Trade).new_interface(
        "SHARDED", shards=4, content_key="symbol"
    )
    feed = TPSEngine(Trade).new_interface("SHARDED", shards=4, content_key="symbol")
    assert feed.bus is report.bus  # same parameters, same registry-built bus
    bus = feed.bus
    print(f"hot-hierarchy bus: {len(bus.shards)} shards, partition={bus.partition!r}")

    placement = Counter(
        bus.partition_index("__main__.Trade", Trade(symbol)) for symbol in SYMBOLS
    )
    print(f"symbols per shard: {dict(sorted(placement.items()))}")

    inbox: list[Trade] = []
    report.subscribe(inbox.append)
    batch = [
        Trade(SYMBOLS[index % len(SYMBOLS)], 100.0 + index, index + 1)
        for index in range(24)
    ]
    feed.publish_many(batch)  # distinct symbols' shards run in parallel
    by_symbol = Counter(trade.symbol for trade in inbox)
    print(f"delivered {len(inbox)}/24 trades across {len(by_symbol)} symbols")
    ski_sizes = [trade.size for trade in inbox if trade.symbol == "SKI"]
    print(f"SKI trades arrived in publish order: {ski_sizes == sorted(ski_sizes)}")
    bus.shutdown()
    feed.close()
    report.close()


def composite_over_jxta() -> None:
    """Part 2: the SHARDED+JXTA composite, local fast path + remote wire."""
    builder = JxtaNetworkBuilder(seed=7)
    builder.add_rendezvous("rdv-0")
    exchange = builder.add_peer("exchange")
    broker = builder.add_peer("broker")
    builder.settle(rounds=6)

    feed = TPSEngine(
        Trade, peer=exchange, config=TPSConfig(search_timeout=2.0)
    ).new_interface("SHARDED+JXTA", shards=4)
    builder.settle(rounds=8)
    wait = TPSConfig(search_timeout=6.0, create_if_missing=False)
    local_desk = TPSEngine(Trade, peer=exchange, config=wait).new_interface(
        "SHARDED+JXTA", shards=4
    )
    remote_desk = TPSEngine(Trade, peer=broker, config=wait).new_interface(
        "SHARDED+JXTA", shards=4
    )
    local_inbox: list[Trade] = []
    remote_inbox: list[Trade] = []
    local_desk.subscribe(local_inbox.append)
    remote_desk.subscribe(remote_inbox.append)
    builder.settle(rounds=12)

    receipt = feed.publish(Trade("SKI", 99.5, 750))
    print(f"same-peer desk saw it synchronously: {len(local_inbox) == 1}")
    builder.simulator.run_until(max(builder.simulator.now, receipt.completion_time))
    builder.settle(rounds=10)
    print(f"remote desk received over the wire: {len(remote_inbox) == 1}")
    print(
        "exactly once on both paths: "
        f"{len(local_inbox) == 1 and len(remote_inbox) == 1}"
    )
    for interface in (feed, local_desk, remote_desk):
        interface.close()


def main() -> None:
    print(f"registered bindings: {', '.join(registered_bindings())}")
    sharded_hot_hierarchy()
    composite_over_jxta()


if __name__ == "__main__":
    main()
