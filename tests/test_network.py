"""Tests for the simulated network: nodes, links, delivery, partitions, firewalls."""

from __future__ import annotations

import pytest

from repro.net.cost import NoiseSource
from repro.net.firewall import Direction, Firewall, FirewallRule
from repro.net.network import LinkSpec, Network, NetworkError, NoRouteError, UnknownNodeError
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.simclock import Simulator
from repro.net.transport import TransportKind


@pytest.fixture
def network():
    return Network(Simulator(), noise=NoiseSource(1))


def _collect(node):
    received = []
    node.add_handler(received.append)
    return received


class TestTopology:
    def test_create_and_lookup_nodes(self, network):
        node = network.create_node("host-a")
        assert network.node("host-a") is node
        assert network.has_node("host-a")
        assert not network.has_node("missing")

    def test_duplicate_address_rejected(self, network):
        network.create_node("host-a")
        with pytest.raises(NetworkError):
            network.attach(Node("host-a"))

    def test_unknown_node_lookup_raises(self, network):
        with pytest.raises(UnknownNodeError):
            network.node("nope")

    def test_segments(self, network):
        network.create_node("a", segment="lan0")
        network.create_node("b", segment="lan1")
        assert network.segment_of("a") == "lan0"
        assert network.segment_of("b") == "lan1"
        assert network.segment_members("lan0") == ["a"]

    def test_same_segment_is_reachable_by_default(self, network):
        network.create_node("a")
        network.create_node("b")
        assert network.reachable("a", "b")

    def test_different_segments_need_explicit_link(self, network):
        network.create_node("a", segment="lan0")
        network.create_node("b", segment="lan1")
        assert not network.reachable("a", "b")
        network.connect("a", "b")
        assert network.reachable("a", "b")


class TestUnicastDelivery:
    def test_packet_is_delivered_with_latency(self, network):
        sender = network.create_node("a")
        receiver = network.create_node("b")
        received = _collect(receiver)
        sender.send(Packet(source="a", destination="b", payload=b"hello"))
        assert received == []  # nothing delivered before time advances
        network.simulator.run()
        assert len(received) == 1
        assert received[0].payload == b"hello"
        assert network.simulator.now > 0.0

    def test_delivery_to_unknown_destination_raises(self, network):
        sender = network.create_node("a")
        with pytest.raises(UnknownNodeError):
            sender.send(Packet(source="a", destination="ghost", payload=b""))

    def test_send_without_network_raises(self):
        node = Node("lonely")
        with pytest.raises(NetworkError):
            node.send(Packet(source="lonely", destination="x", payload=b""))

    def test_partition_blocks_and_heal_restores(self, network):
        sender = network.create_node("a")
        receiver = network.create_node("b")
        received = _collect(receiver)
        network.partition("a", "b")
        assert not network.reachable("a", "b")
        with pytest.raises(NoRouteError):
            sender.send(Packet(source="a", destination="b", payload=b"x"))
        network.heal("a", "b")
        sender.send(Packet(source="a", destination="b", payload=b"x"))
        network.simulator.run()
        assert len(received) == 1

    def test_offline_node_does_not_receive(self, network):
        sender = network.create_node("a")
        receiver = network.create_node("b")
        received = _collect(receiver)
        receiver.go_offline()
        sender.send(Packet(source="a", destination="b", payload=b"x"))
        network.simulator.run()
        assert received == []
        receiver.go_online()
        sender.send(Packet(source="a", destination="b", payload=b"y"))
        network.simulator.run()
        assert len(received) == 1

    def test_transport_mismatch_is_unreachable(self, network):
        network.create_node("a", transports=[TransportKind.TCP])
        network.create_node("b", transports=[TransportKind.HTTP])
        assert not network.reachable("a", "b", TransportKind.TCP)
        assert not network.reachable("a", "b", TransportKind.HTTP)

    def test_larger_packets_take_longer(self, network):
        sender = network.create_node("a")
        receiver = network.create_node("b")
        arrival_times = []
        receiver.add_handler(lambda p: arrival_times.append(network.simulator.now))
        slow_spec = LinkSpec(latency=0.001, bandwidth=1000.0, jitter=0.0)
        network.connect("a", "b", slow_spec)
        sender.send(Packet(source="a", destination="b", payload=b"x" * 10))
        network.simulator.run()
        small_time = arrival_times[-1]
        start = network.simulator.now
        sender.send(Packet(source="a", destination="b", payload=b"x" * 1000))
        network.simulator.run()
        big_time = arrival_times[-1] - start
        assert big_time > small_time


class TestMulticastDelivery:
    def test_multicast_reaches_all_segment_members(self, network):
        sender = network.create_node("a")
        receivers = [network.create_node(f"r{i}") for i in range(3)]
        collected = [_collect(node) for node in receivers]
        other = network.create_node("far", segment="lan1")
        far_received = _collect(other)
        sender.send(
            Packet(
                source="a",
                destination=Packet.MULTICAST_ADDRESS,
                payload=b"all",
                transport="multicast",
            )
        )
        network.simulator.run()
        assert all(len(received) == 1 for received in collected)
        assert far_received == []  # different segment: multicast does not cross

    def test_multicast_skips_non_multicast_nodes(self, network):
        sender = network.create_node("a")
        tcp_only = network.create_node("tcp-only", transports=[TransportKind.TCP])
        received = _collect(tcp_only)
        sender.send(
            Packet(
                source="a",
                destination=Packet.MULTICAST_ADDRESS,
                payload=b"all",
                transport="multicast",
            )
        )
        network.simulator.run()
        assert received == []

    def test_multicast_loss(self):
        lossy = Network(
            Simulator(),
            default_link=LinkSpec(latency=0.001, loss_rate=1.0),
            noise=NoiseSource(3),
        )
        sender = lossy.create_node("a")
        receiver = lossy.create_node("b")
        received = _collect(receiver)
        sender.send(
            Packet(
                source="a",
                destination=Packet.MULTICAST_ADDRESS,
                payload=b"x",
                transport="multicast",
            )
        )
        lossy.simulator.run()
        assert received == []
        assert lossy.metrics.counters()["packets_lost"] == 1

    def test_reliable_transport_ignores_loss_rate(self):
        lossy = Network(
            Simulator(),
            default_link=LinkSpec(latency=0.001, loss_rate=1.0),
            noise=NoiseSource(3),
        )
        sender = lossy.create_node("a")
        receiver = lossy.create_node("b")
        received = _collect(receiver)
        sender.send(Packet(source="a", destination="b", payload=b"x", transport="tcp"))
        lossy.simulator.run()
        assert len(received) == 1


class TestFirewallIntegration:
    def test_inbound_tcp_blocked_by_corporate_firewall(self, network):
        network.create_node("a")
        network.create_node("b", firewall=Firewall.corporate_default())
        assert not network.reachable("a", "b", TransportKind.TCP)
        assert network.reachable("a", "b", TransportKind.HTTP)

    def test_outbound_deny_rule(self, network):
        firewall = Firewall(
            rules=[FirewallRule("deny", direction=Direction.OUTBOUND)],
        )
        sender = network.create_node("a", firewall=firewall)
        network.create_node("b")
        assert not network.reachable("a", "b", TransportKind.TCP)

    def test_node_metrics_track_traffic(self, network):
        sender = network.create_node("a")
        receiver = network.create_node("b")
        sender.send(Packet(source="a", destination="b", payload=b"12345"))
        network.simulator.run()
        assert sender.metrics.counters()["packets_sent"] == 1
        assert sender.metrics.counters()["bytes_sent"] == 5
        assert receiver.metrics.counters()["packets_received"] == 1
        assert receiver.metrics.counters()["bytes_received"] == 5


class TestPacket:
    def test_with_relay_decrements_ttl_and_records_path(self):
        packet = Packet(source="a", destination="b", payload=b"x", ttl=3)
        relayed = packet.with_relay("relay-1")
        assert relayed.ttl == 2
        assert relayed.relay_path == ["relay-1"]
        assert packet.ttl == 3  # original untouched
        assert relayed.packet_id == packet.packet_id

    def test_retargeted_keeps_identity(self):
        packet = Packet(source="a", destination="*", payload=b"x")
        copy = packet.retargeted("c")
        assert copy.destination == "c"
        assert copy.packet_id == packet.packet_id
        assert packet.destination == "*"

    def test_size_and_multicast_flag(self):
        packet = Packet(source="a", destination="*", payload=b"abc")
        assert packet.size == 3
        assert packet.is_multicast
        assert not Packet(source="a", destination="b", payload=b"").is_multicast
