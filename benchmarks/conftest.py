"""Shared fixtures for the benchmark suite.

The figure benchmarks drive a discrete-event simulation, so a single run is
already deterministic and representative; they use ``benchmark.pedantic`` with
one round.  The micro benchmarks measure real wall-clock costs of the TPS
layer's Python work and use the normal calibrated benchmark loop.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a (deterministic, simulation-driven) callable exactly once under benchmark."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
