"""v2 subscription ergonomics: handles, the fluent builder, event streams.

The paper's Figure 8 ``subscribe`` returns ``void``: cancelling requires the
application to re-present the very callback/handler objects it registered.
The v2 API keeps that surface working (and byte-for-byte pinned by
``tests/test_api_surface.py``) while layering three consumption styles on
top of any :class:`~repro.core.interface.TPSInterface` binding:

* :class:`SubscriptionHandle` -- returned by ``subscribe()`` and
  ``builder.start()``; ``cancel()`` removes exactly the subscriptions the
  call created (object identity, not callback matching) and the handle is a
  context manager for scoped subscriptions.
* :class:`SubscriptionBuilder` -- the fluent form
  ``tps.subscription(cb).where(pred).on_error(h).start()``.  Every
  ``where`` predicate is ANDed and *pushed down* into the binding's
  dispatch rows (:class:`~repro.core.subscriber.TPSSubscriberManager`
  handler snapshots, and through them the
  :class:`~repro.core.local_engine.LocalBus` delivery loop), so events a
  subscription filters out never reach its callback dispatch -- no wrapper
  callable, no swallowed exception frame.
* :class:`CircuitBreaker` -- subscriber crash containment: a callback that
  raises ``threshold`` consecutive times is quarantined (``closed`` ->
  ``open``), skipped for a ``cooldown`` period, then given one probational
  event (``half_open``) that either resets it or re-opens the quarantine.
  Attached per subscription by
  :meth:`~repro.core.subscriber.TPSSubscriberManager.set_breaker_policy`
  (the JXTA/SHARDED bindings wire it to ``TPSConfig.breaker_threshold`` /
  ``breaker_cooldown``); both dispatch paths -- the manager's and the
  :class:`~repro.core.local_engine.LocalBus` inline loop -- honour it.
* :class:`EventStream` -- pull-style consumption:
  ``tps.stream(maxsize=..., policy=...)`` subscribes an internal enqueue
  callback and hands the application an iterator/queue hybrid with explicit
  backpressure: policy ``"block"`` makes the *publisher* wait for a slow
  consumer (threaded pipelines), ``"drop_oldest"`` bounds memory by
  discarding the stalest events (monitoring dashboards); ``dropped`` counts
  the discards.

Locking model: a handle's ``cancel()`` flips its ``_active`` flag under the
handle's own lock (exactly-once semantics under concurrent cancellation)
and runs the discards outside it; a stream guards its buffer, flags and
conditions with one lock, flips ``_closed`` and wakes all waiters *before*
cancelling its subscription, and refuses a ``policy="block"`` wait that the
waiting thread itself would have to service (the re-entrant
publisher-is-the-only-consumer deadlock) by raising :class:`PSException`
into the subscription's normal error route.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Iterator, List, Optional, Tuple

from repro.core.exceptions import PSException
from repro.net.entropy import monotonic_clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.interface import Subscription, TPSInterface


#: Circuit-breaker states (see :class:`CircuitBreaker`).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Crash containment for one subscription's callback.

    A callback that raises on every event does not just lose its own events:
    in a fan-out dispatch it burns CPU (and error-handler churn) on every
    single publish.  The breaker quarantines such a callback the way a
    service-mesh breaker quarantines a failing endpoint:

    * ``closed`` (normal): events flow; ``threshold`` *consecutive* failures
      trip the breaker;
    * ``open`` (quarantined): events are skipped -- counted in ``skipped`` --
      until ``cooldown`` seconds pass on the supplied clock;
    * ``half_open`` (probation): after the cool-down, events are let through
      again; the first success resets to ``closed``, the first failure
      re-opens for another cool-down.

    The clock is injectable so engines bind it to the simulated network's
    virtual clock while plain LOCAL deployments default to
    ``time.monotonic``.  Trip/reset transitions are observable through the
    optional ``listener`` (called with ``(state, breaker)`` *outside* the
    breaker's lock) and the ``events`` log of ``(state, timestamp)`` pairs.
    """

    __slots__ = (
        "threshold",
        "cooldown",
        "state",
        "failures",
        "trips",
        "resets",
        "skipped",
        "events",
        "_open_until",
        "_clock",
        "_listener",
        "_lock",
    )

    def __init__(
        self,
        threshold: int,
        cooldown: float,
        *,
        clock: Optional[Callable[[], float]] = None,
        listener: Optional[Callable[[str, "CircuitBreaker"], None]] = None,
    ) -> None:
        if threshold < 1:
            raise PSException(f"breaker threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise PSException(f"breaker cooldown must be >= 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = BREAKER_CLOSED
        self.failures = 0
        self.trips = 0
        self.resets = 0
        self.skipped = 0
        #: (state, clock timestamp) transition log, oldest first.
        self.events: List[Tuple[str, float]] = []
        self._open_until = 0.0
        self._clock = clock if clock is not None else monotonic_clock
        self._listener = listener
        self._lock = threading.Lock()

    def _transition(self, state: str) -> Tuple[str, "CircuitBreaker"]:
        """Record a state change; caller holds the lock, returns the event."""
        self.state = state
        self.events.append((state, self._clock()))
        return (state, self)

    def _notify(self, event: Optional[Tuple[str, "CircuitBreaker"]]) -> None:
        if event is not None and self._listener is not None:
            try:
                self._listener(*event)
            except Exception:  # noqa: BLE001  # repro-lint: disable=RL005 - observers must not break dispatch
                pass

    def allow(self) -> bool:
        """Whether the next event may reach the callback (may move to half-open)."""
        event = None
        with self._lock:
            if self.state == BREAKER_CLOSED:
                return True
            if self.state == BREAKER_OPEN:
                if self._clock() < self._open_until:
                    self.skipped += 1
                    return False
                event = self._transition(BREAKER_HALF_OPEN)
        self._notify(event)
        return True

    def record_success(self) -> None:
        """Note a clean callback invocation (resets failures, closes from probation)."""
        event = None
        with self._lock:
            self.failures = 0
            if self.state != BREAKER_CLOSED:
                self.resets += 1
                event = self._transition(BREAKER_CLOSED)
        self._notify(event)

    def record_failure(self) -> None:
        """Note a raising callback invocation (may trip the breaker open)."""
        event = None
        with self._lock:
            self.failures += 1
            should_trip = self.state == BREAKER_HALF_OPEN or (
                self.state == BREAKER_CLOSED and self.failures >= self.threshold
            )
            if should_trip:
                self.trips += 1
                self._open_until = self._clock() + self.cooldown
                event = self._transition(BREAKER_OPEN)
        self._notify(event)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CircuitBreaker({self.state}, failures={self.failures}, "
            f"trips={self.trips}, skipped={self.skipped})"
        )


def combine_predicates(
    predicates: "Tuple[Callable[[Any], bool], ...]",
) -> Optional[Callable[[Any], bool]]:
    """AND-combine event predicates; None when there is nothing to check.

    A single predicate is returned as-is so the pushed-down row pays exactly
    one call per event in the common case.
    """
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]

    def combined(event: Any) -> bool:
        for predicate in predicates:
            if not predicate(event):
                return False
        return True

    return combined


class SubscriptionHandle:
    """The result of a ``subscribe()`` call: cancellable, scoped, inspectable.

    Holds the exact :class:`~repro.core.interface.Subscription` objects the
    call created.  ``cancel()`` removes those objects (and only those) from
    the binding, so two subscriptions sharing one callback no longer have to
    be torn down together.  Using the handle as a context manager cancels on
    exit; cancelling twice is a no-op -- including from two racing threads:
    the ``_active`` flip is atomic (under the handle's lock), so exactly one
    caller runs the discards and every other caller gets 0.
    """

    __slots__ = ("_interface", "_subscriptions", "_active", "_lock")

    def __init__(
        self, interface: "TPSInterface[Any]", subscriptions: List["Subscription"]
    ) -> None:
        self._interface = interface
        self._subscriptions = tuple(subscriptions)
        self._active = True
        self._lock = threading.Lock()

    @property
    def interface(self) -> "TPSInterface[Any]":
        """The interface the subscriptions are registered with."""
        return self._interface

    @property
    def subscriptions(self) -> Tuple["Subscription", ...]:
        """The subscription objects this handle controls."""
        return self._subscriptions

    @property
    def active(self) -> bool:
        """False once :meth:`cancel` has run (regardless of what it removed)."""
        return self._active

    def cancel(self) -> int:
        """Remove this handle's subscriptions; returns how many were removed.

        Subscriptions already gone (e.g. after a blanket ``unsubscribe()`` or
        ``close()``) simply do not count, so cancel is always safe to call.
        """
        # Atomic check-then-flip: without the lock two threads could both
        # pass the guard and each run the discards.  The discards themselves
        # run outside the lock (they take the binding's own locks).
        with self._lock:
            if not self._active:
                return 0
            self._active = False
        return sum(
            self._interface._discard_subscription(subscription)
            for subscription in self._subscriptions
        )

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __enter__(self) -> "SubscriptionHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self._active else "cancelled"
        return f"SubscriptionHandle({len(self._subscriptions)} subscription(s), {state})"


class SubscriptionBuilder:
    """Fluent construction of one filtered subscription.

    ``tps.subscription(cb).where(pred).on_error(handler).start()`` -- or
    ``.stream(...)`` instead of ``.start()`` for pull-style consumption.
    Builders are single-use: ``start``/``stream`` consume the builder.
    """

    def __init__(
        self,
        interface: "TPSInterface[Any]",
        callback: Optional[Any] = None,
    ) -> None:
        self._interface = interface
        self._callback = callback
        self._handler: Optional[Any] = None
        self._predicates: Tuple[Callable[[Any], bool], ...] = ()
        self._started = False

    def callback(self, callback: Any) -> "SubscriptionBuilder":
        """Set (or replace) the callback the subscription dispatches to."""
        self._callback = callback
        return self

    def where(self, predicate: Callable[[Any], bool]) -> "SubscriptionBuilder":
        """Add an event predicate; several ``where`` calls are ANDed.

        The combined predicate is pushed down into the binding's dispatch
        rows: events it rejects never reach the callback (and never pay the
        dispatch try/except), unlike filtering inside the callback itself.
        """
        if not callable(predicate):
            raise PSException(f"where() needs a callable predicate, got {predicate!r}")
        self._predicates = self._predicates + (predicate,)
        return self

    def on_error(self, handler: Any) -> "SubscriptionBuilder":
        """Set the exception handler paired with the callback."""
        self._handler = handler
        return self

    def _consume(self) -> None:
        if self._started:
            raise PSException("this subscription builder was already started")
        self._started = True

    def start(self) -> SubscriptionHandle:
        """Register the subscription; returns its :class:`SubscriptionHandle`."""
        self._consume()
        if self._callback is None:
            raise PSException(
                "subscription builder has no callback: pass one to subscription() "
                "or call .callback(cb) before .start()"
            )
        subscription = self._interface._subscribe_one(
            self._callback, self._handler, predicate=combine_predicates(self._predicates)
        )
        return SubscriptionHandle(self._interface, [subscription])

    def stream(
        self,
        maxsize: int = 0,
        policy: str = "block",
        from_offset: Optional[int] = None,
    ) -> "StreamCore":
        """Consume the (filtered) subscription as an event stream.

        The builder must have no callback -- a stream *is* the consumer.
        The stream flavour is the interface's choice (``_make_stream``):
        sync front-ends return the threaded :class:`EventStream`, the ASYNC
        binding an :class:`~repro.core.async_engine.AsyncEventStream` -- the
        builder itself (predicate push-down, error routing) is shared.
        ``from_offset`` resumes from the interface's received history (see
        :meth:`TPSInterfaceCore.stream
        <repro.core.interface.TPSInterfaceCore.stream>`); the ``where``
        predicates then filter at replay time instead of being pushed down.
        """
        self._consume()
        if self._callback is not None:
            raise PSException(
                "a stream is the subscription's consumer; build it without a callback"
            )
        return self._interface._make_stream(
            maxsize,
            policy,
            predicate=combine_predicates(self._predicates),
            exception_handler=self._handler,
            from_offset=from_offset,
        )


#: Backpressure policies accepted by every stream flavour.
STREAM_POLICIES = ("block", "drop_oldest")


class StreamCore:
    """The binding-agnostic skeleton of pull-style event consumption.

    Owns everything a stream shares across front-ends -- the
    ``maxsize``/``policy`` contract and its validation, the arrival-order
    buffer and :attr:`dropped` counter, the internal subscription (predicate
    pushed down, errors routed to the paired handler, exactly like any
    application subscription) and the close template that cancels it and
    unregisters from the interface.  What differs per front-end is *how
    waiting is expressed*: the threaded :class:`EventStream` blocks on
    condition variables, the asyncio
    :class:`~repro.core.async_engine.AsyncEventStream` suspends on futures.
    Subclasses supply exactly those hooks: ``_init_waiters`` (synchronisation
    state, created before the subscription can deliver), ``_on_event`` (the
    producer side) and ``_shutdown`` (flip the closed flag and wake every
    waiter, exactly once).
    """

    def __init__(
        self,
        interface: "TPSInterface[Any]",
        *,
        maxsize: int = 0,
        policy: str = "block",
        predicate: Optional[Callable[[Any], bool]] = None,
        exception_handler: Optional[Any] = None,
        source: Optional[Any] = None,
        from_offset: Optional[int] = None,
    ) -> None:
        if policy not in STREAM_POLICIES:
            raise PSException(
                f"unknown stream policy {policy!r}; expected one of {STREAM_POLICIES}"
            )
        if maxsize < 0:
            raise PSException(f"stream maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self.policy = policy
        self._buffer: "deque[Any]" = deque()
        self._closed = False
        self._dropped = 0
        # Cursor mode (``from_offset``): the stream pulls entries from the
        # interface's history store instead of buffering pushed events.  The
        # live subscription below degrades to a pure wake signal -- every
        # wake follows the event's history append, so pulling ``since``
        # delivers each offset exactly once and in order no matter how
        # replay and live publishes interleave.  The predicate then cannot
        # be pushed down (a filtered-out event must still wake the pull);
        # it filters at replay time instead.
        self._source = source
        self._cursor = max(0, from_offset or 0)
        self._pull_predicate = predicate if source is not None else None
        self._init_waiters()
        subscription = interface._subscribe_one(
            self._on_event,
            exception_handler,
            predicate=None if source is not None else predicate,
        )
        self._handle = SubscriptionHandle(interface, [subscription])
        self._interface = interface
        interface._register_stream(self)
        if source is not None:
            self._replay()

    # ----------------------------------------------------- subclass hooks

    def _init_waiters(self) -> None:
        """Create the waiting/synchronisation state; runs before subscribing."""
        raise NotImplementedError

    def _on_event(self, event: Any) -> Any:
        """The internal subscription's callback (the producer side)."""
        raise NotImplementedError

    def _replay(self) -> Any:
        """Pull the backlog of a cursor-mode stream at construction/resume."""
        raise NotImplementedError

    def _shutdown(self) -> bool:
        """Flip the closed flag and wake all waiters; False when already closed."""
        raise NotImplementedError

    # ------------------------------------------------------------- resuming

    @property
    def resumable(self) -> bool:
        """Whether this stream was created with ``from_offset`` (cursor mode)."""
        return self._source is not None

    @property
    def offset(self) -> int:
        """The next history offset a cursor-mode stream will pull (0 when live)."""
        return self._cursor

    # ------------------------------------------------------------ lifecycle

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Cancel the subscription and wake all blocked producers/consumers.

        Buffered events stay readable through ``get``/``drain``; iteration
        ends once they are consumed.  Idempotent.  The interface itself
        calls this for every open stream when it closes (or on a blanket
        ``unsubscribe()``), so consumers never block on a subscription that
        no longer exists.  The flag flip and the wake-ups (``_shutdown``)
        happen *first*, then exactly one caller -- the one that flipped the
        flag -- cancels the subscription and unregisters the stream; see
        :meth:`EventStream._shutdown` for the races the order forecloses.
        """
        if not self._shutdown():
            return
        self._handle.cancel()
        self._interface._unregister_stream(self)

    def __enter__(self) -> "StreamCore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return (
            f"{type(self).__name__}({state}, pending={len(self._buffer)}, "
            f"maxsize={self.maxsize}, policy={self.policy!r})"
        )


class EventStream(StreamCore):
    """Pull-style consumption of one interface's events, with backpressure.

    The stream subscribes an internal enqueue callback (honouring any
    pushed-down predicate) and buffers events in arrival order:

    * iterate (``for event in stream``) or call :meth:`get` to consume,
      blocking until an event arrives or the stream is closed;
    * :meth:`drain` grabs everything currently buffered without blocking --
      the natural form inside the single-threaded simulator, where publish
      delivers synchronously;
    * a bounded stream (``maxsize > 0``) applies ``policy`` when full:
      ``"block"`` suspends the *publisher's* delivery until the consumer
      catches up (only meaningful with a consumer on another thread),
      ``"drop_oldest"`` discards the stalest buffered event and counts it in
      :attr:`dropped`.

    Closing (or leaving the ``with`` block) cancels the subscription and
    wakes every blocked producer and consumer.
    """

    def _init_waiters(self) -> None:
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        #: Serialises cursor-mode pulls end to end: entries must enter the
        #: buffer in offset order, and a wake blocked mid-batch on a full
        #: ``"block"`` buffer must not be overtaken by a later wake.  Held
        #: outside ``_lock`` only (pump -> buffer lock, never the reverse),
        #: so no ordering cycle with consumers, which take ``_lock`` alone.
        self._pump_mutex = threading.Lock()
        #: Idents of every thread that has consumed (get/drain), used to
        #: refuse a ``"block"`` wait that can never be woken (see _on_event).
        self._consumer_idents: "set[int]" = set()

    # ------------------------------------------------------------- producer

    def _on_event(self, event: Any) -> None:
        if self._source is not None:
            # Cursor mode: the pushed event is only a wake signal; deliver
            # whatever the history store holds past the cursor instead.
            self._pump()
            return
        with self._lock:
            if self._closed:
                return
            self._enqueue_locked(event)

    def _pump(self) -> None:
        with self._pump_mutex:
            while True:
                with self._lock:
                    if self._closed:
                        return
                    entries = self._source.since(self._cursor)
                if not entries:
                    return
                for offset, event, _ in entries:
                    with self._lock:
                        if self._closed:
                            return
                        # Advance before filtering: a predicate that raises
                        # consumes its entry (the error is routed to the
                        # subscription's exception handler, exactly like a
                        # raising pushed-down predicate) instead of wedging
                        # the cursor on it forever.
                        self._cursor = offset + 1
                    predicate = self._pull_predicate
                    if predicate is not None and not predicate(event):
                        continue
                    with self._lock:
                        if self._closed:
                            return
                        self._enqueue_locked(event)

    def _replay(self) -> None:
        self._pump()

    def resume(self, offset: int) -> "EventStream":
        """Reposition a resumable stream's cursor and pull immediately.

        Only streams created with ``from_offset=`` are resumable.  Anything
        currently buffered is discarded (the buffer would otherwise replay
        on top of the re-pulled entries and duplicate them); the stream then
        holds exactly the retained history at or after ``offset`` and keeps
        following live events from there.  Returns the stream.
        """
        if self._source is None:
            raise PSException(
                "only streams created with from_offset= are resumable; "
                "use tps.stream(from_offset=...) to make one"
            )
        with self._lock:
            if self._closed:
                raise PSException("the event stream is closed")
            self._buffer.clear()
            self._not_full.notify_all()
            self._cursor = max(0, offset)
        self._pump()
        return self

    def _enqueue_locked(self, event: Any) -> None:
        """Apply the maxsize/policy contract and buffer one event.

        Caller holds ``_lock`` and has checked ``_closed``.
        """
        if self.maxsize:
            if self.policy == "block":
                if (
                    len(self._buffer) >= self.maxsize
                    and self._consumer_idents == {threading.get_ident()}
                ):
                    # The publishing thread is this stream's only
                    # consumer so far: blocking it on _not_full could
                    # never be woken -- the thread that would drain the
                    # buffer is the one about to wait.  Raise instead of
                    # deadlocking; like any callback error, the exception
                    # is routed to the subscription's exception handler.
                    # This is deliberately a *heuristic* on observed
                    # consumers: a stream nobody has consumed yet still
                    # blocks (a consumer thread may be about to start,
                    # and raising would break that legitimate pattern),
                    # and a past consumer publishing while a brand-new
                    # consumer thread has not reached its first get()
                    # raises spuriously -- the undecidable trade-off is
                    # resolved toward the re-entrant case that is a
                    # deadlock for certain.
                    raise PSException(
                        "EventStream deadlock: the publishing thread is "
                        "this stream's only consumer and the buffer is "
                        "full; drain the stream first, use a consumer "
                        "thread, or choose policy='drop_oldest'"
                    )
                while len(self._buffer) >= self.maxsize and not self._closed:
                    self._not_full.wait()
                if self._closed:
                    return
            elif len(self._buffer) >= self.maxsize:
                self._buffer.popleft()
                self._dropped += 1
        self._buffer.append(event)
        self._not_empty.notify()

    # ------------------------------------------------------------- consumer

    def get(self, timeout: Optional[float] = None) -> Any:
        """Remove and return the next event, waiting for one if necessary.

        Raises :class:`PSException` when the stream is closed and empty, or
        when ``timeout`` (seconds) elapses without an event.
        """
        with self._not_empty:
            self._consumer_idents.add(threading.get_ident())
            if not self._buffer and not self._closed:
                self._not_empty.wait_for(
                    lambda: self._buffer or self._closed, timeout=timeout
                )
            if self._buffer:
                event = self._buffer.popleft()
                self._not_full.notify()
                return event
            if self._closed:
                raise PSException("the event stream is closed and empty")
            raise PSException(f"no event arrived within {timeout} seconds")

    def drain(self) -> List[Any]:
        """Remove and return everything currently buffered (never blocks)."""
        with self._lock:
            self._consumer_idents.add(threading.get_ident())
            events = list(self._buffer)
            self._buffer.clear()
            self._not_full.notify_all()
            return events

    def __iter__(self) -> Iterator[Any]:
        """Yield events until the stream is closed and drained."""
        while True:
            try:
                yield self.get()
            except PSException:
                return

    # ------------------------------------------------------------ inspection

    @property
    def pending(self) -> int:
        """How many events are buffered right now."""
        with self._lock:
            return len(self._buffer)

    @property
    def dropped(self) -> int:
        """How many events the ``drop_oldest`` policy has discarded."""
        with self._lock:
            return self._dropped

    # ------------------------------------------------------------- lifecycle

    def _shutdown(self) -> bool:
        """Flip the closed flag and wake all waiters, under the lock.

        The flag flips and the wake-ups happen under the lock *first*, then
        exactly one thread (the one that flipped it) runs the cancel and
        unregister in :meth:`StreamCore.close`.  Doing it in the other
        order had two races: two concurrent closers both ran the
        unregister, and a producer already inside ``_on_event`` could start
        a ``_not_full`` wait after the cancel but before the wake -- and
        then sleep forever.
        """
        with self._lock:
            if self._closed:
                return False
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
        return True


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "EventStream",
    "STREAM_POLICIES",
    "StreamCore",
    "SubscriptionBuilder",
    "SubscriptionHandle",
    "combine_predicates",
]
