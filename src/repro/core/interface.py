"""The TPSInterface: the seven methods of the paper's Figure 8.

.. code-block:: java

    public interface TPSInterface<Type> {
        public void publish(Type type) throws PSException;                 // (1)
        public void subscribe(TPSCallBackInterface<Type> tpsCBI,
                              TPSExceptionHandler<Type> tpsExH);           // (2)
        public void subscribe(TPSCallBackInterface<Type>[] tpsCBI,
                              TPSExceptionHandler<Type>[] tpsExH);         // (3)
        public void unsubscribe(TPSCallBackInterface<Type> tpsCBI,
                                TPSExceptionHandler<Type> tpsExH);         // (4)
        public void unsubscribe();                                         // (5)
        public Vector objectsReceived();                                   // (6)
        public Vector objectsSent();                                       // (7)
    }

The Python rendering keeps the same seven operations.  Methods (2) and (3)
collapse into one ``subscribe`` that accepts either a single callback or a
sequence of callbacks; methods (4) and (5) collapse into ``unsubscribe`` with
optional arguments.  CamelCase aliases (``objectsReceived``/``objectsSent``)
are provided for readers following the paper's listings.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Generic, List, Optional, Sequence, TypeVar, Union

from repro.core.callbacks import (
    CallbackLike,
    ExceptionHandlerLike,
    TPSCallBackInterface,
    TPSExceptionHandler,
    as_callback,
    as_exception_handler,
)
from repro.core.exceptions import PSException

EventT = TypeVar("EventT")


@dataclass
class Subscription:
    """One (callback, exception handler) pair registered with an interface."""

    callback: TPSCallBackInterface[Any]
    exception_handler: TPSExceptionHandler[Any]
    #: The objects originally passed by the application, kept so unsubscribe
    #: can match on them even when they were adapted from plain callables.
    original_callback: Any = None
    original_handler: Any = None

    def matches(self, callback: Any, handler: Any = None) -> bool:
        """Whether this subscription was registered with the given objects."""
        cb_match = callback in (self.callback, self.original_callback)
        if handler is None:
            return cb_match
        return cb_match and handler in (self.exception_handler, self.original_handler)


@dataclass
class PublishReceipt:
    """Returned by :meth:`TPSInterface.publish`.

    Captures the virtual CPU time the publish call charged to the publishing
    peer (the paper's Figure 18 "invocation time") and the per-pipe send
    receipts from the wire service.
    """

    cpu_time: float
    completion_time: float
    pipes: int
    wire_receipts: List[Any] = field(default_factory=list)


class TPSInterface(abc.ABC, Generic[EventT]):
    """Abstract TPS interface; concrete bindings implement the transport."""

    # ------------------------------------------------------------ publishing

    @abc.abstractmethod
    def publish(self, event: EventT) -> PublishReceipt:
        """(1) Publish an instance of the interface's type to all subscribers.

        Raises :class:`PSException` (or a subclass) when the object is not an
        instance of the type or the interface is not initialised yet.
        """

    # ---------------------------------------------------------- subscribing

    @abc.abstractmethod
    def _add_subscription(self, subscription: Subscription) -> None:
        """Register one subscription (binding-specific)."""

    @abc.abstractmethod
    def _remove_subscriptions(
        self, callback: Optional[Any] = None, handler: Optional[Any] = None
    ) -> int:
        """Remove matching subscriptions (all of them when ``callback`` is None)."""

    def subscribe(
        self,
        callback: Union[CallbackLike, Sequence[CallbackLike]],
        exception_handler: Union[
            ExceptionHandlerLike, Sequence[ExceptionHandlerLike], None
        ] = None,
    ) -> None:
        """(2)/(3) Subscribe one callback -- or several at once -- to the type.

        The list form mirrors the paper's second ``subscribe`` overload, used
        "to register several call-back objects to handle the events in
        different ways" (e.g. a console view and a GUI view of the same
        events).  When a list of callbacks is given, ``exception_handler``
        may be a matching list, a single handler shared by all callbacks, or
        None.
        """
        if isinstance(callback, (list, tuple)):
            callbacks = list(callback)
            if isinstance(exception_handler, (list, tuple)):
                handlers = list(exception_handler)
                if len(handlers) != len(callbacks):
                    raise PSException(
                        "subscribe: the callback and exception-handler lists must have "
                        f"the same length ({len(callbacks)} != {len(handlers)})"
                    )
            else:
                handlers = [exception_handler] * len(callbacks)
            if not callbacks:
                raise PSException("subscribe: empty callback list")
            for cb, eh in zip(callbacks, handlers):
                self._subscribe_one(cb, eh)
        else:
            self._subscribe_one(callback, exception_handler)  # type: ignore[arg-type]

    def _subscribe_one(
        self, callback: CallbackLike, exception_handler: Optional[ExceptionHandlerLike]
    ) -> None:
        subscription = Subscription(
            callback=as_callback(callback),
            exception_handler=as_exception_handler(exception_handler),
            original_callback=callback,
            original_handler=exception_handler,
        )
        self._add_subscription(subscription)

    def unsubscribe(
        self,
        callback: Optional[CallbackLike] = None,
        exception_handler: Optional[ExceptionHandlerLike] = None,
    ) -> int:
        """(4)/(5) Remove one subscription, or every subscription.

        With a ``callback`` (and optionally its handler) only the matching
        subscription is removed; with no arguments all call-back objects are
        removed and "no event is received anymore".  Returns the number of
        subscriptions removed.
        """
        return self._remove_subscriptions(callback, exception_handler)

    # --------------------------------------------------------------- history

    @abc.abstractmethod
    def objects_received(self) -> List[EventT]:
        """(6) Every event delivered to this interface so far, in order."""

    @abc.abstractmethod
    def objects_sent(self) -> List[EventT]:
        """(7) Every event published through this interface so far, in order."""

    # Aliases matching the paper's method names.
    def objectsReceived(self) -> List[EventT]:  # noqa: N802 - paper-compatible alias
        """Alias of :meth:`objects_received` matching the paper's Figure 8."""
        return self.objects_received()

    def objectsSent(self) -> List[EventT]:  # noqa: N802 - paper-compatible alias
        """Alias of :meth:`objects_sent` matching the paper's Figure 8."""
        return self.objects_sent()


__all__ = ["PublishReceipt", "Subscription", "TPSInterface"]
