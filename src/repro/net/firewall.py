"""Firewalls and NAT boxes for the simulated network.

The paper's Figure 6 shows the Endpoint Routing Protocol relaying a message
over HTTP through a rendez-vous/router peer because a firewall sits between
peer A and peer C.  To exercise that code path the simulated network lets a
:class:`Firewall` be attached in front of a node; the firewall filters packets
by transport, protocol and direction.

A typical corporate firewall of the era allowed outbound HTTP but blocked
inbound TCP, which is exactly the default rule set provided by
:meth:`Firewall.corporate_default`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.net.packet import Packet
from repro.net.transport import TransportKind


class Direction(str, enum.Enum):
    """Whether a packet is entering or leaving the protected node."""

    INBOUND = "inbound"
    OUTBOUND = "outbound"


@dataclass(frozen=True)
class FirewallRule:
    """A single allow/deny rule.

    Rules match on direction, transport and protocol; ``None`` acts as a
    wildcard.  The first matching rule wins.
    """

    action: str  # "allow" or "deny"
    direction: Optional[Direction] = None
    transport: Optional[TransportKind] = None
    protocol: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action not in ("allow", "deny"):
            raise ValueError(f"rule action must be 'allow' or 'deny', got {self.action!r}")

    def matches(self, packet: Packet, direction: Direction) -> bool:
        """Whether this rule applies to the given packet and direction."""
        if self.direction is not None and self.direction != direction:
            return False
        if self.transport is not None and self.transport.value != packet.transport:
            return False
        if self.protocol is not None and self.protocol != packet.protocol:
            return False
        return True


class Firewall:
    """An ordered rule list protecting one node.

    The default policy (when no rule matches) is configurable; JXTA-era
    deployments usually defaulted to deny for inbound traffic and allow for
    outbound.
    """

    def __init__(
        self,
        rules: Iterable[FirewallRule] = (),
        *,
        default_inbound: str = "allow",
        default_outbound: str = "allow",
    ) -> None:
        self.rules: List[FirewallRule] = list(rules)
        if default_inbound not in ("allow", "deny") or default_outbound not in ("allow", "deny"):
            raise ValueError("default policies must be 'allow' or 'deny'")
        self.default_inbound = default_inbound
        self.default_outbound = default_outbound
        self.blocked_count = 0

    def add_rule(self, rule: FirewallRule) -> None:
        """Append a rule (evaluated after all existing rules)."""
        self.rules.append(rule)

    def permits(self, packet: Packet, direction: Direction) -> bool:
        """Evaluate the rule list; record and return whether the packet passes."""
        for rule in self.rules:
            if rule.matches(packet, direction):
                allowed = rule.action == "allow"
                if not allowed:
                    self.blocked_count += 1
                return allowed
        default = (
            self.default_inbound if direction is Direction.INBOUND else self.default_outbound
        )
        allowed = default == "allow"
        if not allowed:
            self.blocked_count += 1
        return allowed

    # ------------------------------------------------------------- presets

    @classmethod
    def open(cls) -> "Firewall":
        """A firewall that allows everything (the default for LAN peers)."""
        return cls()

    @classmethod
    def corporate_default(cls) -> "Firewall":
        """Block inbound TCP and multicast, allow HTTP both ways.

        This is the configuration that forces the Endpoint Routing Protocol to
        relay messages through a router peer over HTTP, as in Figure 6 of the
        paper.
        """
        return cls(
            rules=[
                FirewallRule("allow", transport=TransportKind.HTTP),
                FirewallRule("deny", direction=Direction.INBOUND, transport=TransportKind.TCP),
                FirewallRule(
                    "deny", direction=Direction.INBOUND, transport=TransportKind.MULTICAST
                ),
                FirewallRule(
                    "deny", direction=Direction.OUTBOUND, transport=TransportKind.MULTICAST
                ),
            ],
        )


__all__ = ["Direction", "Firewall", "FirewallRule"]
