"""A one-call test-bed: a LAN of peers ready for TPS experiments.

The paper's measurements run on a handful of workstations on one FastEthernet
segment.  :func:`tps_network` builds exactly that -- a rendez-vous/router
peer plus ``peers`` ordinary peers on a single simulated LAN -- and returns a
:class:`TPSNetwork` handle exposing the peers, the simulator and convenience
helpers (``settle``, ``run_for``).

This is the entry point used by the quickstart example, most integration
tests and the benchmark harness.
"""

from __future__ import annotations

from typing import List, Optional

from repro.jxta.peer import Peer
from repro.jxta.platform import JxtaNetworkBuilder
from repro.net.cost import CostModel, PAPER_TESTBED
from repro.net.network import Network
from repro.net.simclock import Simulator


class TPSNetwork:
    """A built simulated network of peers, ready for TPS engines."""

    def __init__(self, builder: JxtaNetworkBuilder, *, rendezvous: Optional[Peer]) -> None:
        self._builder = builder
        self.rendezvous = rendezvous
        #: The ordinary (non rendez-vous) peers, in creation order.
        self.peers: List[Peer] = [p for p in builder.peers if p is not rendezvous]

    # ------------------------------------------------------------ accessors

    @property
    def network(self) -> Network:
        """The underlying simulated network."""
        return self._builder.network

    @property
    def simulator(self) -> Simulator:
        """The discrete-event simulator driving the network."""
        return self._builder.simulator

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.simulator.now

    def peer(self, index: int) -> Peer:
        """The ``index``-th ordinary peer."""
        return self.peers[index]

    def peer_named(self, name: str) -> Peer:
        """Look up any built peer (including the rendez-vous) by name."""
        return self._builder.peer_named(name)

    def __len__(self) -> int:
        return len(self.peers)

    # -------------------------------------------------------------- running

    def settle(self, rounds: int = 32, quantum: float = 1.0) -> int:
        """Advance virtual time until in-flight protocol traffic quiesces.

        Call this after creating TPS interfaces (to let discovery,
        advertisement creation and pipe binding finish) and after publishing
        (to let events reach the subscribers).  Returns the number of
        simulation events processed.
        """
        return self.network.settle(rounds=rounds, quantum=quantum)

    def run_for(self, seconds: float) -> int:
        """Advance virtual time by exactly ``seconds``."""
        return self.simulator.run_for(seconds)

    def run_until(self, time: float) -> int:
        """Advance virtual time to the absolute instant ``time``."""
        return self.simulator.run_until(time)


def tps_network(
    peers: int = 2,
    *,
    seed: int = 2002,
    with_rendezvous: bool = True,
    cost_model: CostModel = PAPER_TESTBED,
    peer_name_prefix: str = "peer",
) -> TPSNetwork:
    """Build a LAN test-bed of ``peers`` ordinary peers (plus a rendez-vous).

    Parameters
    ----------
    peers:
        Number of ordinary peers to create (named ``peer-0``, ``peer-1``...).
    seed:
        Seed of the deterministic noise source; two runs with the same seed
        produce identical traces.
    with_rendezvous:
        Whether to add a rendez-vous/router peer (``rdv-0``) that the ordinary
        peers connect to.  On a single multicast-capable LAN the rendez-vous
        is not strictly required, but the paper's deployment has one.
    cost_model:
        The substrate cost calibration (defaults to the paper's testbed).
    """
    if peers < 1:
        raise ValueError("a TPS network needs at least one peer")
    builder = JxtaNetworkBuilder(seed=seed, cost_model=cost_model)
    rendezvous = builder.add_rendezvous("rdv-0") if with_rendezvous else None
    for index in range(peers):
        builder.add_peer(f"{peer_name_prefix}-{index}")
    builder.settle(rounds=8)
    return TPSNetwork(builder, rendezvous=rendezvous)


__all__ = ["TPSNetwork", "tps_network"]
