"""A minimal XML document model, writer and parser.

JXTA represents every advertisement as an XML document and every message as a
bag of named (possibly XML) elements.  The reproduction does not need the full
XML specification -- only elements, attributes, text content and nesting --
so this module implements exactly that, from scratch, with strict escaping.

Two parsers share the same recursive-descent grammar over the writer's
output:

* :class:`_ScanningParser` (the default) tokenises with precompiled regexes
  and ``str.find`` span jumps -- names, whole attribute runs, whitespace and
  text chunks are each consumed in a single C-level match instead of
  per-character ``isspace``/``isalnum`` loops.  Every advertisement,
  discovery response, CMS entry and decoded XML event funnels through it.
* :class:`_Parser` is the original character-at-a-time implementation, kept
  reachable via ``parse_xml(document, fast=False)`` as the behavioural
  reference; the property tests in ``tests/test_xml_parser_properties.py``
  pin tree-equality between the two on generated documents.

Both accept the documents this package produces (and reasonable hand-written
ones), and raise :class:`XmlParseError` with a position on malformed input.
Comments and processing instructions are skipped.

Whitespace is significant: the writer entity-encodes leading/trailing
whitespace in element text (``escape_element_text``), so the parsers' strip
of raw pretty-printing whitespace never eats content and text round-trips
exactly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
    '"': "&quot;",
    "'": "&apos;",
}
_UNESCAPES = {v: k for k, v in _ESCAPES.items()}

#: One-pass translation table for :func:`escape_text` (ordinal -> entity).
_ESCAPE_TABLE = str.maketrans(_ESCAPES)
#: Matches any character that needs escaping; most strings contain none, so
#: a single failed scan is the whole cost of escaping them.
_NEEDS_ESCAPE = re.compile(r"[&<>\"']").search


class XmlParseError(ValueError):
    """Raised when a document cannot be parsed; carries the offending position."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


def escape_text(text: str) -> str:
    """Escape the five XML special characters in ``text``.

    Strings containing no specials (the overwhelmingly common case on the
    publish hot path) are returned unchanged after one regex scan; the rest
    are rewritten in one pass with :meth:`str.translate`.
    """
    if _NEEDS_ESCAPE(text) is None:
        return text
    return text.translate(_ESCAPE_TABLE)


def escape_element_text(text: str) -> str:
    """Escape ``text`` for use as element content, preserving boundary whitespace.

    In addition to :func:`escape_text`, any leading/trailing whitespace is
    entity-encoded (``" x "`` becomes ``&#32;x&#32;``) so that the parser's
    strip of raw pretty-printing whitespace cannot eat it: write and parse
    stay symmetric for every string.  Text with no boundary whitespace (the
    normal case on the wire) is returned byte-identical to
    :func:`escape_text`.
    """
    escaped = escape_text(text)
    if not escaped or (not escaped[0].isspace() and not escaped[-1].isspace()):
        return escaped
    head = 0
    while head < len(escaped) and escaped[head].isspace():
        head += 1
    tail = len(escaped)
    while tail > head and escaped[tail - 1].isspace():
        tail -= 1
    return (
        "".join(f"&#{ord(c)};" for c in escaped[:head])
        + escaped[head:tail]
        + "".join(f"&#{ord(c)};" for c in escaped[tail:])
    )


#: Exactly the digit runs XML allows in character references -- ``int()``
#: alone is too lenient (it accepts ``2_0``, ``+65`` and surrounding space).
_DEC_DIGITS = re.compile(r"[0-9]+\Z").match
_HEX_DIGITS = re.compile(r"[0-9A-Fa-f]+\Z").match


def _decode_char_reference(entity: str, position: int) -> str:
    """Decode a ``&#...;`` / ``&#x...;`` reference, raising :class:`XmlParseError`.

    Malformed digits (``&#xZZ;``, ``&#2_0;``) and out-of-range code points
    (``&#1114112;``) must surface as parse errors carrying the entity's
    offset, not as bare ``ValueError``/``OverflowError`` from ``int``/``chr``
    -- nor be silently accepted through ``int()``'s lenient parsing.
    """
    if entity[2] in "xX":
        digits, base, valid = entity[3:-1], 16, _HEX_DIGITS
    else:
        digits, base, valid = entity[2:-1], 10, _DEC_DIGITS
    if valid(digits) is None:
        raise XmlParseError(f"invalid character reference {entity!r}", position)
    try:
        char = chr(int(digits, base))
    except (ValueError, OverflowError):
        raise XmlParseError(f"invalid character reference {entity!r}", position) from None
    if "\ud800" <= char <= "\udfff":
        # Surrogate code points are not XML characters, and accepting one
        # plants a string that explodes with UnicodeEncodeError at the next
        # UTF-8 encode -- far from any parse-error guard.
        raise XmlParseError(f"invalid character reference {entity!r}", position)
    return char


#: Finds an ``&`` that does *not* begin one of the five named entities.  When
#: this fails to match, the whole string can be unescaped with five chained
#: C-level ``str.replace`` passes (replacing ``&amp;`` last, so entity names
#: freed by it are never re-interpreted).
_NOT_NAMED_ENTITY = re.compile(r"&(?!(?:amp|lt|gt|quot|apos);)").search


def unescape_text(text: str) -> str:
    """Reverse :func:`escape_text` (also handles numeric character references).

    Text without ``&`` is returned unchanged.  Text whose every ``&`` starts
    a named entity -- e.g. a whole escaped XML document embedded as element
    text, the single heaviest unescape workload on the discovery path -- is
    rewritten with bulk ``str.replace`` passes.  Only text with numeric
    character references or errors walks the entity-by-entity loop.
    """
    amp = text.find("&")
    if amp == -1:
        return text
    if _NOT_NAMED_ENTITY(text, amp) is None:
        return (
            text.replace("&lt;", "<")
            .replace("&gt;", ">")
            .replace("&quot;", '"')
            .replace("&apos;", "'")
            .replace("&amp;", "&")
        )
    result: List[str] = []
    i = 0
    while amp != -1:
        result.append(text[i:amp])
        end = text.find(";", amp)
        if end == -1:
            raise XmlParseError("unterminated entity reference", amp)
        entity = text[amp : end + 1]
        if entity in _UNESCAPES:
            result.append(_UNESCAPES[entity])
        elif entity.startswith("&#") and len(entity) > 3:
            result.append(_decode_char_reference(entity, amp))
        else:
            raise XmlParseError(f"unknown entity {entity!r}", amp)
        i = end + 1
        amp = text.find("&", i)
    result.append(text[i:])
    return "".join(result)


@dataclass
class XmlElement:
    """One XML element: a name, attributes, text content and child elements."""

    name: str
    attributes: Dict[str, str] = field(default_factory=dict)
    text: str = ""
    children: List["XmlElement"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ValueError(f"invalid element name {self.name!r}")

    # -------------------------------------------------------------- building

    def add_child(self, child: "XmlElement") -> "XmlElement":
        """Append a child element and return it (for chaining)."""
        self.children.append(child)
        return child

    def add(self, tag: str, text: str = "", **attributes: str) -> "XmlElement":
        """Create a child element with the given tag/text/attributes and return it.

        Keyword arguments become XML attributes (e.g. ``parent.add("Service",
        name="wire")`` produces ``<Service name="wire"/>``).
        """
        return self.add_child(XmlElement(name=tag, attributes=dict(attributes), text=text))

    def set_attribute(self, key: str, value: str) -> None:
        """Set an attribute on this element."""
        self.attributes[key] = value

    # -------------------------------------------------------------- querying

    def find(self, name: str) -> Optional["XmlElement"]:
        """Return the first direct child with the given name, or None."""
        for child in self.children:
            if child.name == name:
                return child
        return None

    def find_all(self, name: str) -> List["XmlElement"]:
        """Return every direct child with the given name."""
        return [child for child in self.children if child.name == name]

    def child_text(self, name: str, default: str = "") -> str:
        """Return the text of the first child with the given name, or ``default``."""
        child = self.find(name)
        return child.text if child is not None else default

    def iter(self) -> Iterator["XmlElement"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self.children:
            yield from child.iter()

    # ------------------------------------------------------------- rendering

    def to_string(self, *, indent: Optional[int] = None, _level: int = 0) -> str:
        """Serialise the element (and subtree) to a string.

        ``indent`` of None produces a compact single-line document; an integer
        pretty-prints with that many spaces per level.
        """
        pad = "" if indent is None else "\n" + " " * (indent * _level)
        child_pad = "" if indent is None else "\n" + " " * (indent * (_level + 1))
        attrs = "".join(
            f' {key}="{escape_text(str(value))}"' for key, value in self.attributes.items()
        )
        inner = escape_element_text(self.text)
        if not self.children and not inner:
            return f"<{self.name}{attrs}/>"
        parts = [f"<{self.name}{attrs}>"]
        if inner:
            parts.append(inner)
        for child in self.children:
            if indent is not None:
                parts.append(child_pad)
            parts.append(child.to_string(indent=indent, _level=_level + 1))
        if self.children and indent is not None:
            parts.append(pad if _level else "\n")
        parts.append(f"</{self.name}>")
        return "".join(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XmlElement):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.text == other.text
            and self.children == other.children
        )


def to_xml(element: XmlElement, *, declaration: bool = True, indent: Optional[int] = None) -> str:
    """Serialise an element tree to a full document string."""
    body = element.to_string(indent=indent)
    if declaration:
        return f'<?xml version="1.0" encoding="UTF-8"?>{body}'
    return body


# Scanning tokenizer: each regex consumes one whole token (a name, a complete
# attribute, a tag tail) in a single C-level match.  The name classes mirror
# the legacy parser: ``[^\W\d]`` is "word char that is not a digit"
# (``str.isalpha`` plus underscore) and the continuation class is
# ``str.isalnum`` plus ``._-:`` (which is ``\w`` plus ``.-:``).  Sole
# (deliberate) leniency: non-decimal Unicode numerals (``Ⅻ``, ``²``) are
# word chars, so they are accepted as name *starts* where the legacy
# ``isalpha`` check is not -- unreachable from this package's writers and
# not worth a per-name Python check on the hot path.
_NAME_PATTERN = r"[^\W\d][\w.\-:]*"
_WS = re.compile(r"\s*").match
_NAME = re.compile(_NAME_PATTERN).match
#: The attribute-free open tag -- the dominant shape on the wire -- in one hit.
_SIMPLE_OPEN_TAG = re.compile(rf"<({_NAME_PATTERN})\s*(/?)>").match
#: One complete ``name="value"`` / ``name='value'`` attribute, quotes included.
_ATTRIBUTE = re.compile(rf"""\s*({_NAME_PATTERN})\s*=\s*("[^"]*"|'[^']*')""").match
_TAG_END = re.compile(r"\s*(/?)>").match
_CLOSE_TAG = re.compile(rf"</({_NAME_PATTERN})\s*>").match


def _new_element(name: str, attributes: Dict[str, str]) -> XmlElement:
    """Build an :class:`XmlElement` for parser output, skipping validation.

    The scanning parser's names come straight off the name regex, so the
    ``__post_init__`` whitespace re-scan (a per-character loop) would be pure
    overhead on the hot path.
    """
    element = XmlElement.__new__(XmlElement)
    element.name = name
    element.attributes = attributes
    element.text = ""
    element.children = []
    return element


class _ScanningParser:
    """The default parser: bulk regex scans instead of per-character loops.

    Grammar and semantics match :class:`_Parser` (the legacy reference
    implementation); only the tokenisation strategy differs.  Error messages
    on malformed input are produced by a slow diagnostic replay of the legacy
    steps, so the happy path pays nothing for them.
    """

    __slots__ = ("text", "pos")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def parse_document(self) -> XmlElement:
        self._skip_prolog()
        element = self._parse_element()
        self._skip_misc()
        if self.pos != len(self.text):
            raise XmlParseError("trailing content after document element", self.pos)
        return element

    # ------------------------------------------------------------- low level

    def _skip_prolog(self) -> None:
        self._skip_misc()
        if self.text.startswith("<?xml", self.pos):
            end = self.text.find("?>", self.pos)
            if end == -1:
                raise XmlParseError("unterminated XML declaration", self.pos)
            self.pos = end + 2
        self._skip_misc()

    def _skip_misc(self) -> None:
        text = self.text
        while True:
            self.pos = _WS(text, self.pos).end()
            if text.startswith("<!--", self.pos):
                end = text.find("-->", self.pos)
                if end == -1:
                    raise XmlParseError("unterminated comment", self.pos)
                self.pos = end + 3
            elif text.startswith("<?", self.pos) and not text.startswith("<?xml", self.pos):
                end = text.find("?>", self.pos)
                if end == -1:
                    raise XmlParseError("unterminated processing instruction", self.pos)
                self.pos = end + 2
            else:
                return

    # ------------------------------------------------------------------ tags

    def _parse_open_tag(self) -> "tuple[str, Dict[str, str], bool]":
        """Consume an open tag with attributes; returns (name, attrs, closed).

        Only reached when the attribute-free fast match in
        :meth:`_parse_element` failed, so this handles attributes and all the
        malformed-tag diagnostics.
        """
        text = self.text
        if not text.startswith("<", self.pos):
            raise XmlParseError("expected '<'", self.pos)
        name_match = _NAME(text, self.pos + 1)
        if name_match is None:
            raise XmlParseError("names must start with a letter or underscore", self.pos + 1)
        self.pos = name_match.end()
        attributes: Dict[str, str] = {}
        while True:
            attr = _ATTRIBUTE(text, self.pos)
            if attr is None:
                break
            value = attr.group(2)[1:-1]
            attributes[attr.group(1)] = unescape_text(value) if "&" in value else value
            self.pos = attr.end()
        end_match = _TAG_END(text, self.pos)
        if end_match is None:
            self._fail_in_tag()
        self.pos = end_match.end()
        return name_match.group(), attributes, end_match.group(1) == "/"

    def _fail_in_tag(self) -> None:
        """Replay the legacy attribute steps at the failure point for the error."""
        text = self.text
        pos = _WS(text, self.pos).end()
        if pos >= len(text):
            raise XmlParseError("expected '>'", pos)
        if text[pos] == "/":
            raise XmlParseError("expected '/>'", pos)
        name_match = _NAME(text, pos)
        if name_match is None:
            raise XmlParseError("names must start with a letter or underscore", pos)
        pos = _WS(text, name_match.end()).end()
        if not text.startswith("=", pos):
            raise XmlParseError("expected '='", pos)
        pos = _WS(text, pos + 1).end()
        if pos >= len(text) or text[pos] not in ('"', "'"):
            raise XmlParseError("attribute value must be quoted", pos)
        raise XmlParseError("unterminated attribute value", pos + 1)

    # -------------------------------------------------------------- elements

    def _parse_element(self) -> XmlElement:
        text = self.text
        match = _SIMPLE_OPEN_TAG(text, self.pos)
        if match is not None:  # attribute-free tag: the dominant wire shape
            self.pos = match.end()
            name = match.group(1)
            element = _new_element(name, {})
            if match.group(2):
                return element
        else:
            name, attributes, closed = self._parse_open_tag()
            element = _new_element(name, attributes)
            if closed:
                return element
        children = element.children
        text_chunks: Optional[List[str]] = None
        chunk = ""
        while True:
            lt = text.find("<", self.pos)
            if lt == -1:
                raise XmlParseError(f"unterminated element <{name}>", self.pos)
            if lt > self.pos:
                piece = text[self.pos : lt]
                if not chunk:
                    chunk = piece
                elif text_chunks is None:
                    text_chunks = [chunk, piece]
                else:
                    text_chunks.append(piece)
                self.pos = lt
            if text.startswith("</", lt):
                # Exact ``</name>`` (the only form the writer emits) in two
                # substring checks; anything else drops to the regex.
                after = lt + 2 + len(name)
                if text.startswith(name, lt + 2) and text.startswith(">", after):
                    self.pos = after + 1
                else:
                    close = _CLOSE_TAG(text, lt)
                    if close is None:
                        name_match = _NAME(text, lt + 2)
                        if name_match is None:
                            raise XmlParseError(
                                "names must start with a letter or underscore", lt + 2
                            )
                        raise XmlParseError("expected '>'", _WS(text, name_match.end()).end())
                    if close.group(1) != name:
                        raise XmlParseError(
                            f"mismatched closing tag </{close.group(1)}> for <{name}>",
                            close.end(1),
                        )
                    self.pos = close.end()
                if text_chunks is not None:
                    chunk = "".join(text_chunks)
                chunk = chunk.strip()
                element.text = unescape_text(chunk) if "&" in chunk else chunk
                return element
            if text.startswith("<!--", lt):
                end = text.find("-->", lt)
                if end == -1:
                    raise XmlParseError("unterminated comment", lt)
                self.pos = end + 3
                continue
            children.append(self._parse_element())


class _Parser:
    """The legacy character-at-a-time parser (``parse_xml(..., fast=False)``).

    Kept as the behavioural reference for :class:`_ScanningParser`; the
    property suite pins tree-equality between the two."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def parse_document(self) -> XmlElement:
        self._skip_prolog()
        element = self._parse_element()
        self._skip_whitespace_and_misc()
        if self.pos != len(self.text):
            raise XmlParseError("trailing content after document element", self.pos)
        return element

    # ------------------------------------------------------------- low level

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise XmlParseError(f"expected {literal!r}", self.pos)
        self.pos += len(literal)

    def _skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _skip_prolog(self) -> None:
        self._skip_whitespace_and_misc()
        if self.text.startswith("<?xml", self.pos):
            end = self.text.find("?>", self.pos)
            if end == -1:
                raise XmlParseError("unterminated XML declaration", self.pos)
            self.pos = end + 2
        self._skip_whitespace_and_misc()

    def _skip_whitespace_and_misc(self) -> None:
        while True:
            self._skip_whitespace()
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end == -1:
                    raise XmlParseError("unterminated comment", self.pos)
                self.pos = end + 3
            elif self.text.startswith("<?", self.pos) and not self.text.startswith(
                "<?xml", self.pos
            ):
                end = self.text.find("?>", self.pos)
                if end == -1:
                    raise XmlParseError("unterminated processing instruction", self.pos)
                self.pos = end + 2
            else:
                return

    def _parse_name(self) -> str:
        start = self.pos
        first = self._peek()
        if not (first.isalpha() or first == "_"):
            raise XmlParseError("names must start with a letter or underscore", self.pos)
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "._-:"
        ):
            self.pos += 1
        return self.text[start : self.pos]

    def _parse_attributes(self) -> Dict[str, str]:
        attributes: Dict[str, str] = {}
        while True:
            self._skip_whitespace()
            ch = self._peek()
            if ch in (">", "/", ""):
                return attributes
            key = self._parse_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            quote = self._peek()
            if quote not in ('"', "'"):
                raise XmlParseError("attribute value must be quoted", self.pos)
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end == -1:
                raise XmlParseError("unterminated attribute value", self.pos)
            attributes[key] = unescape_text(self.text[self.pos : end])
            self.pos = end + 1

    def _parse_element(self) -> XmlElement:
        self._expect("<")
        name = self._parse_name()
        attributes = self._parse_attributes()
        if self._peek() == "/":
            self._expect("/>")
            return XmlElement(name=name, attributes=attributes)
        self._expect(">")
        element = XmlElement(name=name, attributes=attributes)
        text_chunks: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise XmlParseError(f"unterminated element <{name}>", self.pos)
            if self.text.startswith("</", self.pos):
                self._expect("</")
                closing = self._parse_name()
                if closing != name:
                    raise XmlParseError(
                        f"mismatched closing tag </{closing}> for <{name}>", self.pos
                    )
                self._skip_whitespace()
                self._expect(">")
                element.text = unescape_text("".join(text_chunks).strip())
                return element
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end == -1:
                    raise XmlParseError("unterminated comment", self.pos)
                self.pos = end + 3
                continue
            if self._peek() == "<":
                element.children.append(self._parse_element())
                continue
            next_tag = self.text.find("<", self.pos)
            if next_tag == -1:
                raise XmlParseError(f"unterminated element <{name}>", self.pos)
            text_chunks.append(self.text[self.pos : next_tag])
            self.pos = next_tag


def parse_xml(document: str, *, fast: bool = True) -> XmlElement:
    """Parse a document string produced by :func:`to_xml` back into an element tree.

    ``fast=False`` routes through the legacy character-at-a-time parser; the
    two produce identical trees on every document both accept, which the
    property suite in ``tests/test_xml_parser_properties.py`` enforces.  (The
    scanning parser is lenient in exactly one place: non-decimal Unicode
    numerals as name starts -- see the note at ``_NAME_PATTERN``.)
    """
    if fast:
        return _ScanningParser(document).parse_document()
    return _Parser(document).parse_document()


__all__ = [
    "XmlElement",
    "XmlParseError",
    "escape_element_text",
    "escape_text",
    "parse_xml",
    "to_xml",
    "unescape_text",
]
