"""The endpoint service: peer-to-peer message delivery.

The endpoint service is the lowest layer of the JXTA substrate.  It turns
"send this :class:`~repro.jxta.message.Message` to that peer (or to everyone)
for that service" into packets on the simulated network, picking a transport
both ends share, relaying through router peers when no direct route exists
(the Endpoint Routing Protocol, Figure 6 of the paper) and re-propagating
broadcast traffic through rendez-vous peers (which "are mainly used to
dispatch information and discovery queries between peers").

Services register listeners keyed by a service name and an optional service
parameter; incoming envelopes are dispatched to the most specific listener.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.jxta.errors import RoutingError
from repro.jxta.ids import PeerID
from repro.jxta.message import Message
from repro.net.network import NetworkError, NoRouteError
from repro.net.packet import Packet
from repro.net.transport import TransportKind
from repro.serialization.object_codec import ObjectCodec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.peer import Peer

_ENVELOPE_CODEC = ObjectCodec(strict=True)
_envelope_counter = itertools.count(1)

#: Address used for propagated (broadcast) envelopes.
PROPAGATE_DESTINATION = "*"

#: Destination used when the sender only knows a network address, not a peer
#: ID (e.g. the first rendez-vous lease request): whichever peer answers at
#: that address accepts the envelope.
ANY_PEER = "urn:jxta:any"

#: Default number of rendez-vous re-propagation hops.
DEFAULT_PROPAGATE_TTL = 4


@dataclass
class EndpointEnvelope:
    """The wire-level envelope wrapping a JXTA message.

    Attributes mirror what a real JXTA endpoint header carries: source and
    destination peer IDs, the addressed service and parameter, a unique
    envelope id for duplicate suppression during propagation, a TTL and the
    list of relay peers traversed.
    """

    src_peer: str
    src_address: str
    dst_peer: str
    service: str
    param: str
    envelope_id: str
    ttl: int
    propagate: bool
    hops: List[str] = field(default_factory=list)
    body: bytes = b""

    def to_bytes(self) -> bytes:
        """Serialise the envelope for the network."""
        return _ENVELOPE_CODEC.encode(
            {
                "src_peer": self.src_peer,
                "src_address": self.src_address,
                "dst_peer": self.dst_peer,
                "service": self.service,
                "param": self.param,
                "envelope_id": self.envelope_id,
                "ttl": self.ttl,
                "propagate": self.propagate,
                "hops": self.hops,
                "body": self.body,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "EndpointEnvelope":
        """Decode an envelope serialised with :meth:`to_bytes`."""
        raw = _ENVELOPE_CODEC.decode(data)
        return cls(
            src_peer=raw["src_peer"],
            src_address=raw["src_address"],
            dst_peer=raw["dst_peer"],
            service=raw["service"],
            param=raw["param"],
            envelope_id=raw["envelope_id"],
            ttl=raw["ttl"],
            propagate=raw["propagate"],
            hops=list(raw["hops"]),
            body=raw["body"],
        )

    @property
    def source_peer_id(self) -> PeerID:
        """The sender's :class:`PeerID`."""
        return PeerID.from_urn(self.src_peer)

    def message(self) -> Message:
        """Deserialise the carried JXTA message."""
        return Message.from_bytes(self.body)


#: Listener signature: ``listener(envelope, message)``.
EndpointListener = Callable[[EndpointEnvelope, Message], None]


class _SeenSet:
    """A bounded set of recently seen envelope ids (duplicate suppression)."""

    def __init__(self, capacity: int = 4096) -> None:
        self._capacity = capacity
        self._items: "OrderedDict[str, None]" = OrderedDict()

    def seen(self, key: str) -> bool:
        """Record ``key``; return True if it had been recorded before."""
        if key in self._items:
            self._items.move_to_end(key)
            return True
        self._items[key] = None
        if len(self._items) > self._capacity:
            self._items.popitem(last=False)
        return False

    def __len__(self) -> int:
        return len(self._items)


class EndpointService:
    """Per-peer message delivery service.

    Parameters
    ----------
    peer:
        The owning :class:`~repro.jxta.peer.Peer`; the endpoint uses its node,
        simulator, noise source and metrics registry.
    """

    SERVICE_NAME = "jxta.service.endpoint"

    def __init__(self, peer: "Peer") -> None:
        self.peer = peer
        self.node = peer.node
        self._listeners: Dict[Tuple[str, str], EndpointListener] = {}
        #: peer URN -> network address, learned from advertisements and traffic.
        self._address_book: Dict[str, str] = {peer.peer_id.to_urn(): peer.node.address}
        #: peer URN -> network address of rendez-vous peers this peer is connected to.
        self._rendezvous: Dict[str, str] = {}
        #: peer URN -> network address of connected clients (when *this* peer is a rdv).
        self._clients: Dict[str, str] = {}
        #: peer URN -> network address of known router peers.
        self._routers: Dict[str, str] = {}
        self._seen = _SeenSet()
        self.metrics = peer.metrics
        self.node.add_handler(self._on_packet)

    # ----------------------------------------------------------- listeners

    def register_listener(
        self, service: str, param: str, listener: EndpointListener
    ) -> None:
        """Register ``listener`` for envelopes addressed to (service, param)."""
        self._listeners[(service, param)] = listener

    def unregister_listener(self, service: str, param: str) -> None:
        """Remove a listener (missing registrations are ignored)."""
        self._listeners.pop((service, param), None)

    def listener_count(self) -> int:
        """Number of registered listeners (a proxy for PRP handler coverage)."""
        return len(self._listeners)

    # --------------------------------------------------------- address book

    def learn_address(self, peer_id: PeerID | str, address: str) -> None:
        """Record that ``peer_id`` currently lives at network address ``address``.

        Addresses are learned from peer advertisements and refreshed from the
        source address of every received envelope, which is how pipes keep
        working when a peer's IP changes (the Pipe Binding Protocol relies on
        the stable peer UUID, not the address).
        """
        urn = peer_id.to_urn() if isinstance(peer_id, PeerID) else peer_id
        self._address_book[urn] = address

    def known_address(self, peer_id: PeerID | str) -> Optional[str]:
        """The last known network address of a peer, or None."""
        urn = peer_id.to_urn() if isinstance(peer_id, PeerID) else peer_id
        return self._address_book.get(urn)

    def forget_address(self, peer_id: PeerID | str) -> None:
        """Drop a peer from the address book (used by failure-injection tests)."""
        urn = peer_id.to_urn() if isinstance(peer_id, PeerID) else peer_id
        self._address_book.pop(urn, None)

    # ---------------------------------------------- rendezvous / router book

    def add_rendezvous(self, peer_id: PeerID | str, address: str) -> None:
        """Record a rendez-vous peer this peer is connected to."""
        urn = peer_id.to_urn() if isinstance(peer_id, PeerID) else peer_id
        self._rendezvous[urn] = address
        self.learn_address(urn, address)

    def remove_rendezvous(self, peer_id: PeerID | str) -> None:
        """Drop a rendez-vous connection."""
        urn = peer_id.to_urn() if isinstance(peer_id, PeerID) else peer_id
        self._rendezvous.pop(urn, None)

    def rendezvous_connections(self) -> Dict[str, str]:
        """The rendez-vous peers this peer is connected to (URN -> address)."""
        return dict(self._rendezvous)

    def add_client(self, peer_id: PeerID | str, address: str) -> None:
        """Record a client peer connected to this rendez-vous."""
        urn = peer_id.to_urn() if isinstance(peer_id, PeerID) else peer_id
        self._clients[urn] = address
        self.learn_address(urn, address)

    def remove_client(self, peer_id: PeerID | str) -> None:
        """Drop a connected client."""
        urn = peer_id.to_urn() if isinstance(peer_id, PeerID) else peer_id
        self._clients.pop(urn, None)

    def client_connections(self) -> Dict[str, str]:
        """The clients connected to this rendez-vous (URN -> address)."""
        return dict(self._clients)

    def add_router(self, peer_id: PeerID | str, address: str) -> None:
        """Record a router peer usable for relayed delivery."""
        urn = peer_id.to_urn() if isinstance(peer_id, PeerID) else peer_id
        self._routers[urn] = address
        self.learn_address(urn, address)

    def router_addresses(self) -> List[str]:
        """Known router addresses, in insertion order."""
        return list(self._routers.values())

    # ----------------------------------------------------------------- send

    def send(
        self,
        dest_peer: PeerID,
        message: Message,
        service: str,
        param: str = "",
        *,
        ttl: int = DEFAULT_PROPAGATE_TTL,
    ) -> bool:
        """Send a message to one peer for the given service.

        Tries a direct transport first (TCP then HTTP); if neither endpoint
        can reach the other directly, relays through a known router peer
        (the Endpoint Routing Protocol).  Returns True when the envelope was
        handed to the network, False when no route exists.
        """
        envelope = self._make_envelope(
            dest_peer.to_urn(), message, service, param, propagate=False, ttl=ttl
        )
        return self._dispatch_unicast(envelope)

    def send_to_address(
        self,
        address: str,
        message: Message,
        service: str,
        param: str = "",
        *,
        ttl: int = DEFAULT_PROPAGATE_TTL,
    ) -> bool:
        """Send a message to whatever peer answers at a known network address.

        Used during bootstrap, before the destination's :class:`PeerID` is
        known -- typically the first lease request a peer sends to a
        configured rendez-vous address.  Returns True when the envelope was
        handed to the network.
        """
        envelope = self._make_envelope(ANY_PEER, message, service, param, propagate=False, ttl=ttl)
        if address == self.node.address:
            self._deliver_local(envelope)
            return True
        return self._send_packet(address, envelope)

    def propagate(
        self,
        message: Message,
        service: str,
        param: str = "",
        *,
        ttl: int = DEFAULT_PROPAGATE_TTL,
    ) -> int:
        """Broadcast a message to every reachable peer for the given service.

        Propagation combines IP multicast on the local segment with unicast
        re-propagation through connected rendez-vous peers; duplicate
        envelopes are suppressed by id on every hop.  Returns the number of
        outbound sends performed.
        """
        envelope = self._make_envelope(
            PROPAGATE_DESTINATION, message, service, param, propagate=True, ttl=ttl
        )
        # Mark our own envelope as seen so a multicast echo is not re-handled.
        self._seen.seen(envelope.envelope_id)
        return self._dispatch_propagate(envelope, exclude_address=None)

    def _make_envelope(
        self,
        dst_peer: str,
        message: Message,
        service: str,
        param: str,
        *,
        propagate: bool,
        ttl: int,
    ) -> EndpointEnvelope:
        return EndpointEnvelope(
            src_peer=self.peer.peer_id.to_urn(),
            src_address=self.node.address,
            dst_peer=dst_peer,
            service=service,
            param=param,
            envelope_id=f"{self.peer.peer_id.to_urn()}/{next(_envelope_counter)}",
            ttl=ttl,
            propagate=propagate,
            body=message.to_bytes(),
        )

    # --------------------------------------------------------- unicast path

    def _dispatch_unicast(self, envelope: EndpointEnvelope) -> bool:
        if envelope.dst_peer == self.peer.peer_id.to_urn():
            # Loopback: deliver locally without touching the network.
            self._deliver_local(envelope)
            return True
        address = self._address_book.get(envelope.dst_peer)
        if address is not None and self._send_packet(address, envelope):
            return True
        return self._relay_through_router(envelope)

    def _send_packet(self, address: str, envelope: EndpointEnvelope) -> bool:
        """Try to send directly to ``address`` over TCP, then HTTP."""
        network = self.node.network
        if network is None:
            return False
        for kind in (TransportKind.TCP, TransportKind.HTTP):
            if not network.reachable(self.node.address, address, kind):
                continue
            packet = Packet(
                source=self.node.address,
                destination=address,
                payload=envelope.to_bytes(),
                protocol="jxta",
                transport=kind.value,
                ttl=envelope.ttl,
            )
            try:
                self.node.send(packet)
            except (NoRouteError, NetworkError):
                continue
            self.metrics.counter("endpoint_sent").increment()
            return True
        # No transport got the packet out: count the failure instead of
        # letting it vanish (the network counts routed-but-rejected packets;
        # this covers the pre-flight reachability misses).
        self.metrics.counter("endpoint_unroutable").increment()
        network.metrics.counter("packets_no_route").increment()
        return False

    def _relay_through_router(self, envelope: EndpointEnvelope) -> bool:
        """Endpoint Routing Protocol: hand the envelope to a router peer."""
        if envelope.ttl <= 0:
            self.metrics.counter("endpoint_ttl_expired").increment()
            return False
        relayed = EndpointEnvelope(
            src_peer=envelope.src_peer,
            src_address=envelope.src_address,
            dst_peer=envelope.dst_peer,
            service=envelope.service,
            param=envelope.param,
            envelope_id=envelope.envelope_id,
            ttl=envelope.ttl - 1,
            propagate=False,
            hops=[*envelope.hops, self.peer.peer_id.to_urn()],
            body=envelope.body,
        )
        for address in self._router_candidates():
            if address == self.node.address:
                continue
            if self._send_packet(address, relayed):
                self.metrics.counter("endpoint_relayed").increment()
                return True
        self.metrics.counter("endpoint_no_route").increment()
        return False

    def _router_candidates(self) -> List[str]:
        """Router peers first, then rendez-vous peers (which also route)."""
        candidates = list(self._routers.values())
        candidates.extend(a for a in self._rendezvous.values() if a not in candidates)
        return candidates

    # -------------------------------------------------------- propagate path

    def _dispatch_propagate(
        self, envelope: EndpointEnvelope, *, exclude_address: Optional[str]
    ) -> int:
        sends = 0
        network = self.node.network
        if network is None:
            return 0
        # 1. IP multicast on the local segment (if we have the interface).
        if self.node.supports(TransportKind.MULTICAST):
            packet = Packet(
                source=self.node.address,
                destination=Packet.MULTICAST_ADDRESS,
                payload=envelope.to_bytes(),
                protocol="jxta",
                transport=TransportKind.MULTICAST.value,
                ttl=envelope.ttl,
            )
            try:
                self.node.send(packet)
                sends += 1
            except NetworkError:
                pass
        # 2. Unicast to connected rendez-vous peers (and, when we are the
        #    rendez-vous, to our connected clients).
        targets: Dict[str, str] = {}
        targets.update(self._rendezvous)
        targets.update(self._clients)
        for urn, address in targets.items():
            if address in (self.node.address, exclude_address):
                continue
            if self._send_packet(address, envelope):
                sends += 1
        self.metrics.counter("endpoint_propagated").increment(sends if sends else 0)
        return sends

    # --------------------------------------------------------------- receive

    def _on_packet(self, packet: Packet) -> None:
        try:
            envelope = EndpointEnvelope.from_bytes(packet.payload)
        except Exception:  # malformed payloads are counted and dropped
            self.metrics.counter("endpoint_malformed").increment()
            return
        # Refresh the sender's address from live traffic.
        self.learn_address(envelope.src_peer, envelope.src_address)
        if envelope.propagate:
            self._receive_propagated(envelope)
        else:
            self._receive_unicast(envelope)

    def _receive_unicast(self, envelope: EndpointEnvelope) -> None:
        my_urn = self.peer.peer_id.to_urn()
        if envelope.dst_peer in (my_urn, ANY_PEER):
            self._deliver_local(envelope)
            return
        # Not for us: we are acting as a relay (router/rendez-vous peer).
        if not (self.peer.config.router or self.peer.config.rendezvous):
            self.metrics.counter("endpoint_misdelivered").increment()
            return
        if envelope.ttl <= 0:
            self.metrics.counter("endpoint_ttl_expired").increment()
            return
        forwarded = EndpointEnvelope(
            src_peer=envelope.src_peer,
            src_address=envelope.src_address,
            dst_peer=envelope.dst_peer,
            service=envelope.service,
            param=envelope.param,
            envelope_id=envelope.envelope_id,
            ttl=envelope.ttl - 1,
            propagate=False,
            hops=[*envelope.hops, my_urn],
            body=envelope.body,
        )
        address = self._address_book.get(envelope.dst_peer)
        if address is not None and self._send_packet(address, forwarded):
            self.metrics.counter("endpoint_forwarded").increment()
            return
        # Last resort: try another router that is not already on the path.
        for candidate in self._router_candidates():
            if candidate in (self.node.address, envelope.src_address):
                continue
            if self._send_packet(candidate, forwarded):
                self.metrics.counter("endpoint_forwarded").increment()
                return
        self.metrics.counter("endpoint_undeliverable").increment()

    def _receive_propagated(self, envelope: EndpointEnvelope) -> None:
        if self._seen.seen(envelope.envelope_id):
            self.metrics.counter("endpoint_duplicate_suppressed").increment()
            return
        self._deliver_local(envelope)
        # Rendez-vous peers re-propagate towards their other clients/rdvs.
        if (self.peer.config.rendezvous or self.peer.config.router) and envelope.ttl > 0:
            forwarded = EndpointEnvelope(
                src_peer=envelope.src_peer,
                src_address=envelope.src_address,
                dst_peer=envelope.dst_peer,
                service=envelope.service,
                param=envelope.param,
                envelope_id=envelope.envelope_id,
                ttl=envelope.ttl - 1,
                propagate=True,
                hops=[*envelope.hops, self.peer.peer_id.to_urn()],
                body=envelope.body,
            )
            self._dispatch_propagate(forwarded, exclude_address=envelope.src_address)

    def _deliver_local(self, envelope: EndpointEnvelope) -> None:
        listener = self._listeners.get((envelope.service, envelope.param))
        if listener is None:
            listener = self._listeners.get((envelope.service, ""))
        if listener is None:
            self.metrics.counter("endpoint_unhandled").increment()
            return
        self.metrics.counter("endpoint_delivered").increment()
        try:
            listener(envelope, envelope.message())
        except Exception:
            # A misbehaving service must not take the whole endpoint down.
            self.metrics.counter("endpoint_listener_errors").increment()


__all__ = [
    "DEFAULT_PROPAGATE_TTL",
    "EndpointEnvelope",
    "EndpointListener",
    "EndpointService",
    "PROPAGATE_DESTINATION",
]
