"""The ``"SHARDED+JXTA"`` composite binding: sharded bus + JXTA wire.

The paper's layering claim (Section 4) is that TPS is a thin typed layer
over *any* substrate.  This module takes it one step further: a binding
whose substrate is itself two bindings --

* an in-process :class:`~repro.core.sharded_engine.ShardedLocalBus` leg for
  intra-peer traffic (synchronous, lock-free snapshot delivery, optionally
  content-keyed so one hot hierarchy spreads across shards), and
* a :class:`~repro.core.jxta_engine.JxtaTPSEngine` wire leg that fans every
  publication out over the simulated JXTA substrate to remote peers.

The two legs complement each other exactly: the JXTA wire never delivers to
the publishing peer itself (``resolved_peers`` excludes self), so same-peer
interfaces would be deaf to each other over pure JXTA; the local bus covers
precisely that gap.  To keep delivery exactly-once even when an application
shares one :class:`ShardedLocalBus` across peers, every outgoing wire
message is tagged with the bus's process-unique ``bus_id`` (via the
:meth:`~repro.core.jxta_engine.JxtaTPSEngine._decorate_message` hook) and
the wire leg drops incoming messages carrying its own tag: whatever the
local bus already delivered never arrives twice.

Threading model (the PR 4 snapshot/locking design, reused): the local leg is
fully thread-safe -- delivery reads immutable route-row and handler
snapshots lock-free, and the composite's bridge handle flips under its own
lock so concurrent subscribe/unsubscribe churn opens and closes the wire
bridge exactly once.  The wire leg inherits the JXTA engine's single-thread
affinity guard: it runs on the simulated network's event loop, and the
composite routes every wire-touching call (publish, bridge open/close,
teardown) through the owning thread's call stack, so cross-thread misuse
surfaces as the wire leg's clear :class:`PSException` rather than corrupted
network state.

Binding parameters: the full ``"SHARDED"`` schema (``shards``,
``partition``, ``content_key``, ``placement``, ``virtual_nodes``) plus the
composite-only membership knobs (``membership``, ``heartbeat_interval``,
``suspect_timeout``, ``confirm_timeout``).  Registry-built buses are scoped
**per peer** -- each simulated peer models one process, so its composite
interfaces share a bus with each other but never with another peer's; remote
traffic goes over the wire, exactly as it would between real processes.

Membership (PR 7): with ``membership=True`` the peer runs one shared
:class:`~repro.net.membership.MembershipMonitor` (first engine to enable it
fixes the timing -- later engines on the same peer reuse it).  Each publish
syncs the wire leg's resolved peers into the monitor's watch list, and the
monitor's mutual-discovery heartbeats spread the watching to subscribe-only
peers from there.  When the detector *confirms* a peer dead, the composite
closes that peer's wire leg: every reliable delivery still pending towards
it is failed immediately through :meth:`WireService.fail_target` (reported
via the PR 6 ``delivery_failure_handler`` path instead of retrying the full
backoff ladder) and the peer is dropped from the pipe binding tables so new
publishes stop targeting it.  The detector keeps *probing* the dead peer,
so a rejoin flips it back to ``alive`` and the next resolve re-records it.
Enable membership on every participating peer -- heartbeats are mutual, and
a peer that never heartbeats back is (correctly) convicted.
"""

from __future__ import annotations

import dataclasses
import os.path
import threading
import weakref
from typing import Any, Dict, Iterable, List, Optional

from repro.core.bindings import BindingParam, BindingRequest, register_binding
from repro.core.exceptions import PSException
from repro.core.history import DEFAULT_HISTORY_SIZE
from repro.core.interface import PublishReceipt, Subscription
from repro.core.jxta_engine import JxtaTPSEngine, TPSConfig
from repro.core.local_engine import LocalTPSEngine
from repro.core.sharded_engine import (
    SHARDED_BINDING_PARAMS,
    ShardedLocalBus,
    request_bus,
    reset_param_buses,
)
from repro.core.type_registry import Criteria
from repro.jxta.ids import PeerID
from repro.jxta.message import Message
from repro.jxta.peer import Peer
from repro.net.membership import MembershipConfig, MembershipMonitor
from repro.serialization.object_codec import ObjectCodec

#: Message element carrying the publishing bus's id (same-bus echo filter).
TPS_ORIGIN_ELEMENT = "TPSOrigin"

#: One failure detector per peer (a peer models a process; its composite
#: interfaces share one view of who is alive).  Held weakly so caching a
#: monitor never pins a peer -- and through it a simulated network.
_MONITORS: "weakref.WeakKeyDictionary[Peer, MembershipMonitor]" = (
    weakref.WeakKeyDictionary()
)
_MONITORS_LOCK = threading.Lock()

#: The membership timing parameter names (floats, virtual seconds).
_MEMBERSHIP_TIMING_PARAMS = (
    "heartbeat_interval",
    "suspect_timeout",
    "confirm_timeout",
)


def _monitor_for(peer: Peer, timing: Dict[str, float]) -> MembershipMonitor:
    """The peer's shared failure detector, created on first request.

    First configuration wins: the monitor is one per peer, so a second
    engine asking for different timing silently reuses the existing one
    (the alternative -- two detectors with two clocks disagreeing about the
    same peers -- is strictly worse).
    """
    with _MONITORS_LOCK:
        monitor = _MONITORS.get(peer)
        if monitor is None:
            try:
                monitor = MembershipMonitor(peer, MembershipConfig(**timing))
            except ValueError as error:
                raise PSException(
                    f"invalid membership timing for the SHARDED+JXTA binding: {error}"
                ) from error
            _MONITORS[peer] = monitor
        return monitor


def _positive_seconds(value: Any) -> Optional[str]:
    if isinstance(value, bool) or value <= 0:
        return f"must be a positive number of virtual seconds, got {value!r}"
    return None


#: The composite's parameter schema: everything SHARDED takes, plus the
#: membership failure-detector knobs (which need a peer, hence live here).
COMPOSITE_BINDING_PARAMS = SHARDED_BINDING_PARAMS + (
    BindingParam(
        "membership",
        (bool,),
        "run a heartbeat failure detector on this peer",
        default=False,
    ),
    BindingParam(
        "heartbeat_interval",
        (int, float),
        "virtual seconds between heartbeats (membership=True)",
        _positive_seconds,
        default=MembershipConfig.heartbeat_interval,
    ),
    BindingParam(
        "suspect_timeout",
        (int, float),
        "silence before a peer turns SUSPECT (membership=True)",
        _positive_seconds,
        default=MembershipConfig.suspect_timeout,
    ),
    BindingParam(
        "confirm_timeout",
        (int, float),
        "further silence before SUSPECT is confirmed DEAD (membership=True)",
        _positive_seconds,
        default=MembershipConfig.confirm_timeout,
    ),
)


class _CompositeWireLeg(JxtaTPSEngine):
    """The composite's JXTA leg: tags outgoing messages, drops own echoes."""

    def __init__(self, origin: str, *args: Any, **kwargs: Any) -> None:
        self._origin = origin
        super().__init__(*args, **kwargs)

    def _decorate_message(self, message: Message) -> None:
        message.add(TPS_ORIGIN_ELEMENT, self._origin)

    def _on_wire_message(self, message: Message, source: PeerID) -> None:
        if message.get_text(TPS_ORIGIN_ELEMENT) == self._origin:
            # Published through our own local bus: the sharded leg already
            # delivered it to every same-bus subscriber.
            self.peer.metrics.counter("tps_same_bus_filtered").increment()
            return
        super()._on_wire_message(message, source)


class ShardedJxtaTPSEngine(LocalTPSEngine):
    """The ``"SHARDED+JXTA"`` composite TPS interface.

    Subclasses :class:`LocalTPSEngine` (the sharded leg *is* a local engine
    on a :class:`ShardedLocalBus`) and adds a wire leg plus the bridge that
    feeds remote events into this interface's own subscriber manager.  The
    bridge is lazy: it subscribes to the wire leg when this interface gains
    its first subscription and cancels when the last one goes, so an
    unsubscribed composite -- like every other binding -- receives nothing
    ("after this call, no event is received anymore").
    """

    def __init__(
        self,
        event_type: type,
        peer: Peer,
        *,
        bus: ShardedLocalBus,
        criteria: Optional[Criteria] = None,
        codec: Optional[ObjectCodec] = None,
        config: Optional[TPSConfig] = None,
        membership: Optional[MembershipMonitor] = None,
        history: str = "ring",
        history_size: int = DEFAULT_HISTORY_SIZE,
        history_path: Optional[str] = None,
    ) -> None:
        super().__init__(
            event_type,
            bus=bus,
            criteria=criteria,
            codec=codec,
            history=history,
            history_size=history_size,
            history_path=history_path,
        )
        #: Serialises bridge open/close against subscription churn.
        self._bridge_lock = threading.Lock()
        self._bridge_handle: Optional[Any] = None
        self._membership = membership
        wire_config = config or TPSConfig()
        if wire_config.history == "log" and wire_config.history_path:
            # Both legs may record durable history: keep the wire leg's
            # segment files in their own subdirectory so the composite's
            # local stores and the wire stores never share a file.
            wire_config = dataclasses.replace(
                wire_config,
                history_path=os.path.join(wire_config.history_path, "wire"),
            )
        try:
            self._wire = _CompositeWireLeg(
                bus.bus_id,
                event_type,
                peer,
                criteria=criteria,
                codec=codec,
                config=wire_config,
            )
        except BaseException:
            # The local leg already attached to the bus; don't leak it.
            self.bus.detach(self)
            raise
        if membership is not None:
            membership.add_listener(self._on_membership_event)
        # Crash containment covers *this* interface's subscribers (the wire
        # leg's bridge subscription must never be quarantined -- it is the
        # composite's only remote inlet), so the breaker policy is installed
        # on the composite's own manager, on the wire leg's virtual clock.
        wire_config = self._wire.config
        if wire_config.breaker_threshold > 0:
            self.subscriber_manager.set_breaker_policy(
                wire_config.breaker_threshold,
                wire_config.breaker_cooldown,
                clock=lambda: self._wire.peer.now,
                listener=self._wire._on_breaker_transition,
            )

    # ------------------------------------------------------------ properties

    @property
    def wire(self) -> JxtaTPSEngine:
        """The JXTA wire leg (read-only introspection)."""
        return self._wire

    @property
    def ready(self) -> bool:
        """Whether the wire leg can publish (an advertisement is attached)."""
        return self._wire.ready

    @property
    def attachment_count(self) -> int:
        """Number of advertisements the wire leg is attached to."""
        return self._wire.attachment_count

    @property
    def membership(self) -> Optional[MembershipMonitor]:
        """The peer's shared failure detector (None when membership is off)."""
        return self._membership

    # ------------------------------------------------------------ membership

    def _sync_membership_watches(self) -> None:
        """Put every currently resolved wire target under the detector's watch.

        Runs on each publish (the moment resolved peers matter); watching is
        idempotent, and the monitor's mutual discovery spreads it to
        subscribe-only peers that never publish themselves.
        """
        monitor = self._membership
        if monitor is None:
            return
        for attachment in self._wire.manager.attachments:
            output_pipe = attachment.output_pipe
            if output_pipe is None:
                continue
            for peer_id in output_pipe.pipe.resolved_peers():
                monitor.watch(peer_id)

    def _on_membership_event(self, event: str, urn: str) -> None:
        """Close the wire leg towards a peer the detector confirmed dead.

        Pending reliable deliveries to the departed peer are failed at once
        (each surfaces through ``delivery_failure_handler`` exactly like a
        retry-exhausted delivery) and the peer leaves the pipe binding
        tables so new publishes stop targeting it.  The monitor keeps
        probing the peer; on ``recover`` the next binding resolve re-records
        the peer as a target, and this engine broadcasts one catch-up
        request (see :meth:`JxtaTPSEngine.request_history
        <repro.core.jxta_engine.JxtaTPSEngine.request_history>`) so events
        published while the peer was convicted are replayed exactly-once.
        """
        if event == "recover":
            # A peer the detector convicted came back: ask the group to
            # replay whatever retained sent history we missed while the
            # wire towards it was closed (receivers' duplicate filtering
            # keeps the catch-up exactly-once).
            try:
                self._wire.request_history()
            except PSException:
                # Not attached/resolved yet; the recovered peer's own
                # publishes will still reach us through normal delivery.
                pass
            return
        if event != "confirm":
            return
        for attachment in self._wire.manager.attachments:
            wire_service = attachment.finder.wire_service
            if wire_service is None:
                continue
            wire_service.fail_target(urn)
            wire_service.group.pipe_service.forget_peer(urn)

    # ------------------------------------------------------------ publishing

    def publish(self, event: Any) -> PublishReceipt:
        """Publish locally through the sharded bus *and* remotely over JXTA.

        The placement key is resolved first, so a content-keyed event
        missing its declared attribute fails before anything is sent; the
        wire send runs next (it can refuse with ``NotInitializedError``
        before the network settles), and local shard delivery last -- via
        the bus's own epoch-registered publish path, so a concurrent
        ``add_shard``/``remove_shard`` either waits this delivery out or
        this delivery routes through one consistent placement snapshot
        (never a stale pre-computed shard index).  The receipt is the wire
        receipt with the local delivery prepended: one extra "pipe" (the
        bus) and its delivered-count as the first wire receipt entry.
        """
        self._check_open()
        self.registry.check_publishable(event)
        copy = self.registry.decode(self.registry.encode(event))
        self.bus.placement_key(self.registry.advertised_name, copy)
        self._sync_membership_watches()
        wire_receipt = self._wire.publish(event)
        delivered = self.bus.publish(self, copy)
        self._sent.append(event)
        return PublishReceipt(
            cpu_time=wire_receipt.cpu_time,
            completion_time=wire_receipt.completion_time,
            pipes=wire_receipt.pipes + 1,
            wire_receipts=[delivered, *wire_receipt.wire_receipts],
        )

    def publish_many(self, events: Iterable[Any]) -> List[PublishReceipt]:
        """Publish a batch; the wire leg is single-threaded, so loop.

        Validates the whole batch up front (batch atomicity matches the
        other bindings), then publishes serially on the calling thread:
        wire sends must stay on the owning thread, and one interface's
        local batch is one hierarchy whose per-key order a serial loop
        trivially preserves.
        """
        self._check_open()
        batch = list(events)
        for event in batch:
            self.registry.check_publishable(event)
        return [self.publish(event) for event in batch]

    # ----------------------------------------------------------- subscribing

    def _sync_bridge(self) -> None:
        """Open/close the wire bridge to match having subscriptions at all.

        The handle swap is atomic under ``_bridge_lock`` (exactly-once under
        concurrent churn); the wire calls run outside the composite's
        dispatch path, on the caller's thread -- which the wire leg's
        affinity guard requires to be the owning thread.
        """
        with self._bridge_lock:
            if self.subscriber_manager.empty:
                handle, self._bridge_handle = self._bridge_handle, None
                if handle is None:
                    return
                action = "close"
            else:
                if self._bridge_handle is not None:
                    return
                action = "open"
                handle = None
        if action == "close":
            handle.cancel()
        else:
            opened = self._wire.subscribe(self._deliver_remote)
            with self._bridge_lock:
                if self._bridge_handle is None and not self.subscriber_manager.empty:
                    self._bridge_handle = opened
                    opened = None
            if opened is not None:
                # Lost the race (another open won, or everyone unsubscribed
                # meanwhile): retire the redundant wire subscription.
                opened.cancel()

    def _deliver_remote(self, event: Any) -> None:
        """Bridge callback: a remote event reaches this interface's subscribers.

        The wire leg has already duplicate-filtered, type-checked and
        criteria-filtered the event; dispatch through the subscriber
        manager's snapshot applies the pushed-down predicates and routes
        callback errors to the paired handlers, exactly as local delivery
        does.
        """
        self._received.append(event)
        self.subscriber_manager.dispatch(event)

    # Subscription mutations may need to open or close the wire bridge, and
    # the wire leg is single-threaded: checking its thread affinity *before*
    # touching any state makes a cross-thread call fail atomically (clear
    # PSException, nothing half-registered, no bridge handle burned) instead
    # of mutating the local leg and then raising from the wire leg.

    def _add_subscription(self, subscription: Subscription) -> None:
        self._wire._check_thread("subscribe")
        super()._add_subscription(subscription)
        self._sync_bridge()

    def _remove_subscriptions(
        self, callback: Optional[Any] = None, handler: Optional[Any] = None
    ) -> int:
        self._wire._check_thread("unsubscribe")
        removed = super()._remove_subscriptions(callback, handler)
        self._sync_bridge()
        return removed

    def _discard_subscription(self, subscription: Subscription) -> int:
        self._wire._check_thread("subscription cancel")
        removed = super()._discard_subscription(subscription)
        self._sync_bridge()
        return removed

    # ----------------------------------------------------------------- close

    def _do_close(self) -> None:
        """Tear down both legs: local detach first, then the wire engine.

        The wire leg's thread affinity is checked up front so a cross-thread
        close fails before the (irreversible) local detach -- ``close()``'s
        revert-to-open contract then leaves a genuinely still-open interface.
        """
        self._wire._check_thread("close")
        super()._do_close()
        with self._bridge_lock:
            self._bridge_handle = None
        if self._membership is not None:
            # The monitor is the peer's, not this engine's: stop feeding this
            # engine's departed-peer handler but leave the detector running
            # for the peer's other composite interfaces.
            self._membership.remove_listener(self._on_membership_event)
        self._wire.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedJxtaTPSEngine(type={self.registry.interface_name}, "
            f"peer={self._wire.peer.name!r}, shards={len(self.bus.shards)}, "
            f"attachments={self.attachment_count})"
        )


def _sharded_jxta_binding(request: BindingRequest) -> ShardedJxtaTPSEngine:
    """The ``"SHARDED+JXTA"`` binding factory.

    Needs a peer (for the wire leg).  The local leg's bus comes from the
    engine's ``local_bus`` when given (must be a :class:`ShardedLocalBus`),
    else from the binding parameters -- cached per (peer, parameter set), so
    one peer's same-parameter interfaces share a bus and different peers
    never do (a peer models a process).
    """
    if request.peer is None:
        raise PSException(
            "the SHARDED+JXTA binding needs a peer for its wire leg: "
            "construct the engine with TPSEngine(EventType, peer=some_peer)"
        )
    bus = request_bus(request, scope=request.peer)
    timing = {
        name: request.param(name)
        for name in _MEMBERSHIP_TIMING_PARAMS
        if name in request.params
    }
    monitor = None
    if request.param("membership"):
        monitor = _monitor_for(request.peer, timing)
    elif timing:
        raise PSException(
            f"membership timing parameters {sorted(timing)} have no effect "
            "without membership=True; enable the failure detector or drop them"
        )
    history = request.param("history", "ring")
    history_size = request.param("history_size", DEFAULT_HISTORY_SIZE)
    history_path = request.param("history_path", "") or None
    config = request.config
    if any(
        name in request.params
        for name in ("history", "history_size", "history_path")
    ):
        # History binding params configure *both* legs: the constructor
        # keeps the wire leg's durable files apart (a "wire/" subdirectory).
        config = dataclasses.replace(
            config or TPSConfig(),
            history=history,
            history_size=history_size,
            history_path=history_path or "",
        )
    return ShardedJxtaTPSEngine(
        request.event_type,
        request.peer,
        bus=bus,
        criteria=request.criteria,
        codec=request.codec,
        config=config,
        membership=monitor,
        history=history,
        history_size=history_size,
        history_path=history_path,
    )


register_binding(
    "SHARDED+JXTA",
    _sharded_jxta_binding,
    capabilities=(
        "in-process",
        "sharded",
        "elastic",
        "distributed",
        "simulated-network",
        "composite",
        "membership",
    ),
    params=COMPOSITE_BINDING_PARAMS,
    replace=True,
    # The composite resolves its per-peer (scoped) buses through the same
    # registry-built cache as SHARDED; unregistering it must drop that cache
    # for the same stale-spec reason (see reset_param_buses).
    on_unregister=reset_param_buses,
)


__all__ = [
    "COMPOSITE_BINDING_PARAMS",
    "ShardedJxtaTPSEngine",
    "TPS_ORIGIN_ELEMENT",
]
