"""The WIRE service: many-to-many pipes, with an optional reliable mode.

"The best known [services] are the monitoring service, the cms service and
the wire service (responsible for providing many-to-many communication)."
(paper, Section 2)

Both the TPS layer and the paper's hand-written SR-JXTA application sit on
top of the wire service: a publisher creates a wire *output* pipe and every
subscriber creates a wire *input* pipe on the same pipe advertisement; a
message sent on the output pipe is delivered to every bound input pipe.

The wire service is also where the reproduction charges the substrate costs
that shape the paper's figures:

* sending charges a base cost plus a per-resolved-connection cost (this is
  what makes four subscribers roughly three times as expensive as one,
  Figures 18-19);
* receiving charges a base cost plus a per-connected-publisher cost and is
  serialised through a bounded queue (this is what makes the subscriber
  saturate around 6-8 events/second in Figure 20, and drop messages when
  flooded -- the August-2001 JXTA release "was not able to handle
  connections between more than 5 peers sending a lot of messages");
* every cost is perturbed by lognormal noise, giving the large standard
  deviations the paper reports.

The layers above (SR-JXTA, SR-TPS) add their own per-message costs through
``extra_send_cost`` and the input pipes' ``processing_cost``, so the relative
ordering JXTA-WIRE < SR-JXTA <= SR-TPS emerges from the layering itself.

Reliability model (at-least-once + dedup = exactly-once observed)
-----------------------------------------------------------------

An output pipe created with a :class:`WireReliability` runs an at-least-once
protocol per resolved target, on top of a network that may drop, duplicate,
reorder or delay packets (see :mod:`repro.net.faults`):

* **sender**: each target gets its own copy of the message stamped with an
  ack request, a per-(pipe, target) sequence number and a channel id unique
  to the output pipe.  Unacked copies are retransmitted on a capped
  exponential backoff schedule (``ack_timeout * backoff**(attempt-1)``,
  capped at ``backoff_cap``, jittered), driven entirely off the virtual
  clock.  After ``max_attempts`` the delivery is declared failed: the
  ``wire_delivery_failed`` counter is bumped, the
  :class:`DeliveryTracker` on the :class:`SendReceipt` records the terminal
  state and the pipe's failure listeners fire with a
  :class:`DeliveryFailure` -- a give-up is *reported*, never silent.
* **receiver**: wire ids are deduplicated with a bounded LRU
  :class:`~repro.jxta.ids.BoundedIdSet`, so retransmits and network
  duplicates collapse to one observed delivery; a duplicate is re-acked
  (the previous ack may have been the lost packet).  Sequenced messages
  run through a per-channel hold-back buffer that releases them in sequence
  order, restoring per-source FIFO under reordering.  A sequence gap that
  does not fill within ``gap_timeout`` (e.g. the sender terminally gave up
  on that message) is abandoned -- counted in
  ``wire_order_gaps_abandoned`` -- and delivery resumes at the next
  buffered sequence so one lost message cannot wedge the channel.
* **acks happen after acceptance**: a receiver only acks a message it has
  accepted (enqueued or held back); a message bounced off the full receive
  queue is *not* acked, so sender retransmission doubles as flow control.

The result is the exactly-once-observed, per-source-FIFO contract pinned by
``tests/test_binding_conformance.py``, which the chaos matrix re-runs over a
faulty network.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.jxta.advertisement import PipeAdvertisement
from repro.jxta.endpoint import EndpointEnvelope
from repro.jxta.errors import PipeError
from repro.jxta.ids import BoundedIdSet, PeerID, PipeID
from repro.jxta.message import Message
from repro.jxta.pipes import InputPipe, OutputPipe, PipeKind, PipeMessageListener
from repro.net.simclock import EventHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.peergroup import PeerGroup

_wire_message_counter = itertools.count(1)
_wire_channel_counter = itertools.count(1)

#: Name of the message element carrying the wire-level message id.
WIRE_MSG_ID_ELEMENT = "JxtaWireMsgId"
#: Name of the message element carrying the original wire source peer.
WIRE_SRC_ELEMENT = "JxtaWireSrc"
#: Element marking a message whose delivery must be acknowledged.
WIRE_ACK_REQ_ELEMENT = "JxtaWireAckReq"
#: Element carrying the per-(pipe, target) sequence number (ordered mode).
WIRE_SEQ_ELEMENT = "JxtaWireSeq"
#: Element carrying the sender-side channel id (unique per output pipe).
WIRE_CHANNEL_ELEMENT = "JxtaWireChan"
#: Element of an ack message naming the wire id being acknowledged.
WIRE_ACK_ID_ELEMENT = "JxtaWireAckId"
#: Endpoint param prefix under which a sender listens for acks.
WIRE_ACK_PARAM_PREFIX = "jxta-wire-ack:"


@dataclass(frozen=True)
class WireReliability:
    """Parameters of the at-least-once wire protocol (see module docstring).

    Attributes
    ----------
    ack_timeout:
        Seconds to wait for the first ack before retransmitting.
    max_attempts:
        Total transmission attempts (first send included) before the
        delivery is declared failed.
    backoff:
        Multiplier applied to the retry delay after each attempt.
    backoff_cap:
        Upper bound (seconds) on the retry delay.
    jitter:
        Relative sigma of lognormal noise on each retry delay, decorrelating
        retransmission bursts from concurrent senders.
    ordered:
        Whether to sequence messages per (pipe, target) and restore
        per-source FIFO on the receiver through a hold-back buffer.
    gap_timeout:
        Receiver-side seconds to wait for a sequence gap to fill before
        abandoning it (should exceed the sender's full retry window).
    dedup_capacity:
        Capacity of the receiver's bounded wire-id dedup set.
    """

    ack_timeout: float = 0.25
    max_attempts: int = 6
    backoff: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.2
    ordered: bool = True
    gap_timeout: float = 6.0
    dedup_capacity: int = 4096


@dataclass(frozen=True)
class DeliveryFailure:
    """A terminal "gave up after N attempts" event for one (message, target)."""

    wire_message_id: str
    pipe_urn: str
    target_urn: str
    attempts: int


class DeliveryTracker:
    """Per-target delivery state of one reliable send, exposed on the receipt.

    States progress ``pending`` -> ``acked`` | ``failed`` | ``abandoned``
    (abandoned = the pipe was closed with the delivery still in flight).
    """

    __slots__ = ("wire_message_id", "states", "attempts", "retries")

    def __init__(self, wire_message_id: str, target_urns: List[str]) -> None:
        self.wire_message_id = wire_message_id
        self.states: Dict[str, str] = {urn: "pending" for urn in target_urns}
        self.attempts: Dict[str, int] = {urn: 1 for urn in target_urns}
        self.retries = 0

    def record_retry(self, target_urn: str) -> None:
        """Count one retransmission to ``target_urn``."""
        self.attempts[target_urn] = self.attempts.get(target_urn, 0) + 1
        self.retries += 1

    def mark(self, target_urn: str, state: str) -> None:
        """Move ``target_urn`` to a terminal ``state``."""
        self.states[target_urn] = state

    def _in_state(self, state: str) -> List[str]:
        return [urn for urn, s in self.states.items() if s == state]

    @property
    def pending(self) -> List[str]:
        """Targets still awaiting an ack."""
        return self._in_state("pending")

    @property
    def acked(self) -> List[str]:
        """Targets that acknowledged the message."""
        return self._in_state("acked")

    @property
    def failed(self) -> List[str]:
        """Targets for which delivery terminally failed."""
        return self._in_state("failed")

    @property
    def settled(self) -> bool:
        """Whether every target reached a terminal state."""
        return not self.pending

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeliveryTracker({self.wire_message_id}, acked={len(self.acked)}, "
            f"failed={len(self.failed)}, pending={len(self.pending)}, "
            f"retries={self.retries})"
        )


@dataclass
class SendReceipt:
    """Returned by :meth:`WireOutputPipe.send`.

    Attributes
    ----------
    cpu_time:
        Virtual CPU time charged to the sending peer for this call -- the
        "invocation time" of the paper's Figure 18.
    completion_time:
        Virtual time at which the send call completes (messages hit the
        network at this instant).
    targets:
        Number of resolved connections the message was sent to.
    wire_message_id:
        The wire-level message id stamped on the message.
    tracker:
        Per-target ack/retry state for reliable sends (None otherwise).
        The tracker keeps updating as the simulation advances.
    """

    cpu_time: float
    completion_time: float
    targets: int
    wire_message_id: str
    tracker: Optional[DeliveryTracker] = None


class WireInputPipe(InputPipe):
    """A wire (many-to-many) input pipe; deliveries arrive via the wire service."""


class WireOutputPipe(OutputPipe):
    """A wire (many-to-many) output pipe with cost-accounted sends.

    When constructed with a :class:`WireReliability` the pipe runs the
    at-least-once protocol: each send is tracked per target, retransmitted
    with capped exponential backoff and eventually acked or reported failed
    to the registered failure listeners.
    """

    def __init__(
        self,
        advertisement: PipeAdvertisement,
        wire_service: "WireService",
        *,
        extra_send_cost: float = 0.0,
        reliability: Optional[WireReliability] = None,
    ) -> None:
        super().__init__(advertisement, wire_service.group.pipe_service)
        self._wire = wire_service
        #: Extra virtual CPU charged per send on top of the wire cost,
        #: representing the work done by the layer above (SR-JXTA / SR-TPS).
        self.extra_send_cost = extra_send_cost
        self.reliability = reliability
        #: Called with a :class:`DeliveryFailure` when a reliable delivery
        #: exhausts its attempts.
        self.failure_listeners: List[Callable[[DeliveryFailure], None]] = []
        #: Sender-side channel id; globally unique per output pipe so the
        #: receiver's sequencing state can never collide across pipes.
        self.channel_id = (
            f"{wire_service.peer.peer_id.to_urn()}/c{next(_wire_channel_counter)}"
        )
        self._next_seq: Dict[str, int] = {}
        self.receipts: List[SendReceipt] = []

    def add_failure_listener(self, listener: Callable[[DeliveryFailure], None]) -> None:
        """Register a listener for terminal delivery failures on this pipe."""
        self.failure_listeners.append(listener)

    def next_sequence(self, target_urn: str) -> int:
        """The next per-target sequence number (starts at 1)."""
        value = self._next_seq.get(target_urn, 0) + 1
        self._next_seq[target_urn] = value
        return value

    def send(self, message: Message) -> SendReceipt:  # type: ignore[override]
        """Send a message to every bound input pipe; returns a :class:`SendReceipt`."""
        if self.closed:
            raise PipeError("cannot send on a closed wire output pipe")
        receipt = self._wire.send(self, message, extra_cpu=self.extra_send_cost)
        self.sent_count += 1
        self.receipts.append(receipt)
        return receipt

    def close(self) -> None:
        """Close the pipe and abandon its in-flight reliable deliveries."""
        if self.closed:
            return
        super().close()
        self._wire.abandon_pending(self)


@dataclass
class _PendingDelivery:
    """Sender-side state of one unacked (message, target) pair."""

    wire_id: str
    target: PeerID
    target_urn: str
    message: Message
    pipe: WireOutputPipe
    pipe_urn: str
    reliability: WireReliability
    tracker: DeliveryTracker
    attempts: int = 1
    handle: Optional[EventHandle] = None


class _ChannelState:
    """Receiver-side hold-back state for one sender channel."""

    __slots__ = ("next_seq", "buffer", "gap_handle")

    def __init__(self) -> None:
        self.next_seq = 1
        #: seq -> (pipe_urn, envelope, message) held until the gap fills.
        self.buffer: Dict[int, Tuple[str, EndpointEnvelope, Message]] = {}
        self.gap_handle: Optional[EventHandle] = None


class WireService:
    """Per-group many-to-many message propagation."""

    #: Well-known service constants, as used in the paper's Figure 15
    #: (``WireService.WireName``, ``WireVersion``, ``WireUri``, ``WireCode``,
    #: ``WireSecurity``).
    WireName = "jxta.service.wire"
    WireVersion = "1.0"
    WireUri = "urn:jxta:wire"
    WireCode = "net.jxta.impl.wire.WireService"
    WireSecurity = "none"

    #: Hold-back buffer bound per channel: beyond this many out-of-order
    #: messages the gap is abandoned early to keep memory constant.
    HOLDBACK_LIMIT = 64

    def __init__(self, group: "PeerGroup", *, duplicate_suppression: bool = False) -> None:
        self.group = group
        self.peer = group.peer
        self.cost_model = self.peer.cost_model
        self.noise = self.peer.noise
        #: When True the wire service itself drops messages whose wire id was
        #: already delivered.  The real JXTA-WIRE did *not* do this -- the
        #: paper lists duplicate handling among the functionality the SR
        #: layers add -- so the default is False; ablation benches flip it.
        #: (Reliable-mode messages are always deduplicated: that is part of
        #: the ack/retry protocol, not an application-layer courtesy.)
        self.duplicate_suppression = duplicate_suppression
        #: pipe URN -> wire input pipes opened locally.
        self._inputs: Dict[str, List[WireInputPipe]] = {}
        #: pipe URN -> set of source peer URNs seen (connected publishers).
        self._sources: Dict[str, set] = {}
        self._seen_wire_ids = BoundedIdSet(capacity=4096)
        #: Wire ids of accepted reliable messages (bounded LRU); retransmits
        #: hitting this set are re-acked and dropped.
        self._seen_reliable = BoundedIdSet(capacity=4096)
        #: Receiver-side gap timeout; create_input_pipe overrides it from the
        #: caller's :class:`WireReliability`.
        self.order_gap_timeout = WireReliability.gap_timeout
        self._queue: Deque[Tuple[str, EndpointEnvelope, Message]] = deque()
        self._busy = False
        #: (wire id, target urn) -> in-flight reliable delivery.
        self._pending: Dict[Tuple[str, str], _PendingDelivery] = {}
        #: channel id -> hold-back sequencing state.
        self._channels: Dict[str, _ChannelState] = {}
        #: ack params this service already listens on.
        self._ack_params: set[str] = set()

    # ----------------------------------------------------------- pipe setup

    def create_input_pipe(
        self,
        advertisement: PipeAdvertisement,
        listener: Optional[PipeMessageListener] = None,
        *,
        processing_cost: float = 0.0,
        reliability: Optional[WireReliability] = None,
    ) -> WireInputPipe:
        """Open a wire input pipe: messages sent on this pipe id will be delivered here.

        ``reliability`` tunes the *receiver* side of the protocol (dedup
        capacity, gap timeout); ack/retransmit behaviour is governed by the
        sender's output-pipe reliability.
        """
        pipe = WireInputPipe(
            advertisement,
            self.group.pipe_service,
            listener=listener,
            processing_cost=processing_cost,
        )
        if reliability is not None:
            self._seen_reliable.capacity = reliability.dedup_capacity
            self.order_gap_timeout = reliability.gap_timeout
        urn = advertisement.pipe_id.to_urn()
        if urn not in self._inputs:
            self._inputs[urn] = []
            self.peer.endpoint.register_listener(self.WireName, urn, self._on_wire_envelope)
        self._inputs[urn].append(pipe)
        # Register the binding with the PBP so remote output pipes resolve us,
        # and announce it.
        binding_service = self.group.pipe_service
        binding_service._local.setdefault(urn, [])
        if pipe not in binding_service._local[urn]:
            binding_service._local[urn].append(pipe)
        binding_service._announce(advertisement.pipe_id, bind=True)
        self.peer.metrics.counter("wire_input_pipes").increment()
        return pipe

    def create_output_pipe(
        self,
        advertisement: PipeAdvertisement,
        *,
        extra_send_cost: float = 0.0,
        resolve: bool = True,
        reliability: Optional[WireReliability] = None,
    ) -> WireOutputPipe:
        """Open a wire output pipe (and resolve the current set of bound peers)."""
        pipe = WireOutputPipe(
            advertisement, self, extra_send_cost=extra_send_cost, reliability=reliability
        )
        if reliability is not None:
            ack_param = WIRE_ACK_PARAM_PREFIX + advertisement.pipe_id.to_urn()
            if ack_param not in self._ack_params:
                self._ack_params.add(ack_param)
                self.peer.endpoint.register_listener(
                    self.WireName, ack_param, self._on_ack_envelope
                )
        if resolve:
            self.group.pipe_service.resolve(advertisement.pipe_id)
        self.peer.metrics.counter("wire_output_pipes").increment()
        return pipe

    def close_input_pipe(self, pipe: WireInputPipe) -> None:
        """Close a wire input pipe and drop its binding."""
        urn = pipe.pipe_id.to_urn()
        pipes = self._inputs.get(urn, [])
        if pipe in pipes:
            pipes.remove(pipe)
        if not pipes and urn in self._inputs:
            del self._inputs[urn]
            self.peer.endpoint.unregister_listener(self.WireName, urn)
        pipe.close()

    def input_pipes(self, pipe_id: PipeID) -> List[WireInputPipe]:
        """Wire input pipes this peer has open for ``pipe_id``."""
        return list(self._inputs.get(pipe_id.to_urn(), []))

    def connected_publishers(self, pipe_id: PipeID) -> int:
        """Number of distinct remote publishers seen on ``pipe_id``."""
        return len(self._sources.get(pipe_id.to_urn(), set()))

    # ----------------------------------------------------------------- send

    def send(
        self, pipe: WireOutputPipe, message: Message, *, extra_cpu: float = 0.0
    ) -> SendReceipt:
        """Send ``message`` on ``pipe`` to every resolved bound peer.

        The call charges the sending peer's virtual CPU (base + per-connection
        + serialisation + the caller's ``extra_cpu``), schedules the actual
        network transmissions at the completion instant and returns a
        :class:`SendReceipt` describing the cost.  Reliable pipes additionally
        stamp per-target sequence/ack elements and arm the retry machinery.
        """
        wire_message = message.dup()
        wire_id = f"{self.peer.peer_id.to_urn()}/w{next(_wire_message_counter)}"
        wire_message.add(WIRE_MSG_ID_ELEMENT, wire_id)
        wire_message.add(WIRE_SRC_ELEMENT, self.peer.peer_id.to_urn())
        targets = pipe.resolved_peers()
        size = wire_message.size
        wire_cost = self.noise.jittered(
            self.cost_model.send_cost(len(targets), size), self.cost_model.wire_jitter
        )
        total_cost = wire_cost + extra_cpu
        simulator = self.peer.simulator
        completion = simulator.now + total_cost
        pipe_urn = pipe.pipe_id.to_urn()
        reliability = pipe.reliability
        tracker: Optional[DeliveryTracker] = None
        sequences: Dict[str, int] = {}
        if reliability is not None and targets:
            tracker = DeliveryTracker(wire_id, [t.to_urn() for t in targets])
            if reliability.ordered:
                # Sequence numbers are claimed *now*, synchronously, in
                # publish-call order: the transmit event below fires at a
                # jittered CPU-completion instant, so stamping there would
                # scramble the sequences of same-instant publishes and break
                # the per-source ordering the channel exists to provide.
                sequences = {
                    target.to_urn(): pipe.next_sequence(target.to_urn())
                    for target in targets
                }

        def _transmit() -> None:
            if targets:
                for target in targets:
                    if reliability is not None:
                        self._send_reliable(
                            pipe, target, wire_message, pipe_urn, wire_id,
                            tracker, reliability, sequences.get(target.to_urn()),
                        )
                    else:
                        self.peer.endpoint.send(
                            target, wire_message, self.WireName, pipe_urn
                        )
            else:
                # No resolved bindings yet: fall back to propagation so early
                # messages still have a chance to reach late-resolving peers.
                # Propagated copies carry no ack/seq elements -- they take the
                # legacy unreliable path on the receiver.
                self.peer.endpoint.propagate(wire_message, self.WireName, pipe_urn)

        simulator.schedule(total_cost, _transmit, label=f"wire-send:{self.peer.name}")
        self.peer.metrics.timer("wire_send_cpu").observe(total_cost)
        self.peer.metrics.counter("wire_messages_sent").increment()
        self.peer.metrics.series("wire_sent").record(completion)
        return SendReceipt(
            cpu_time=total_cost,
            completion_time=completion,
            targets=len(targets),
            wire_message_id=wire_id,
            tracker=tracker,
        )

    def _send_reliable(
        self,
        pipe: WireOutputPipe,
        target: PeerID,
        wire_message: Message,
        pipe_urn: str,
        wire_id: str,
        tracker: DeliveryTracker,
        reliability: WireReliability,
        sequence: Optional[int] = None,
    ) -> None:
        """First transmission of one per-target copy; arms the retry timer."""
        target_urn = target.to_urn()
        copy = wire_message.dup()
        copy.add(WIRE_ACK_REQ_ELEMENT, "1")
        if reliability.ordered and sequence is not None:
            copy.add(WIRE_CHANNEL_ELEMENT, pipe.channel_id)
            copy.add(WIRE_SEQ_ELEMENT, str(sequence))
        pending = _PendingDelivery(
            wire_id=wire_id,
            target=target,
            target_urn=target_urn,
            message=copy,
            pipe=pipe,
            pipe_urn=pipe_urn,
            reliability=reliability,
            tracker=tracker,
        )
        self._pending[(wire_id, target_urn)] = pending
        self.peer.endpoint.send(target, copy, self.WireName, pipe_urn)
        self._arm_retry(pending)

    def _arm_retry(self, pending: _PendingDelivery) -> None:
        reliability = pending.reliability
        delay = min(
            reliability.backoff_cap,
            reliability.ack_timeout * reliability.backoff ** (pending.attempts - 1),
        )
        if reliability.jitter > 0:
            delay = self.noise.jittered(delay, reliability.jitter)
        pending.handle = self.peer.simulator.schedule(
            delay,
            lambda: self._retry(pending),
            label=f"wire-retry:{self.peer.name}",
        )

    def _retry(self, pending: _PendingDelivery) -> None:
        key = (pending.wire_id, pending.target_urn)
        if self._pending.get(key) is not pending:
            return  # acked or abandoned while the timer was in flight
        if pending.pipe.closed:
            del self._pending[key]
            pending.tracker.mark(pending.target_urn, "abandoned")
            return
        if pending.attempts >= pending.reliability.max_attempts:
            del self._pending[key]
            pending.tracker.mark(pending.target_urn, "failed")
            self.peer.metrics.counter("wire_delivery_failed").increment()
            failure = DeliveryFailure(
                wire_message_id=pending.wire_id,
                pipe_urn=pending.pipe_urn,
                target_urn=pending.target_urn,
                attempts=pending.attempts,
            )
            for listener in list(pending.pipe.failure_listeners):
                try:
                    listener(failure)
                except Exception:  # noqa: BLE001 - listeners must not break the service
                    self.peer.metrics.counter("wire_failure_listener_errors").increment()
            return
        pending.attempts += 1
        pending.tracker.record_retry(pending.target_urn)
        self.peer.metrics.counter("wire_retries").increment()
        self.peer.endpoint.send(
            pending.target, pending.message, self.WireName, pending.pipe_urn
        )
        self._arm_retry(pending)

    def abandon_pending(self, pipe: WireOutputPipe) -> None:
        """Cancel the in-flight reliable deliveries of a closing pipe."""
        for key, pending in list(self._pending.items()):
            if pending.pipe is pipe:
                if pending.handle is not None:
                    pending.handle.cancel()
                pending.tracker.mark(pending.target_urn, "abandoned")
                del self._pending[key]

    def fail_target(self, target_urn: str) -> int:
        """Terminally fail every in-flight reliable delivery towards one peer.

        Called by the membership integration when a peer is *confirmed*
        dead: instead of letting each pending message burn through its
        remaining retry budget against a corpse, the deliveries fail now,
        once, through the exact same reported path a retry exhaustion takes
        (``wire_delivery_failed`` counter + pipe failure listeners) -- a
        departed peer ends in a report, never in silent queue growth.
        Returns the number of deliveries failed.
        """
        failed = 0
        for key, pending in list(self._pending.items()):
            if pending.target_urn != target_urn:
                continue
            if pending.handle is not None:
                pending.handle.cancel()
            del self._pending[key]
            pending.tracker.mark(pending.target_urn, "failed")
            self.peer.metrics.counter("wire_delivery_failed").increment()
            self.peer.metrics.counter("wire_peer_departed").increment()
            failure = DeliveryFailure(
                wire_message_id=pending.wire_id,
                pipe_urn=pending.pipe_urn,
                target_urn=pending.target_urn,
                attempts=pending.attempts,
            )
            for listener in list(pending.pipe.failure_listeners):
                try:
                    listener(failure)
                except Exception:  # noqa: BLE001 - listeners must not break the service
                    self.peer.metrics.counter("wire_failure_listener_errors").increment()
            failed += 1
        return failed

    # ----------------------------------------------------------------- acks

    def _on_ack_envelope(self, envelope: EndpointEnvelope, message: Message) -> None:
        wire_id = message.get_text(WIRE_ACK_ID_ELEMENT)
        pending = self._pending.pop((wire_id, envelope.src_peer), None)
        if pending is None:
            # Duplicate ack, ack of an abandoned delivery, or chaos echo.
            self.peer.metrics.counter("wire_acks_ignored").increment()
            return
        if pending.handle is not None:
            pending.handle.cancel()
        pending.tracker.mark(pending.target_urn, "acked")
        self.peer.metrics.counter("wire_acks_received").increment()

    def _send_ack(self, envelope: EndpointEnvelope, message: Message, wire_id: str) -> None:
        """Acknowledge an accepted reliable message back to its wire source.

        Acks are tiny control messages; they charge network time but no wire
        CPU cost, like the protocol chatter of the other JXTA services.
        """
        source_urn = message.get_text(WIRE_SRC_ELEMENT) or envelope.src_peer
        ack = Message()
        ack.add(WIRE_ACK_ID_ELEMENT, wire_id)
        self.peer.endpoint.send(
            PeerID.from_urn(source_urn),
            ack,
            self.WireName,
            WIRE_ACK_PARAM_PREFIX + envelope.param,
        )
        self.peer.metrics.counter("wire_acks_sent").increment()

    # -------------------------------------------------------------- receive

    def _on_wire_envelope(self, envelope: EndpointEnvelope, message: Message) -> None:
        pipe_urn = envelope.param
        if pipe_urn not in self._inputs:
            self.peer.metrics.counter("wire_unbound_deliveries").increment()
            return
        wire_id = message.get_text(WIRE_MSG_ID_ELEMENT)
        if wire_id and message.has(WIRE_ACK_REQ_ELEMENT):
            self._receive_reliable(pipe_urn, envelope, message, wire_id)
            return
        if self.duplicate_suppression and wire_id:
            if self._seen_wire_ids.seen(wire_id):
                self.peer.metrics.counter("wire_duplicates_suppressed").increment()
                return
        self._enqueue(pipe_urn, envelope, message)

    def _receive_reliable(
        self, pipe_urn: str, envelope: EndpointEnvelope, message: Message, wire_id: str
    ) -> None:
        if wire_id in self._seen_reliable:
            # Retransmit (or network duplicate) of an already-accepted
            # message: the previous ack may have been lost, so re-ack.
            self._send_ack(envelope, message, wire_id)
            self.peer.metrics.counter("wire_duplicates_suppressed").increment()
            return
        channel = message.get_text(WIRE_CHANNEL_ELEMENT)
        seq_text = message.get_text(WIRE_SEQ_ELEMENT)
        if channel and seq_text:
            self._receive_ordered(
                pipe_urn, envelope, message, wire_id, channel, int(seq_text)
            )
            return
        # Unordered reliable message: accept, then ack.
        if not self._enqueue(pipe_urn, envelope, message):
            return  # queue full -> no ack -> the sender's retry is our flow control
        self._seen_reliable.add(wire_id)
        self._send_ack(envelope, message, wire_id)

    def _receive_ordered(
        self,
        pipe_urn: str,
        envelope: EndpointEnvelope,
        message: Message,
        wire_id: str,
        channel: str,
        seq: int,
    ) -> None:
        state = self._channels.setdefault(channel, _ChannelState())
        if seq < state.next_seq:
            # A retransmit of a sequence this channel already released
            # (typically after an abandoned gap): ack so the sender stops,
            # but do not deliver twice.
            self._seen_reliable.add(wire_id)
            self._send_ack(envelope, message, wire_id)
            self.peer.metrics.counter("wire_stale_retransmits").increment()
            return
        if seq == state.next_seq:
            if not self._enqueue(pipe_urn, envelope, message):
                return  # not accepted: no ack, sender will retransmit
            self._seen_reliable.add(wire_id)
            self._send_ack(envelope, message, wire_id)
            state.next_seq += 1
            self._flush_channel(channel, state)
            return
        # Future sequence: hold it back until the gap fills (or times out).
        if len(state.buffer) >= self.HOLDBACK_LIMIT:
            self._abandon_gap(channel, state)
            if seq < state.next_seq:  # the jump may have released our slot
                self._seen_reliable.add(wire_id)
                self._send_ack(envelope, message, wire_id)
                return
        state.buffer[seq] = (pipe_urn, envelope, message)
        self._seen_reliable.add(wire_id)
        self._send_ack(envelope, message, wire_id)
        self.peer.metrics.counter("wire_out_of_order_held").increment()
        self._arm_gap_timer(channel, state)

    def _flush_channel(self, channel: str, state: _ChannelState) -> None:
        """Release consecutively-sequenced held messages, manage the gap timer."""
        while state.next_seq in state.buffer:
            held_urn, held_envelope, held_message = state.buffer.pop(state.next_seq)
            state.next_seq += 1
            if not self._enqueue(held_urn, held_envelope, held_message):
                # Already acked when buffered; under overload the bounded
                # receive queue still wins (counted in wire_messages_dropped).
                pass
        if state.gap_handle is not None:
            state.gap_handle.cancel()
            state.gap_handle = None
        if state.buffer:
            self._arm_gap_timer(channel, state)

    def _arm_gap_timer(self, channel: str, state: _ChannelState) -> None:
        if state.gap_handle is not None and not state.gap_handle.cancelled:
            return
        state.gap_handle = self.peer.simulator.schedule(
            self.order_gap_timeout,
            lambda: self._on_gap_timeout(channel),
            label=f"wire-gap:{self.peer.name}",
        )

    def _on_gap_timeout(self, channel: str) -> None:
        state = self._channels.get(channel)
        if state is None:
            return
        state.gap_handle = None
        if state.buffer:
            self._abandon_gap(channel, state)

    def _abandon_gap(self, channel: str, state: _ChannelState) -> None:
        """Skip a sequence gap that will never fill (sender gave up) and resume.

        The missing message's loss is already reported on the *sender* side
        (``wire_delivery_failed`` + failure listeners); the receiver counts
        the abandonment and releases everything it was holding back.
        """
        if not state.buffer:
            return
        state.next_seq = min(state.buffer)
        self.peer.metrics.counter("wire_order_gaps_abandoned").increment()
        self._flush_channel(channel, state)

    def _enqueue(
        self, pipe_urn: str, envelope: EndpointEnvelope, message: Message
    ) -> bool:
        """Admit one message into the bounded service queue; False when full."""
        source = message.get_text(WIRE_SRC_ELEMENT) or envelope.src_peer
        self._sources.setdefault(pipe_urn, set()).add(source)
        if len(self._queue) >= self.cost_model.receive_queue_limit:
            self.peer.metrics.counter("wire_messages_dropped").increment()
            return False
        self._queue.append((pipe_urn, envelope, message))
        self.peer.metrics.counter("wire_messages_enqueued").increment()
        if not self._busy:
            self._process_next()
        return True

    def _process_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        pipe_urn, envelope, message = self._queue.popleft()
        pipes = self._inputs.get(pipe_urn, [])
        connections = max(1, len(self._sources.get(pipe_urn, set())))
        service_time = self.noise.jittered(
            self.cost_model.receive_cost(connections, message.size),
            self.cost_model.wire_jitter,
        )
        service_time += sum(pipe.processing_cost for pipe in pipes)

        def _finish() -> None:
            source_urn = message.get_text(WIRE_SRC_ELEMENT) or envelope.src_peer
            source = PeerID.from_urn(source_urn)
            for pipe in list(pipes):
                if pipe.closed:
                    # The pipe closed while the message was queued: count the
                    # drop instead of letting InputPipe.receive eat it.
                    self.peer.metrics.counter("wire_closed_pipe_drops").increment()
                    continue
                pipe.receive(message, source)
            self.peer.metrics.counter("wire_messages_delivered").increment()
            self.peer.metrics.timer("wire_receive_cpu").observe(service_time)
            self.peer.metrics.series("wire_received").record(self.peer.simulator.now)
            self._process_next()

        self.peer.simulator.schedule(
            service_time, _finish, label=f"wire-recv:{self.peer.name}"
        )


__all__ = [
    "DeliveryFailure",
    "DeliveryTracker",
    "SendReceipt",
    "WIRE_ACK_ID_ELEMENT",
    "WIRE_ACK_PARAM_PREFIX",
    "WIRE_ACK_REQ_ELEMENT",
    "WIRE_CHANNEL_ELEMENT",
    "WIRE_MSG_ID_ELEMENT",
    "WIRE_SEQ_ELEMENT",
    "WIRE_SRC_ELEMENT",
    "WireInputPipe",
    "WireOutputPipe",
    "WireReliability",
    "WireService",
]
