"""Experiment E5 -- where the TPS layer's per-message overhead comes from.

The simulated figures charge calibrated virtual-time costs for the SR/TPS
layer work; these micro-benchmarks measure the *real* wall-clock cost of each
ingredient on the machine running the reproduction, using pytest-benchmark's
normal calibrated loop:

* typed serialisation (encode + decode of a ski-rental event);
* wire-message framing at the paper's 1910-byte message size;
* type conformance checks (subtype matching);
* end-to-end TPS dispatch through the in-process binding;
* the hand-rolled SR-JXTA field encoding, for comparison.
"""

from __future__ import annotations

from repro.apps.skirental.types import PremiumSkiRental, SkiRental
from repro.bench.micro import (
    dispatch_cost_workload,
    sample_encoded_event,
    sample_offer,
    sample_registry,
    sample_wire_message,
)
from repro.jxta.message import Message
from repro.serialization.xml_codec import parse_xml, to_xml, XmlElement


def test_encode_event(benchmark):
    """Typed serialisation of one event (publisher-side TPS work)."""
    registry = sample_registry()
    offer = sample_offer()
    payload = benchmark(lambda: registry.encode(offer))
    assert isinstance(payload, bytes) and payload


def test_decode_event(benchmark):
    """Typed deserialisation of one event (subscriber-side TPS work)."""
    encoded = sample_encoded_event()
    event = benchmark(lambda: encoded.registry.decode(encoded.payload))
    assert isinstance(event, SkiRental)


def test_type_conformance_check(benchmark):
    """Subtype matching: the per-event isinstance check of Figure 7 semantics."""
    registry = sample_registry()
    events = [sample_offer(i) for i in range(50)] + [
        PremiumSkiRental("shop", 200.0, "Atomic", 7, extras=("boots",)) for _ in range(50)
    ]

    def check_all():
        return sum(1 for event in events if registry.conforms(event))

    assert benchmark(check_all) == len(events)


def test_wire_message_roundtrip(benchmark):
    """Framing and unframing a 1910-byte wire message (both layers pay this)."""
    message = sample_wire_message(1910)

    def roundtrip():
        return Message.from_bytes(message.to_bytes())

    restored = benchmark(roundtrip)
    assert restored.size >= 1910


def test_local_tps_dispatch(benchmark):
    """Full TPS semantics (type check, codec round-trip, dispatch), no substrate."""
    workload = dispatch_cost_workload(events=100)
    assert benchmark(workload) == 100


def test_sr_jxta_manual_encoding(benchmark):
    """The hand-rolled SR-JXTA field encoding, for comparison with typed encode."""
    offer = sample_offer()

    def encode_by_hand():
        message = Message()
        message.add("SkiRental.Shop", offer.shop)
        message.add("SkiRental.Price", repr(offer.price))
        message.add("SkiRental.Brand", offer.brand)
        message.add("SkiRental.NumberOfDays", repr(offer.number_of_days))
        return message.to_bytes()

    assert benchmark(encode_by_hand)


def test_advertisement_xml_roundtrip(benchmark):
    """Parsing and serialising a discovery-sized XML document."""
    root = XmlElement("DiscoveryResponse")
    for index in range(10):
        root.add("Adv", f"<advertisement id='{index}'>payload {index}</advertisement>")
    document = to_xml(root)

    def roundtrip():
        return parse_xml(to_xml(parse_xml(document)))

    assert benchmark(roundtrip).name == "DiscoveryResponse"
