"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def test_info_command(capsys):
    assert main(["info"]) == 0
    output = capsys.readouterr().out
    assert "repro 1.0.0" in output
    assert "wire_send_base" in output


def test_demo_command(capsys):
    assert main(["demo", "--subscribers", "1", "--events", "2", "--seed", "7"]) == 0
    output = capsys.readouterr().out
    assert "published 2 offers to 1 subscriber(s)" in output
    assert "received 2" in output


def test_figures_code_size_command(capsys):
    assert main(["figures", "--figure", "code-size"]) == 0
    output = capsys.readouterr().out
    assert "programming effort" in output
    assert "SR-TPS application" in output


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_version_flag():
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
