"""The built-in rule pack: the repo's concurrency & determinism invariants.

Each rule machine-checks one convention that, before this module, lived only
in docstrings and ROADMAP prose (the PR 4 locking model, the simulated
network's determinism contract).  The authoritative statement of every
invariant -- with examples and the suppression policy -- is
``docs/CONCURRENCY.md``; the rule ids below are stable and referenced from
there.

* **RL001 no-raw-acquire** -- every lock use must be a ``with`` statement;
  bare ``acquire()``/``release()`` pairs leak the lock on any exception
  between them.
* **RL002 no-call-out-under-lock** -- inside a ``with <lock>:`` body, no
  calls to the known call-out surfaces (subscriber callbacks, error
  handlers, ``_decorate_message``, executor submission): user code run
  under an internal lock can re-enter and deadlock, or block every other
  thread on the lock while it runs.
* **RL003 snapshot-mutation** -- attributes documented as immutable dispatch
  snapshots (``_handlers``, epoch ``shards``/``placement`` rows) may only be
  *rebound* to fresh tuples, never mutated in place: lock-free readers rely
  on a single atomic attribute load observing old-or-new, never half-built.
* **RL004 determinism** -- the simulated substrate (``repro.net``,
  ``repro.jxta``, ``repro.core``) must not read the wall clock or the
  process-global RNG: simclock time and injected seeded RNGs only, via the
  audited helpers of :mod:`repro.net.entropy`.
* **RL005 bare-except-swallow** -- no bare ``except:``, and no
  ``except Exception/BaseException:`` whose body silently swallows (only
  ``pass``/``continue``/constant ``return``): on dispatch paths this hides
  subscriber bugs the error-handler routing exists to surface.

:data:`DEFAULT_PROFILE` is the declarative per-package configuration table:
which packages each rule runs over and the option overrides (e.g. the RL003
snapshot-attribute set).  New subsystems opt in by extending the scopes
here, mirroring how new bindings register in :mod:`repro.core.bindings`.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, Optional, Type

from repro.analysis.engine import RuleScope
from repro.analysis.registry import LintContext, LintRule, register_rule

#: Where the invariants are documented; every hint points here.
DOC = "docs/CONCURRENCY.md"


def _builtin(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Register a built-in rule; ``replace=True`` keeps module reloads safe."""
    return register_rule(rule_class, replace=True)


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_lockish(node: ast.AST) -> bool:
    """Whether an expression names something that looks like a lock."""
    name = _terminal_name(node)
    return name is not None and "lock" in name.lower()


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain for messages."""
    if isinstance(node, ast.Attribute):
        return f"{_dotted(node.value)}.{node.attr}"
    if isinstance(node, ast.Name):
        return node.id
    return "<expr>"


@_builtin
class NoRawAcquire(LintRule):
    """RL001: locks are held via ``with``, never bare acquire()/release()."""

    rule_id = "RL001"
    title = "no-raw-acquire"
    rationale = (
        "a bare acquire()/release() pair leaks the lock on any exception "
        "between them; 'with lock:' cannot"
    )

    def check(self, tree: ast.Module, context: LintContext) -> Iterator[Any]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("acquire", "release")
            ):
                receiver = _dotted(node.func.value)
                yield context.finding(
                    node,
                    f"raw {node.func.attr}() on {receiver}: hold locks with a "
                    f"'with' statement",
                    hint=f"rewrite as 'with {receiver}:' ({DOC}#rl001)",
                )


@_builtin
class NoCallOutUnderLock(LintRule):
    """RL002: no user-code call-outs while holding an internal lock."""

    rule_id = "RL002"
    title = "no-call-out-under-lock"
    rationale = (
        "user code run under an internal lock can re-enter and deadlock, or "
        "stall every thread contending for the lock"
    )
    #: Callee names that reach user code or hand work to other threads.
    #: ``handle``/``handle_error`` are the bound dispatch surfaces of
    #: Subscription rows; ``callback``/``listener``/``predicate``/
    #: ``exception_handler`` the raw application objects; ``dispatch`` the
    #: subscriber-manager fan-out; ``_decorate_message``/``_notify``/
    #: ``_emit`` the composite/breaker/membership hooks; ``submit`` executor
    #: submission.  ``call_soon``/``call_soon_threadsafe``/``create_task``/
    #: ``ensure_future`` are the asyncio hand-off surfaces: scheduling loop
    #: work while holding a lock couples the lock's critical section to the
    #: event loop's readiness -- the ASYNC binding's loop-confined state
    #: must never wait on thread locks, so the hand-off happens after
    #: release, like any other call-out.
    default_options = {
        "call_outs": (
            "handle",
            "handle_error",
            "dispatch",
            "submit",
            "_decorate_message",
            "_notify",
            "_emit",
            "callback",
            "listener",
            "predicate",
            "exception_handler",
            "on_error",
            "call_soon",
            "call_soon_threadsafe",
            "create_task",
            "ensure_future",
        ),
    }

    def check(self, tree: ast.Module, context: LintContext) -> Iterator[Any]:
        call_outs = frozenset(context.options["call_outs"])
        findings = []

        def visit(node: ast.AST, lock_depth: int) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # A function *defined* under a lock runs when called, not
                # here -- its body starts outside the critical section.
                lock_depth = 0
            elif isinstance(node, ast.With):
                held = sum(1 for item in node.items if _is_lockish(item.context_expr))
                if held:
                    for item in node.items:
                        visit(item, lock_depth)
                    for statement in node.body:
                        visit(statement, lock_depth + held)
                    return
            elif isinstance(node, ast.Call) and lock_depth > 0:
                name = _terminal_name(node.func)
                if name in call_outs:
                    findings.append(
                        context.finding(
                            node,
                            f"call to {_dotted(node.func)}() inside a "
                            f"'with <lock>:' body",
                            hint=(
                                "snapshot under the lock, call out after "
                                f"releasing it ({DOC}#rl002)"
                            ),
                        )
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, lock_depth)

        visit(tree, 0)
        return iter(findings)


#: In-place mutators RL003 refuses on snapshot attributes.
_MUTATORS = frozenset(
    (
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "sort",
        "reverse",
        "update",
        "setdefault",
        "add",
        "discard",
    )
)


@_builtin
class SnapshotMutation(LintRule):
    """RL003: snapshot attributes are rebound to tuples, never mutated."""

    rule_id = "RL003"
    title = "snapshot-mutation"
    rationale = (
        "lock-free readers load the snapshot attribute once; in-place "
        "mutation lets them observe a half-built value"
    )
    #: Attribute names documented as immutable dispatch snapshots.
    default_options = {
        "snapshot_attrs": ("_handlers",),
    }

    def check(self, tree: ast.Module, context: LintContext) -> Iterator[Any]:
        attrs = frozenset(context.options["snapshot_attrs"])

        def names_snapshot(node: ast.AST) -> bool:
            name = _terminal_name(node)
            return name in attrs

        hint = f"swap in a freshly built tuple under the lock instead ({DOC}#rl003)"
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and names_snapshot(node.func.value)
            ):
                yield context.finding(
                    node,
                    f"in-place {node.func.attr}() on snapshot attribute "
                    f"{_dotted(node.func.value)}",
                    hint=hint,
                )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and names_snapshot(target.value):
                        yield context.finding(
                            node,
                            f"item assignment into snapshot attribute "
                            f"{_dotted(target.value)}",
                            hint=hint,
                        )
                    elif (
                        isinstance(target, ast.Attribute)
                        and target.attr in attrs
                        and _rebinds_to_list(node.value)
                    ):
                        yield context.finding(
                            node,
                            f"snapshot attribute {_dotted(target)} rebound to a "
                            f"list; snapshots must be immutable tuples",
                            hint=hint,
                        )
            elif isinstance(node, ast.AugAssign) and (
                names_snapshot(node.target)
                or (
                    isinstance(node.target, ast.Subscript)
                    and names_snapshot(node.target.value)
                )
            ):
                yield context.finding(
                    node,
                    "augmented assignment on snapshot attribute "
                    f"{_dotted(node.target if not isinstance(node.target, ast.Subscript) else node.target.value)}",
                    hint=hint,
                )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and names_snapshot(target.value):
                        yield context.finding(
                            node,
                            f"item deletion from snapshot attribute "
                            f"{_dotted(target.value)}",
                            hint=hint,
                        )


def _rebinds_to_list(value: ast.AST) -> bool:
    if isinstance(value, (ast.List, ast.ListComp)):
        return True
    if isinstance(value, ast.BinOp):
        # list(x) + [item] and friends still leave a mutable list bound.
        return _rebinds_to_list(value.left) or _rebinds_to_list(value.right)
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "list"
    )


@_builtin
class Determinism(LintRule):
    """RL004: simclock time and injected seeded RNGs only on sim paths."""

    rule_id = "RL004"
    title = "determinism"
    rationale = (
        "wall-clock reads and the process-global RNG make simulated runs "
        "unreproducible; use simclock and repro.net.entropy"
    )
    default_options = {
        #: Modules whose import alone is a violation in scoped packages.
        "banned_modules": ("time", "random", "datetime"),
        #: module -> attributes flagged when referenced (``uuid`` stays
        #: importable for its deterministic constructors; only the
        #: entropy-reading calls are banned).
        "banned_attrs": {
            "uuid": ("uuid1", "uuid4", "getnode"),
            "datetime": ("now", "utcnow", "today"),
        },
    }

    def check(self, tree: ast.Module, context: LintContext) -> Iterator[Any]:
        banned_modules = frozenset(context.options["banned_modules"])
        banned_attrs = {
            module: frozenset(attrs)
            for module, attrs in dict(context.options["banned_attrs"]).items()
        }
        hint = (
            "inject a seeded RNG / virtual clock, or route through the "
            f"audited helpers in repro/net/entropy.py ({DOC}#rl004)"
        )
        findings = []

        def flag(node: ast.AST, message: str) -> None:
            findings.append(context.finding(node, message, hint=hint))

        def visit(node: ast.AST) -> None:
            # Typing-only code never executes: skip ``if TYPE_CHECKING:``
            # bodies and every annotation position, so ``random.Random``
            # type hints do not count as entropy use.
            if isinstance(node, ast.If) and _terminal_name(node.test) == "TYPE_CHECKING":
                for child in node.orelse:
                    visit(child)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in node.decorator_list:
                    visit(decorator)
                defaults = list(node.args.defaults) + [
                    default for default in node.args.kw_defaults if default is not None
                ]
                for default in defaults:
                    visit(default)
                for statement in node.body:
                    visit(statement)
                return
            if isinstance(node, ast.AnnAssign):
                visit(node.target)
                if node.value is not None:
                    visit(node.value)
                return
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in banned_modules:
                        flag(
                            node,
                            f"import of nondeterministic module {alias.name!r} "
                            f"in {context.module}",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.level == 0 and root in banned_modules:
                    flag(
                        node,
                        f"import from nondeterministic module {node.module!r} "
                        f"in {context.module}",
                    )
            elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                base = node.value.id
                if base in banned_modules and base not in banned_attrs:
                    flag(node, f"use of {base}.{node.attr} on a deterministic path")
                elif node.attr in banned_attrs.get(base, ()):
                    flag(node, f"use of {base}.{node.attr} on a deterministic path")
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(tree)
        return iter(findings)


#: Exception names RL005 treats as "catches everything".
_BROAD = frozenset(("Exception", "BaseException"))


@_builtin
class BareExceptSwallow(LintRule):
    """RL005: no bare excepts; broad catches must not silently swallow."""

    rule_id = "RL005"
    title = "bare-except-swallow"
    rationale = (
        "a silent broad catch on a dispatch path hides subscriber bugs the "
        "error-handler routing exists to surface"
    )

    def check(self, tree: ast.Module, context: LintContext) -> Iterator[Any]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield context.finding(
                    node,
                    "bare 'except:' clause",
                    hint=(
                        "name the exception type; route dispatch errors to "
                        f"the paired handler ({DOC}#rl005)"
                    ),
                )
            elif _catches_broad(node.type) and _swallows(node.body):
                yield context.finding(
                    node,
                    f"broad 'except {_dotted(node.type)}:' silently swallows "
                    "the error",
                    hint=(
                        "count it, log it, or route it to the error handler "
                        f"({DOC}#rl005)"
                    ),
                )


def _catches_broad(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Tuple):
        return any(_catches_broad(element) for element in annotation.elts)
    return _terminal_name(annotation) in _BROAD


def _swallows(body: Any) -> bool:
    """Whether a handler body only passes/continues/returns a constant."""
    for statement in body:
        if isinstance(statement, (ast.Pass, ast.Continue)):
            continue
        if isinstance(statement, ast.Return) and (
            statement.value is None or isinstance(statement.value, ast.Constant)
        ):
            continue
        return False
    return True


#: The declarative per-package configuration table: which packages each rule
#: runs over, and the rule-option overrides.  This is the single place a new
#: subsystem opts in -- mirroring how bindings register in
#: ``repro/core/bindings.py`` rather than each module hard-coding policy.
DEFAULT_PROFILE = {
    # Locking invariants hold repo-wide (empty scope = every linted file).
    "RL001": RuleScope(),
    "RL002": RuleScope(),
    "RL003": RuleScope(
        options={
            # ``_handlers``: the TPSSubscriberManager dispatch snapshot.
            # ``shards``/``placement``/``shard_ids``: the _Epoch /
            # Placement routing rows the sharded publish path reads
            # lock-free.  (``inflight`` is deliberately absent: the epoch's
            # in-flight list is the one mutable, CPython-atomic field.)
            "snapshot_attrs": ("_handlers", "shards", "placement", "shard_ids"),
        }
    ),
    # Determinism applies to the simulated substrate and the engine core;
    # bench/ and apps/ measure and demo against the real world and are out
    # of scope by construction.  ``repro.core`` includes the asyncio
    # binding (``repro.core.async_engine``): it runs on real loops, so it
    # must not smuggle in wall-clock/RNG imports either -- its one clock
    # read goes through the owning loop's ``loop.time()``.
    # ``repro.storage`` is the durable history store: file I/O is in scope
    # too -- no wall-clock record timestamps; anything time-like must come
    # from an injected clock so log replay stays deterministic.
    "RL004": RuleScope(
        packages=("repro.net", "repro.jxta", "repro.core", "repro.storage")
    ),
    "RL005": RuleScope(),
}


__all__ = [
    "BareExceptSwallow",
    "DEFAULT_PROFILE",
    "Determinism",
    "NoCallOutUnderLock",
    "NoRawAcquire",
    "SnapshotMutation",
]
