"""The TPS engine over JXTA: ``JxtaTPSEngine`` and its advertisement manager.

This module assembles the four building blocks of the paper's architecture
(Figure 10) into the concrete implementation of the
:class:`~repro.core.interface.TPSInterface`:

* **TPSEngine** (the block) -- :class:`JxtaTPSEngine` collects publications
  and subscriptions and dispatches them to the advertisements manager;
* **Advs** -- :class:`TPSAdvertisementsManager`, which owns a
  :class:`~repro.core.advertisements.TPSAdvertisementsCreator` and a
  :class:`~repro.core.advertisements.TPSAdvertisementsFinder`;
* **IR** (interface repository) --
  :class:`~repro.core.subscriber.TPSSubscriberManager`;
* **Connections** -- one
  :class:`~repro.core.wire_finder.TPSWireServiceFinder` per attached
  advertisement, with its input/output wire pipes and
  :class:`~repro.core.subscriber.TPSPipeReader` readers.

The engine provides the three functional guarantees the paper lists for the
SR layers (Section 4.4, footnote 1): (1) it minimises the number of
advertisements for a type by searching before creating, (2) it manages
multiple advertisements for the same type simultaneously (attaching pipes to
each), and (3) it filters duplicate messages (which arise precisely when the
same event is published on several advertisements) by an application-level
message id.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.advertisements import (
    PS_PREFIX,
    TPSAdvertisementsCreator,
    TPSAdvertisementsFinder,
)
from repro.core.bindings import BindingParam, BindingRequest, register_binding
from repro.core.exceptions import DeliveryFailedError, NotInitializedError, PSException
from repro.core.history import DEFAULT_HISTORY_SIZE, make_history_pair
from repro.core.interface import PublishReceipt, Subscription, TPSInterface
from repro.core.subscriber import TPSPipeReader, TPSSubscriberManager
from repro.core.type_registry import Criteria, TypeRegistry, type_name
from repro.core.wire_finder import TPSMyInputPipe, TPSMyOutputPipe, TPSWireServiceFinder
from repro.jxta.advertisement import PeerGroupAdvertisement
from repro.jxta.ids import BoundedIdSet, PeerID
from repro.jxta.message import Message
from repro.jxta.peer import Peer
from repro.jxta.wire import DeliveryFailure, WireReliability
from repro.serialization.object_codec import ObjectCodec

_tps_message_counter = itertools.count(1)

#: Message element carrying the serialised typed event.
TPS_EVENT_ELEMENT = "TPSEvent"
#: Message element carrying the event's concrete type name.
TPS_TYPE_ELEMENT = "TPSType"
#: Message element carrying the application-level message id (duplicate filtering).
TPS_MSG_ID_ELEMENT = "TPSMsgId"
#: Message element carrying the publisher's sent-history offset for the event,
#: letting receivers track a per-source high-water mark for catch-up requests.
TPS_SENT_OFFSET_ELEMENT = "TPSSentOffset"
#: Message element marking a history catch-up request (see
#: :meth:`JxtaTPSEngine.request_history`); its text payload is the
#: requester's per-source offset map, one ``urn offset`` pair per line.
TPS_HISTORY_REQUEST_ELEMENT = "TPSHistoryRequest"


@dataclass
class TPSConfig:
    """Tunable behaviour of a :class:`JxtaTPSEngine`.

    Attributes
    ----------
    search_timeout:
        How long (virtual seconds) to search for an existing advertisement of
        the type before creating our own ("If the application does not find
        such advertisement in a specific amount of time, it creates its own
        one" -- paper, Section 4.1).
    research_interval:
        How often the finder keeps re-querying for further advertisements
        ("but keeps trying to find others in order to send messages to the
        maximum number of interested subscribers").
    create_if_missing:
        Whether to create an advertisement at all when none is found (pure
        subscribers may prefer to wait instead).
    charge_layer_costs:
        Whether to charge the calibrated SR-layer + TPS-layer virtual CPU
        costs on publish and receive.  Disabled in micro-benchmarks that
        measure only the real Python work.
    duplicate_filtering:
        Whether to drop events whose application-level message id has been
        seen before (functionality (3) of the paper's Section 4.4 footnote).
    duplicate_cache_size:
        How many recently seen message ids the duplicate filter remembers.
        Duplicates arise when one event reaches the engine through several
        attached advertisements, i.e. within a short window, so a bounded
        LRU window filters them all while keeping memory constant under
        sustained traffic.  Zero or negative means unbounded (the seed's
        behaviour).
    message_padding:
        When positive, pad published messages to this many bytes (the paper's
        measurements use 1910-byte messages).
    reliable_delivery:
        Whether to run the wire layer's at-least-once protocol (per-message
        acks, retries with capped exponential backoff, receiver-side dedup
        and per-source ordering).  Off by default: the clean-network cost
        profile of the paper's measurements stays untouched unless asked for.
    ack_timeout:
        Base virtual-seconds wait for a delivery ack before the first retry
        (doubled per attempt up to ``retry_backoff_cap``).
    max_delivery_attempts:
        Terminal give-up point of the retry loop; the failure is then routed
        to :attr:`JxtaTPSEngine.delivery_failure_handler` (or every
        subscription's exception handler), never silently dropped.
    retry_backoff / retry_backoff_cap / retry_jitter:
        Shape of the retry schedule: per-attempt multiplier, cap on the
        backoff delay, and proportional jitter (drawn off the simulation
        clock's seeded noise, so runs stay deterministic).
    ordered_delivery:
        Whether reliable receivers hold back out-of-order messages to
        preserve per-source publish order (see ``WireReliability.ordered``).
    order_gap_timeout:
        How long a reliable receiver waits for a missing sequence number
        before abandoning the gap (must exceed the full retry window, or an
        actually-lost message would wedge its channel forever).
    breaker_threshold:
        Consecutive-failure count at which a subscription's callback is
        quarantined by a circuit breaker.  Zero (default) disables crash
        containment entirely.
    breaker_cooldown:
        Virtual seconds a tripped breaker stays open before probing the
        callback again (half-open state).
    history:
        Which :class:`~repro.core.history.HistoryStore` backs
        ``objects_received``/``objects_sent``: ``"ring"`` (bounded
        in-memory, the paper-faithful default) or ``"log"`` (append-only
        durable files under ``history_path``; a restarted engine recovers
        its history, re-seeds the duplicate filter from it and can catch up
        on missed events via :meth:`JxtaTPSEngine.request_history`).
    history_size:
        Retention bound of the ring store, events per direction; zero or
        negative means unbounded.
    history_path:
        Directory for the ``"log"`` store's files (required with
        ``history="log"``).
    serve_history:
        Keep a wire reader open even with no subscriptions, so this engine
        answers peers' history catch-up requests (and retains delivered
        events) as a durable endpoint.  Off by default: the paper's "no
        event is received anymore" unsubscribe semantics stay untouched.
    """

    search_timeout: float = 3.0
    research_interval: float = 5.0
    create_if_missing: bool = True
    charge_layer_costs: bool = True
    duplicate_filtering: bool = True
    duplicate_cache_size: int = 8192
    message_padding: int = 0
    reliable_delivery: bool = False
    ack_timeout: float = 0.25
    max_delivery_attempts: int = 6
    retry_backoff: float = 2.0
    retry_backoff_cap: float = 2.0
    retry_jitter: float = 0.2
    ordered_delivery: bool = True
    order_gap_timeout: float = 6.0
    breaker_threshold: int = 0
    breaker_cooldown: float = 30.0
    history: str = "ring"
    history_size: int = DEFAULT_HISTORY_SIZE
    history_path: str = ""
    serve_history: bool = False

    def wire_reliability(self) -> Optional[WireReliability]:
        """The wire-layer reliability spec this config asks for (None when off)."""
        if not self.reliable_delivery:
            return None
        return WireReliability(
            ack_timeout=self.ack_timeout,
            max_attempts=self.max_delivery_attempts,
            backoff=self.retry_backoff,
            backoff_cap=self.retry_backoff_cap,
            jitter=self.retry_jitter,
            ordered=self.ordered_delivery,
            gap_timeout=self.order_gap_timeout,
            dedup_capacity=self.duplicate_cache_size,
        )


@dataclass
class TPSAttachment:
    """One advertisement the engine is attached to, with its pipes."""

    advertisement: PeerGroupAdvertisement
    finder: TPSWireServiceFinder
    output_pipe: Optional[TPSMyOutputPipe] = None
    input_pipe: Optional[TPSMyInputPipe] = None

    @property
    def group_id(self):
        """The attached advertisement's group ID."""
        return self.advertisement.get_gid()


class TPSAdvertisementsManager:
    """Finds/creates the type's advertisements and manages the attachments."""

    def __init__(self, engine: "JxtaTPSEngine") -> None:
        self.engine = engine
        group = engine.peer.world_group
        self.creator = TPSAdvertisementsCreator(group)
        self.finder = TPSAdvertisementsFinder(
            group, PS_PREFIX + engine.registry.advertised_name
        )
        self.attachments: List[TPSAttachment] = []
        self.created_own = False
        self._started = False

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start the finder and arm the create-if-missing timeout."""
        if self._started:
            return
        self._started = True
        self.finder.add_advertisements_listener(self.handle_new_advertisements)
        self.finder.start(interval=self.engine.config.research_interval)
        if self.engine.config.create_if_missing:
            self.engine.peer.simulator.schedule(
                self.engine.config.search_timeout,
                self._create_if_needed,
                label=f"tps-create:{self.engine.registry.advertised_name}",
            )

    def stop(self) -> None:
        """Stop searching and close every pipe."""
        self.finder.stop()
        for attachment in self.attachments:
            if attachment.input_pipe is not None:
                attachment.input_pipe.close()
            if attachment.output_pipe is not None:
                attachment.output_pipe.close()

    def _create_if_needed(self) -> None:
        if self.attachments or not self.engine.config.create_if_missing:
            return
        advertisement = self.creator.create_peer_group_advertisement(
            self.engine.registry.advertised_name
        )
        self.creator.publish_advertisement(advertisement)
        self.created_own = True
        self.handle_new_advertisements(advertisement)

    # ---------------------------------------------------------- attachments

    def handle_new_advertisements(self, advertisement: PeerGroupAdvertisement) -> None:
        """Attach to a newly discovered (or newly created) advertisement."""
        criteria = self.engine.criteria
        if criteria is not None and not criteria.matches_advertisement(advertisement):
            return
        gid = advertisement.get_gid()
        if any(attachment.group_id == gid for attachment in self.attachments):
            return
        finder = TPSWireServiceFinder(self.engine.peer.world_group, advertisement)
        finder.lookup_wire_service()
        output_pipe = finder.create_output_pipe(
            extra_send_cost=self.engine.send_overhead,
            reliability=self.engine.reliability,
        )
        if self.engine.reliability is not None:
            output_pipe.add_failure_listener(self.engine._on_delivery_failure)
        attachment = TPSAttachment(
            advertisement=advertisement, finder=finder, output_pipe=output_pipe
        )
        self.attachments.append(attachment)
        # serve_history keeps a reader open even with no subscriptions, so a
        # publisher-only engine can still hear (and answer) catch-up
        # requests from returning peers.
        if not self.engine.subscriber_manager.empty or self.engine.config.serve_history:
            self._open_reader(attachment)
        self.engine.peer.metrics.counter("tps_attachments").increment()
        if self.engine._needs_catchup:
            # Reopened with durable history: ask the group once, after the
            # pipes have had a chance to resolve, for what we missed.
            self.engine._needs_catchup = False
            self.engine.peer.simulator.schedule(
                self.engine.config.search_timeout,
                self.engine._auto_catchup,
                label=f"tps-catchup:{self.engine.registry.advertised_name}",
            )

    def ensure_readers(self) -> None:
        """Open an input pipe (reader) on every attachment that lacks one."""
        for attachment in self.attachments:
            if attachment.input_pipe is None:
                self._open_reader(attachment)

    def close_readers(self) -> None:
        """Close every reader (called when the last subscription is removed)."""
        for attachment in self.attachments:
            if attachment.input_pipe is not None:
                attachment.input_pipe.close()
                attachment.input_pipe = None

    def _open_reader(self, attachment: TPSAttachment) -> None:
        reader = TPSPipeReader(self.engine)
        attachment.input_pipe = attachment.finder.create_input_pipe(
            reader,
            processing_cost=self.engine.receive_overhead,
            reliability=self.engine.reliability,
        )


class JxtaTPSEngine(TPSInterface):
    """The TPS interface implemented over the JXTA substrate.

    Thread affinity: the engine is **single-threaded by design** -- it runs
    on (and mutates) the simulated network's event loop, whose pipes,
    finders and queues have no locks.  The engine records the thread that
    created it and every operation that touches the simulated network
    (``publish``, the subscribe/unsubscribe mutations, wire receive,
    teardown) raises :class:`PSException` when called from any other
    thread, instead of silently corrupting network state.  History queries
    (``objects_received``/``objects_sent``) stay callable from anywhere.  A
    threaded wire path would need the PR 4 snapshot treatment; until then
    the guard makes the constraint explicit.
    """

    def __init__(
        self,
        event_type: type,
        peer: Peer,
        *,
        criteria: Optional[Criteria] = None,
        codec: Optional[ObjectCodec] = None,
        config: Optional[TPSConfig] = None,
    ) -> None:
        #: The simulated-network thread this engine belongs to (see the
        #: class docstring's thread-affinity contract).
        self._owner_ident = threading.get_ident()
        self.registry = TypeRegistry(event_type, codec=codec)
        self.peer = peer
        self.criteria = criteria
        self.config = config or TPSConfig()
        self.subscriber_manager = TPSSubscriberManager()
        self._received, self._sent = make_history_pair(
            self.config.history,
            self.config.history_size,
            self.config.history_path or None,
            codec=self.registry.codec,
        )
        self._seen_message_ids = BoundedIdSet(self.config.duplicate_cache_size)
        #: Per-source high-water marks: origin peer URN -> highest sent-store
        #: offset observed from that origin (drives catch-up requests).
        self._source_offsets: Dict[str, int] = {}
        #: Set when a durable store reopened with prior records (a restart):
        #: the advertisements manager schedules one automatic catch-up
        #: request once the engine is attached.
        self._needs_catchup = self._recover_wire_state()
        #: Wire-layer reliability spec derived from the config (None when
        #: ``reliable_delivery`` is off); threaded into every pipe the
        #: advertisements manager opens.
        self.reliability: Optional[WireReliability] = self.config.wire_reliability()
        #: Optional application hook for terminal delivery failures.  Called
        #: with a :class:`DeliveryFailedError`; when unset, failures are
        #: routed to every subscription's exception handler instead.
        self.delivery_failure_handler: Optional[Callable[[DeliveryFailedError], None]] = None
        if self.config.breaker_threshold > 0:
            self.subscriber_manager.set_breaker_policy(
                self.config.breaker_threshold,
                self.config.breaker_cooldown,
                clock=lambda: self.peer.now,
                listener=self._on_breaker_transition,
            )
        cost_model = peer.cost_model
        if self.config.charge_layer_costs:
            #: The SR application-layer work (duplicate ids, multi-advertisement
            #: bookkeeping) plus the TPS-specific work (typed serialisation,
            #: registry lookups) charged per published message.
            self.send_overhead = cost_model.app_layer_send + cost_model.tps_layer_send
            #: The receive-side equivalent, charged per delivered message.
            self.receive_overhead = cost_model.app_layer_receive + cost_model.tps_layer_receive
        else:
            self.send_overhead = 0.0
            self.receive_overhead = 0.0
        self.manager = TPSAdvertisementsManager(self)
        self.manager.start()

    def _recover_wire_state(self) -> bool:
        """Re-seed wire dedup state from a reopened durable received store.

        Replayed wire messages carry their *original* message ids, so
        re-adding every persisted id to the duplicate filter makes replay
        after a crash exactly-once: events this engine already delivered in
        a previous life are recognised and dropped, only the genuinely
        missed ones get through.  The per-source offset map is rebuilt the
        same way, so the catch-up request asks each source only for what
        came after its last persisted event.
        """
        if self._received.kind != "log" or not len(self._received):
            return False
        for _, _, meta in self._received.since(0):
            if not (isinstance(meta, tuple) and len(meta) == 3):
                continue
            message_id, origin, source_offset = meta
            if message_id:
                self._seen_message_ids.seen(message_id)
            if origin and isinstance(source_offset, int) and source_offset >= 0:
                known = self._source_offsets.get(origin, -1)
                if source_offset > known:
                    self._source_offsets[origin] = source_offset
        return True

    def _check_thread(self, operation: str) -> None:
        """Raise unless the caller is the engine's owning thread."""
        ident = threading.get_ident()
        if ident != self._owner_ident:
            raise PSException(
                f"JxtaTPSEngine for {self.registry.interface_name} is "
                f"single-threaded (it runs on the simulated network's event "
                f"loop, owned by thread {self._owner_ident}); {operation} was "
                f"called from thread {ident}.  Use the LOCAL/SHARDED bindings "
                "for cross-thread traffic, or marshal calls onto the owning "
                "thread."
            )

    # ------------------------------------------------------------ properties

    @property
    def event_type(self) -> type:
        """The interface's event type."""
        return self.registry.event_type

    @property
    def ready(self) -> bool:
        """Whether at least one advertisement is attached (publishing will work)."""
        return any(a.output_pipe is not None for a in self.manager.attachments)

    @property
    def attachment_count(self) -> int:
        """Number of advertisements currently attached."""
        return len(self.manager.attachments)

    # ------------------------------------------------------------ publishing

    def publish(self, event: Any) -> PublishReceipt:
        """Publish a typed event to every subscriber of the type (Figure 8, (1))."""
        self._check_open()
        self._check_thread("publish")
        self.registry.check_publishable(event)
        attachments = [a for a in self.manager.attachments if a.output_pipe is not None]
        if not attachments:
            raise NotInitializedError(
                f"the TPS interface for {self.registry.interface_name} has no attached "
                "advertisement yet; run the network (settle) to let initialisation finish"
            )
        message_id = f"{self.peer.peer_id.to_urn()}/t{next(_tps_message_counter)}"
        # Record before sending so the stamped offset matches the store: a
        # catch-up replay of ``sent.since(offset)`` re-produces exactly the
        # messages (same ids, same offsets) that went on the wire.
        sent_offset = self._sent.append(event, meta=message_id)
        message = self._event_message(event, message_id, sent_offset)
        receipts = [attachment.output_pipe.send(message) for attachment in attachments]
        self.peer.metrics.counter("tps_published").increment()
        cpu_time = sum(receipt.cpu_time for receipt in receipts)
        completion = max(receipt.completion_time for receipt in receipts)
        self.peer.metrics.timer("tps_publish_cpu").observe(cpu_time)
        return PublishReceipt(
            cpu_time=cpu_time,
            completion_time=completion,
            pipes=len(receipts),
            wire_receipts=receipts,
        )

    def _event_message(self, event: Any, message_id: str, sent_offset: int) -> Message:
        """Build the wire message for ``event``.

        Shared by first-time publishing and catch-up replay: a replayed
        message carries its **original** id and sent-store offset, so the
        receivers' duplicate filter makes replay exactly-once and their
        per-source offset map stays consistent either way.
        """
        message = Message()
        message.add(TPS_TYPE_ELEMENT, type_name(type(event)))
        message.add(TPS_MSG_ID_ELEMENT, message_id)
        message.add(TPS_SENT_OFFSET_ELEMENT, str(sent_offset))
        message.add(TPS_EVENT_ELEMENT, self.registry.encode(event))
        self._decorate_message(message)
        if self.config.message_padding:
            message.pad_to(self.config.message_padding)
        return message

    def _decorate_message(self, message: Message) -> None:
        """Hook: add binding-specific elements to an outgoing message.

        The base engine adds nothing; composite bindings tag messages here
        (e.g. the SHARDED+JXTA origin element that filters same-bus echoes).
        Runs before padding, so decorations count toward the padded size.
        """

    # ----------------------------------------------------------- subscribing

    def _add_subscription(self, subscription: Subscription) -> None:
        self._check_thread("subscribe")
        self.subscriber_manager.add(subscription)
        self.manager.ensure_readers()
        self.peer.metrics.counter("tps_subscriptions").increment()

    def _remove_subscriptions(
        self, callback: Optional[Any] = None, handler: Optional[Any] = None
    ) -> int:
        self._check_thread("unsubscribe")
        removed = self.subscriber_manager.remove(callback, handler)
        if self.subscriber_manager.empty and not self.config.serve_history:
            # "After this call, no event is received anymore."  (With
            # serve_history the readers stay open for catch-up requests.)
            self.manager.close_readers()
        return removed

    def _discard_subscription(self, subscription: Subscription) -> int:
        self._check_thread("subscription cancel")
        removed = self.subscriber_manager.discard(subscription)
        if self.subscriber_manager.empty and not self.config.serve_history:
            self.manager.close_readers()
        return removed

    # objects_received / objects_sent come from TPSInterfaceCore, answered
    # by the engine's history stores (bounded ring by default, durable log
    # with ``history="log"``).

    # -------------------------------------------------------------- catch-up

    def request_history(self, since: Optional[int] = None) -> int:
        """Broadcast a catch-up request to every attached advertisement.

        Peers that retain sent history (and have an open reader -- i.e.
        subscribers, or publishers running with ``serve_history=True``)
        answer by replaying their retained events **with the original
        message ids**, so the duplicate filter keeps observed delivery
        exactly-once: only events this engine never saw get through.

        ``since=None`` (the default) asks each known source for everything
        after its last observed sent-offset -- plus everything any unknown
        source retains -- which is the right request after a restart or a
        membership ``recover``.  An explicit ``since`` asks every source
        for its history from that sent-offset onward.

        Returns the number of pipes the request went out on.
        """
        self._check_open()
        self._check_thread("request_history")
        attachments = [a for a in self.manager.attachments if a.output_pipe is not None]
        if not attachments:
            raise NotInitializedError(
                f"the TPS interface for {self.registry.interface_name} has no "
                "attached advertisement yet; run the network (settle) before "
                "requesting history"
            )
        if since is None:
            lines = [
                f"{urn} {offset + 1}"
                for urn, offset in sorted(self._source_offsets.items())
            ]
            # Unknown sources (never heard from) replay from the beginning
            # of whatever they retain; known ones resume past the high-water
            # mark above, which takes precedence over the wildcard.
            lines.append("* 0")
        else:
            lines = [f"* {max(0, since)}"]
        message = Message()
        message.add(TPS_HISTORY_REQUEST_ELEMENT, "\n".join(lines))
        for attachment in attachments:
            attachment.output_pipe.send(message)
        self.peer.metrics.counter("tps_history_requests").increment()
        return len(attachments)

    def _serve_history_request(self, text: str, source: Optional[PeerID]) -> None:
        """Replay retained sent history to answer a peer's catch-up request."""
        my_urn = self.peer.peer_id.to_urn()
        if source is not None and source.to_urn() == my_urn:
            return  # our own broadcast echoed back
        since: Optional[int] = None
        for line in text.splitlines():
            parts = line.split()
            if len(parts) != 2:
                continue
            urn, raw = parts
            try:
                offset = int(raw)
            except ValueError:
                continue
            if urn == my_urn:
                since = offset
                break  # a per-source entry beats the wildcard
            if urn == "*" and since is None:
                since = offset
        if since is None:
            return  # the request names other sources only
        attachments = [a for a in self.manager.attachments if a.output_pipe is not None]
        if not attachments:
            return
        replayed = 0
        for offset, event, meta in self._sent.since(max(0, since)):
            if not (isinstance(meta, str) and meta):
                continue  # no recorded message id: cannot replay exactly-once
            message = self._event_message(event, meta, offset)
            for attachment in attachments:
                attachment.output_pipe.send(message)
            replayed += 1
        if replayed:
            self.peer.metrics.counter("tps_history_replays").increment()

    def _auto_catchup(self) -> None:
        """One automatic catch-up request after a durable-store restart."""
        if self._tps_closed:
            return
        try:
            self.request_history()
        except PSException:
            # Not attached/resolved yet; the application can still call
            # request_history() itself once the network settles.
            pass

    # ------------------------------------------------------------ reliability

    def _on_delivery_failure(self, failure: DeliveryFailure) -> None:
        """Route a terminal wire-delivery failure to the application.

        Never silent: the failure is counted, then handed to the engine's
        ``delivery_failure_handler`` when one is set, else to every
        subscription's exception handler (the same channel callback errors
        use), so a publish that gave up after ``max_delivery_attempts`` is
        always observable.
        """
        self.peer.metrics.counter("tps_delivery_failed").increment()
        error = DeliveryFailedError(failure)
        handler = self.delivery_failure_handler
        if handler is not None:
            handler(error)
            return
        for subscription in self.subscriber_manager.subscriptions():
            try:
                subscription.exception_handler.handle(error)
            except BaseException:  # noqa: BLE001  # repro-lint: disable=RL005 - a broken handler must not stop routing
                pass

    def _on_breaker_transition(self, state: str, breaker: Any) -> None:
        """Count breaker state changes (``tps_breaker_open`` etc.)."""
        self.peer.metrics.counter(f"tps_breaker_{state}").increment()

    # --------------------------------------------------------------- receive

    def _on_wire_message(self, message: Message, source: PeerID) -> None:
        """Handle one raw wire message: decode, filter, dispatch."""
        self._check_thread("wire receive")
        if self._tps_closed:
            # A message can arrive between close() and the settle that drains
            # in-flight deliveries; count it instead of losing it silently.
            self.peer.metrics.counter("tps_closed_engine_drops").increment()
            return
        if message.has(TPS_HISTORY_REQUEST_ELEMENT):
            # A control message, not an event: replay retained sent history
            # for the requesting peer and stop (nothing to deliver locally).
            self._serve_history_request(
                message.get_text(TPS_HISTORY_REQUEST_ELEMENT), source
            )
            return
        message_id = message.get_text(TPS_MSG_ID_ELEMENT)
        if self.config.duplicate_filtering and message_id:
            # seen() refreshes recency on a hit, keeping actively-duplicated
            # ids away from the LRU eviction boundary.
            if self._seen_message_ids.seen(message_id):
                self.peer.metrics.counter("tps_duplicates_filtered").increment()
                return
        payload = message.get_bytes(TPS_EVENT_ELEMENT)
        if not payload:
            self.peer.metrics.counter("tps_malformed").increment()
            return
        try:
            event = self.registry.decode(payload)
        except Exception as error:  # noqa: BLE001 - surfaced to the application handlers
            self.peer.metrics.counter("tps_decode_errors").increment()
            for subscription in self.subscriber_manager.subscriptions():
                subscription.exception_handler.handle(error)
            return
        if not self.registry.conforms(event):
            # The event belongs to another branch of the hierarchy: this is
            # normal subtype filtering (Figure 7), not an error.
            self.peer.metrics.counter("tps_filtered_by_type").increment()
            return
        if self.criteria is not None and not self.criteria.matches_event(event):
            self.peer.metrics.counter("tps_filtered_by_content").increment()
            return
        origin = message_id.rsplit("/t", 1)[0] if message_id else ""
        offset_text = message.get_text(TPS_SENT_OFFSET_ELEMENT)
        try:
            source_offset = int(offset_text) if offset_text else -1
        except ValueError:
            source_offset = -1
        # Provenance rides along as store metadata so a durable store can
        # re-seed the duplicate filter and per-source offsets on restart.
        self._received.append(event, meta=(message_id, origin, source_offset))
        if origin and source_offset > self._source_offsets.get(origin, -1):
            self._source_offsets[origin] = source_offset
        self.peer.metrics.counter("tps_delivered").increment()
        self.peer.metrics.series("tps_received").record(self.peer.now)
        self.subscriber_manager.dispatch(event)

    # ----------------------------------------------------------------- close

    def _do_close(self) -> None:
        """Stop the finder, close all pipes and drop subscriptions."""
        self._check_thread("close")
        self.manager.stop()
        self.subscriber_manager.remove()
        # Flush/fsync durable stores; history queries stay answerable after
        # close (the stores keep serving reads).
        self._received.close()
        self._sent.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"JxtaTPSEngine(type={self.registry.interface_name}, peer={self.peer.name!r}, "
            f"attachments={self.attachment_count})"
        )


#: Accepted value types per TPSConfig field annotation (the float fields
#: accept ints; the int fields reject bools via the extra check below).
_CONFIG_FIELD_TYPES = {
    "float": (int, float),
    "int": (int,),
    "bool": (bool,),
    "str": (str,),
}


def _not_bool(value: Any) -> Optional[str]:
    # bool subclasses int, so plain isinstance checks against the numeric
    # fields would let ``search_timeout=True`` through as 1.0 -- reject it
    # explicitly for every non-bool field.
    if isinstance(value, bool):
        return f"must be a number, got {value!r}"
    return None


#: The JXTA binding's parameter schema: every :class:`TPSConfig` field is a
#: per-interface override, so ``new_interface("JXTA", search_timeout=2.0)``
#: tunes one interface without constructing and threading a whole config.
JXTA_BINDING_PARAMS = tuple(
    BindingParam(
        config_field.name,
        _CONFIG_FIELD_TYPES.get(str(config_field.type), ()),
        f"TPSConfig.{config_field.name} override (default {config_field.default!r})",
        None if str(config_field.type) in ("bool", "str") else _not_bool,
        default=config_field.default,
    )
    for config_field in dataclasses.fields(TPSConfig)
)


def resolve_jxta_config(request: BindingRequest) -> Optional[TPSConfig]:
    """The request's effective :class:`TPSConfig`: engine config + overrides."""
    if not request.params:
        return request.config
    return dataclasses.replace(request.config or TPSConfig(), **dict(request.params))


def _jxta_binding(request: BindingRequest) -> JxtaTPSEngine:
    """The ``"JXTA"`` binding factory: an interface over the P2P substrate."""
    if request.peer is None:
        raise PSException(
            "the JXTA binding needs a peer: construct the engine with "
            "TPSEngine(EventType, peer=some_peer)"
        )
    return JxtaTPSEngine(
        request.event_type,
        request.peer,
        criteria=request.criteria,
        codec=request.codec,
        config=resolve_jxta_config(request),
    )


register_binding(
    "JXTA",
    _jxta_binding,
    capabilities=("distributed", "simulated-network"),
    params=JXTA_BINDING_PARAMS,
    replace=True,
)


__all__ = [
    "BoundedIdSet",
    "JXTA_BINDING_PARAMS",
    "JxtaTPSEngine",
    "resolve_jxta_config",
    "TPSAdvertisementsManager",
    "TPSAttachment",
    "TPSConfig",
    "TPS_EVENT_ELEMENT",
    "TPS_HISTORY_REQUEST_ELEMENT",
    "TPS_MSG_ID_ELEMENT",
    "TPS_SENT_OFFSET_ELEMENT",
    "TPS_TYPE_ELEMENT",
]
