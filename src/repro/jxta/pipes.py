"""Pipes: virtual communication channels between peers.

"In order for the peers to communicate, they need a mechanism that does not
depend on their network.  This mechanism is the pipe.  A pipe is a virtual
communication channel used to send messages.  The basic pipes are
asynchronous and uni-directionnal but some other variants are available
(e.g., the very new bi-directional pipes or the many-to-many pipes (called
wire)).  Pipes are not bound to any physical address (like IP ones)."
(paper, Section 2.1)

This module defines the pipe kinds and the :class:`InputPipe` /
:class:`OutputPipe` objects applications hold.  Binding (which peers listen
on which pipe) is managed by the Pipe Binding Protocol in
:mod:`repro.jxta.pipe_binding`; the many-to-many wire variant lives in
:mod:`repro.jxta.wire`.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, TYPE_CHECKING

from repro.jxta.advertisement import PipeAdvertisement
from repro.jxta.errors import PipeError
from repro.jxta.ids import PeerID, PipeID
from repro.jxta.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.pipe_binding import PipeBindingService


class PipeKind(str, enum.Enum):
    """The pipe variants the substrate supports."""

    #: One sender, one receiver, asynchronous and unidirectional.
    UNICAST = "JxtaUnicast"
    #: One sender, many receivers on the local scope.
    PROPAGATE = "JxtaPropagate"
    #: Many-to-many pipe provided by the WIRE service.
    WIRE = "JxtaWire"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Input-pipe listeners receive ``(message, source_peer_id)``.
PipeMessageListener = Callable[[Message, PeerID], None]


class InputPipe:
    """The receiving end of a pipe on one peer.

    Messages delivered to the pipe are handed to every registered listener.
    Closing the pipe removes its binding (so remote output pipes stop
    resolving this peer) and drops its listeners.
    """

    def __init__(
        self,
        advertisement: PipeAdvertisement,
        binding_service: "PipeBindingService",
        *,
        listener: Optional[PipeMessageListener] = None,
        processing_cost: float = 0.0,
    ) -> None:
        self.advertisement = advertisement
        self._binding_service = binding_service
        self._listeners: List[PipeMessageListener] = []
        #: Extra virtual CPU time charged per delivered message, representing
        #: the work the layer above does in its receive callback.  The wire
        #: service adds this to its per-message service time.
        self.processing_cost = processing_cost
        self.closed = False
        self.received_count = 0
        if listener is not None:
            self.add_listener(listener)

    @property
    def pipe_id(self) -> PipeID:
        """The pipe's stable identifier."""
        return self.advertisement.pipe_id

    @property
    def name(self) -> str:
        """The pipe's advertised name."""
        return self.advertisement.name

    def add_listener(self, listener: PipeMessageListener) -> None:
        """Register a listener invoked for every delivered message."""
        if self.closed:
            raise PipeError("cannot add a listener to a closed input pipe")
        self._listeners.append(listener)

    def remove_listener(self, listener: PipeMessageListener) -> None:
        """Unregister a listener (missing listeners are ignored)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def listener_count(self) -> int:
        """Number of registered listeners."""
        return len(self._listeners)

    def receive(self, message: Message, source: PeerID) -> None:
        """Deliver a message to every listener (called by the pipe/wire service)."""
        if self.closed:
            return
        self.received_count += 1
        for listener in list(self._listeners):
            listener(message, source)

    def close(self) -> None:
        """Close the pipe and remove its binding.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        self._binding_service.unbind(self)
        self._listeners.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InputPipe({self.name!r}, {self.pipe_id!r})"


class OutputPipe:
    """The sending end of a pipe on one peer.

    For a unicast pipe, :meth:`send` delivers to the first resolved bound
    peer; for a propagate pipe it delivers to every resolved peer.  The wire
    variant (with cost accounting and queuing) is provided by
    :class:`repro.jxta.wire.WireOutputPipe`.
    """

    def __init__(
        self,
        advertisement: PipeAdvertisement,
        binding_service: "PipeBindingService",
    ) -> None:
        self.advertisement = advertisement
        self._binding_service = binding_service
        self.closed = False
        self.sent_count = 0

    @property
    def pipe_id(self) -> PipeID:
        """The pipe's stable identifier."""
        return self.advertisement.pipe_id

    @property
    def name(self) -> str:
        """The pipe's advertised name."""
        return self.advertisement.name

    def resolved_peers(self) -> List[PeerID]:
        """Peers currently known to have a bound input pipe for this pipe."""
        return self._binding_service.resolved_peers(self.pipe_id)

    def send(self, message: Message) -> int:
        """Send a message through the pipe; returns the number of peers targeted.

        Raises :class:`PipeError` when the pipe is closed or (for a unicast
        pipe) when no bound peer has been resolved yet.
        """
        if self.closed:
            raise PipeError("cannot send on a closed output pipe")
        targets = self.resolved_peers()
        kind = self.advertisement.pipe_kind
        if kind == PipeKind.UNICAST.value:
            if not targets:
                raise PipeError(
                    f"unicast pipe {self.name!r} has no resolved input pipe to send to"
                )
            targets = targets[:1]
        sent = self._binding_service.send_data(self.pipe_id, message, targets)
        self.sent_count += sent
        return sent

    def close(self) -> None:
        """Close the pipe.  Idempotent."""
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OutputPipe({self.name!r}, {self.pipe_id!r})"


__all__ = ["InputPipe", "OutputPipe", "PipeKind", "PipeMessageListener"]
