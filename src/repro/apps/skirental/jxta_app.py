"""SR-JXTA: the ski-rental application written directly against JXTA.

"Our aim here is to create the very same application than the one with TPS,
i.e., an application with the same functionalities as TPS": (1) minimisation
of the number of advertisements for the same type, (2) management of multiple
advertisements at the same time and (3) handling of duplicate messages
(paper, Section 4.4).  To get them, the application re-creates by hand the
pieces the TPS layer provides for free:

* :class:`AdvertisementsCreator` -- Figure 15: build and publish a peer-group
  advertisement hosting the WIRE service over a pipe named after the type;
* :class:`AdvertisementsFinder` -- Figure 16: periodically query for matching
  peer-group advertisements, de-duplicate them by group ID and notify
  listeners;
* :class:`WireServiceFinder` -- Figure 17: instantiate the advertised group,
  look up the wire service and create :class:`MyInputPipe` /
  :class:`MyOutputPipe` objects;
* hand-rolled (de)serialisation of the ski-rental fields into message
  elements -- with none of TPS's type safety: a subscriber that mis-parses a
  field only finds out at run time;
* an application-level message id for duplicate filtering.

This is the code a JXTA programmer has to write and maintain; the
programming-effort comparison of the paper's Section 4.4 (and this
repository's E4 benchmark) counts it against the few lines of
:mod:`repro.apps.skirental.tps_app`.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Protocol, Union

from repro.apps.skirental.types import SkiRental
from repro.jxta.advertisement import (
    PeerGroupAdvertisement,
    PipeAdvertisement,
    ServiceAdvertisement,
)
from repro.jxta.cache import DiscoveryKind
from repro.jxta.discovery import DiscoveryEvent, DiscoveryService
from repro.jxta.errors import JxtaError
from repro.jxta.ids import PeerGroupID, PipeID
from repro.jxta.message import Message
from repro.jxta.peer import Peer
from repro.jxta.peergroup import PeerGroup
from repro.jxta.pipes import PipeKind
from repro.jxta.wire import SendReceipt, WireInputPipe, WireOutputPipe, WireService
from repro.net.simclock import PeriodicTask

#: Prefix of the application's peer-group advertisement names (Figure 15, line 21).
PS_PREFIX = "PS$"
#: The "type name" the hand-written application agrees on out of band.
SKI_RENTAL_TYPE_NAME = "SkiRental"

_app_message_counter = itertools.count(1)


class WireServiceFinderException(JxtaError):
    """Raised when the wire service cannot be looked up or its pipes created."""


class AdvertisementsListenerInterface(Protocol):
    """Listener notified of every new advertisement found by the finder."""

    def handle_new_advertisements(self, advertisement: PeerGroupAdvertisement) -> None:
        """Called once per newly discovered peer-group advertisement."""


class AdvertisementsCreator:
    """Figure 15: create and publish the application's peer-group advertisement."""

    def __init__(self, root_group: PeerGroup, discovery_service: DiscoveryService) -> None:
        self.root_group = root_group
        self.discovery_service = discovery_service
        self.advertisement: Optional[PeerGroupAdvertisement] = None

    def create_peer_group_advertisement(self, name: str) -> PeerGroupAdvertisement:
        """Build the advertisement: pipe + peer group + wire service + resolver params."""
        local_peer_id = self.root_group.get_peer_id()
        pipe_adv = PipeAdvertisement()
        pipe_adv.set_pipe_id(PipeID())
        pipe_adv.set_name(name)
        pipe_adv.pipe_kind = PipeKind.WIRE.value

        par = self.root_group
        adv = PeerGroupAdvertisement()
        adv.set_pid(local_peer_id)
        adv.set_gid(PeerGroupID())
        adv.set_name(PS_PREFIX + pipe_adv.name)
        adv.set_service_advertisements(par.get_advertisement().get_service_advertisements())
        adv.set_app(par.get_advertisement().get_app())
        adv.set_group_impl(par.get_advertisement().get_group_impl())
        services = adv.get_service_advertisements()

        wire_adv = ServiceAdvertisement()
        wire_adv.set_name(WireService.WireName)
        wire_adv.set_version(WireService.WireVersion)
        wire_adv.set_uri(WireService.WireUri)
        wire_adv.set_code(WireService.WireCode)
        wire_adv.set_security(WireService.WireSecurity)
        wire_adv.set_pipe(pipe_adv)
        wire_adv.set_keywords(pipe_adv.name)
        adv.set_is_rendezvous(True)

        resolver = services.get("jxta.service.resolver")
        if resolver is None:
            resolver = ServiceAdvertisement(name="jxta.service.resolver")
        params = resolver.get_params()
        params.append(local_peer_id.to_urn())
        resolver.set_params(params)
        services["jxta.service.resolver"] = resolver

        services[WireService.WireName] = wire_adv
        adv.set_service_advertisements(services)

        self.advertisement = adv
        return adv

    def publish_advertisement(
        self, advertisement: PeerGroupAdvertisement, kind_of_advertisement: int
    ) -> None:
        """Publish the advertisement locally, then push it to remote peers."""
        self.discovery_service.publish(advertisement, kind_of_advertisement)
        self.discovery_service.remote_publish(advertisement, kind_of_advertisement)


class AdvertisementsFinder:
    """Figure 16: periodically search for peer-group advertisements by name prefix."""

    NUMBER_OF_ADV_PER_PEER = 10
    SLEEPING_TIME = 5.0

    def __init__(
        self,
        type_of_advertisement: int,
        discovery_service: DiscoveryService,
        prefix: str,
        *,
        simulator_owner: Peer,
    ) -> None:
        self.type_of_advertisement = type_of_advertisement
        self.discovery_service = discovery_service
        self.prefix = prefix
        self.advertisements: List[PeerGroupAdvertisement] = []
        self.advertisements_listener: List[
            Union[AdvertisementsListenerInterface, Callable[[PeerGroupAdvertisement], None]]
        ] = []
        self.go_on = True
        self._peer = simulator_owner
        self._task: Optional[PeriodicTask] = None

    # ----------------------------------------------------------- listeners

    def add_advertisements_listener(
        self,
        listener: Union[
            AdvertisementsListenerInterface, Callable[[PeerGroupAdvertisement], None]
        ],
    ) -> None:
        """Register a listener for newly found advertisements."""
        self.advertisements_listener.append(listener)

    # ------------------------------------------------------------ lifecycle

    def run(self) -> None:
        """Start the search loop (the Java thread's ``run``, on the sim clock)."""
        self.discovery_service.cache.flush(DiscoveryKind.ADV, remote_only=True)
        self.discovery_service.cache.flush(DiscoveryKind.PEER, remote_only=True)
        self.discovery_service.cache.flush(DiscoveryKind.GROUP, remote_only=True)
        self.discovery_service.add_discovery_listener(self._on_discovery_event)
        self._round()
        self._task = self._peer.simulator.schedule_periodic(
            self.SLEEPING_TIME, self._round, label=f"sr-jxta-finder:{self.prefix}"
        )

    def stop(self) -> None:
        """Stop the search loop."""
        self.go_on = False
        if self._task is not None:
            self._task.stop()
        self.discovery_service.remove_discovery_listener(self._on_discovery_event)

    def _round(self) -> None:
        if not self.go_on:
            return
        if self.type_of_advertisement == DiscoveryKind.GROUP:
            self.discovery_service.get_remote_advertisements(
                None,
                self.type_of_advertisement,
                "Name",
                self.prefix + "*",
                self.NUMBER_OF_ADV_PER_PEER,
            )
            for advertisement in self.discovery_service.get_local_advertisements(
                self.type_of_advertisement, "Name", self.prefix + "*"
            ):
                self.handle_new_advertisement(advertisement, self.type_of_advertisement)

    def _on_discovery_event(self, event: DiscoveryEvent) -> None:
        if event.kind != self.type_of_advertisement:
            return
        for advertisement in event.advertisements:
            if advertisement.matches("Name", self.prefix + "*"):
                self.handle_new_advertisement(advertisement, event.kind)

    # -------------------------------------------------------------- handling

    def add_advertisement(self, advertisement: PeerGroupAdvertisement) -> None:
        """Record a new advertisement and dispatch it to the listeners."""
        self.advertisements.append(advertisement)
        for listener in list(self.advertisements_listener):
            callback = getattr(listener, "handle_new_advertisements", listener)
            callback(advertisement)

    def find_advertisement(
        self, adv_vector: List[PeerGroupAdvertisement], adv: PeerGroupAdvertisement
    ) -> bool:
        """Figure 16, lines 42-60: is an advertisement with the same group ID known?"""
        try:
            if isinstance(adv, PeerGroupAdvertisement):
                if adv.get_gid() is not None:
                    for element in adv_vector:
                        if element.get_gid() == adv.get_gid():
                            return True
                return False
            return True
        except Exception:  # pragma: no cover - mirrors the paper's broad catch
            return False

    def handle_new_advertisement(
        self, adv: PeerGroupAdvertisement, type_of_advertisement: int
    ) -> None:
        """Record advertisements of the right kind that are not yet known."""
        if type_of_advertisement == DiscoveryKind.GROUP and isinstance(
            adv, PeerGroupAdvertisement
        ):
            if not self.find_advertisement(self.advertisements, adv):
                self.add_advertisement(adv)


class MyInputPipe:
    """Figure 17's ``MyInputPipe``: a wire input pipe plus its source advertisement."""

    def __init__(self, pipe: WireInputPipe, pg_adv: PeerGroupAdvertisement) -> None:
        self.pipe = pipe
        self.pg_adv = pg_adv

    def add_listener(self, listener) -> None:
        """Register a raw message listener."""
        self.pipe.add_listener(listener)

    def close(self) -> None:
        """Close the underlying pipe."""
        self.pipe.close()


class MyOutputPipe:
    """Figure 17's ``MyOutputPipe``: a wire output pipe plus its source advertisement."""

    def __init__(self, pipe: WireOutputPipe, pg_adv: PeerGroupAdvertisement) -> None:
        self.pipe = pipe
        self.pg_adv = pg_adv

    def send(self, message: Message) -> SendReceipt:
        """Send a (duplicated) message on the underlying pipe."""
        return self.pipe.send(message)


class WireServiceFinder:
    """Figure 17: look up the wire service of an advertised group, create pipes."""

    TIME_TO_WAIT = 3.0

    def __init__(self, peer_group: PeerGroup, pg_adv: PeerGroupAdvertisement) -> None:
        self.peer_group = peer_group
        self.pg_adv = pg_adv
        self.wire_group: Optional[PeerGroup] = None
        self.pipe_service: Optional[WireService] = None
        self.my_input_pipe: Optional[MyInputPipe] = None
        self.my_output_pipe: Optional[MyOutputPipe] = None

    def lookup_wire_service(self) -> WireService:
        """Instantiate the group and look up its wire service."""
        if self.peer_group is not None and self.pg_adv is not None:
            self.wire_group = self.peer_group.new_group(self.pg_adv)
            self.pipe_service = self.wire_group.lookup_service(WireService.WireName)
            return self.pipe_service
        raise WireServiceFinderException("Unable to lookup the wire service")

    def get_pipe_advertisement(self) -> Optional[PipeAdvertisement]:
        """The pipe advertisement of the group's wire service, if any."""
        s_adv = self.pg_adv.service(WireService.WireName)
        if s_adv is None:
            return None
        return s_adv.get_pipe()

    def create_input_pipe(self, listener=None, *, processing_cost: float = 0.0) -> MyInputPipe:
        """Create the wire input pipe (receiving side)."""
        p_adv = self.get_pipe_advertisement()
        if p_adv is None or self.pipe_service is None:
            raise WireServiceFinderException("Unable to create the input pipe.")
        try:
            pipe = self.pipe_service.create_input_pipe(
                p_adv, listener, processing_cost=processing_cost
            )
        except JxtaError as exc:
            raise WireServiceFinderException("Unable to create the input pipe.") from exc
        self.my_input_pipe = MyInputPipe(pipe, self.pg_adv)
        return self.my_input_pipe

    def create_output_pipe(self, *, extra_send_cost: float = 0.0) -> MyOutputPipe:
        """Create the wire output pipe (sending side)."""
        p_adv = self.get_pipe_advertisement()
        if p_adv is None or self.pipe_service is None:
            raise WireServiceFinderException("Unable to create the output pipe.")
        try:
            pipe = self.pipe_service.create_output_pipe(
                p_adv, extra_send_cost=extra_send_cost
            )
        except JxtaError as exc:
            raise WireServiceFinderException("Unable to create the output pipe.") from exc
        self.my_output_pipe = MyOutputPipe(pipe, self.pg_adv)
        return self.my_output_pipe

    def publish(self, msg: Message) -> SendReceipt:
        """Send a message on the output pipe (Figure 17, lines 50-52)."""
        if self.my_output_pipe is None:
            raise WireServiceFinderException("no output pipe")
        return self.my_output_pipe.send(msg.dup())


class _SkiRentalJxtaBase:
    """Shared plumbing of the SR-JXTA publisher and subscriber.

    Drives the creator/finder/wire-finder trio: search for an existing
    advertisement first, create one after ``search_timeout`` if none was
    found (functionality (1)), attach to every advertisement found
    (functionality (2)).
    """

    def __init__(
        self,
        peer: Peer,
        *,
        type_name: str = SKI_RENTAL_TYPE_NAME,
        search_timeout: float = 3.0,
        create_if_missing: bool = True,
        charge_layer_costs: bool = True,
    ) -> None:
        self.peer = peer
        self.type_name = type_name
        self.group = peer.world_group
        self.charge_layer_costs = charge_layer_costs
        self._send_cost = peer.cost_model.app_layer_send if charge_layer_costs else 0.0
        self._receive_cost = peer.cost_model.app_layer_receive if charge_layer_costs else 0.0
        self.creator = AdvertisementsCreator(self.group, self.group.discovery)
        self.finder = AdvertisementsFinder(
            DiscoveryKind.GROUP, self.group.discovery, PS_PREFIX + type_name, simulator_owner=peer
        )
        self.wire_finders: List[WireServiceFinder] = []
        self.created_own = False
        self.finder.add_advertisements_listener(self._on_new_advertisement)
        self.finder.run()
        if create_if_missing:
            peer.simulator.schedule(search_timeout, self._create_if_needed)

    # ------------------------------------------------------------ lifecycle

    def _create_if_needed(self) -> None:
        if self.wire_finders:
            return
        advertisement = self.creator.create_peer_group_advertisement(self.type_name)
        self.creator.publish_advertisement(advertisement, DiscoveryKind.GROUP)
        self.created_own = True
        self._on_new_advertisement(advertisement)

    def _on_new_advertisement(self, advertisement: PeerGroupAdvertisement) -> None:
        if any(
            finder.pg_adv.get_gid() == advertisement.get_gid() for finder in self.wire_finders
        ):
            return
        wire_finder = WireServiceFinder(self.group, advertisement)
        wire_finder.lookup_wire_service()
        self.wire_finders.append(wire_finder)
        self._attach(wire_finder)

    def _attach(self, wire_finder: WireServiceFinder) -> None:
        """Role-specific pipe creation (publisher: output, subscriber: input)."""
        raise NotImplementedError

    @property
    def ready(self) -> bool:
        """Whether at least one advertisement has been attached."""
        return bool(self.wire_finders)

    def close(self) -> None:
        """Stop searching and close all pipes."""
        self.finder.stop()
        for wire_finder in self.wire_finders:
            if wire_finder.my_input_pipe is not None:
                wire_finder.my_input_pipe.close()


class SkiRentalJxtaPublisher(_SkiRentalJxtaBase):
    """The ski-rental shop (publisher), SR-JXTA flavour."""

    def __init__(self, peer: Peer, *, message_padding: int = 0, **kwargs) -> None:
        self.offers_sent: List[SkiRental] = []
        #: When positive, published messages are padded to this many bytes
        #: (the paper's measurements use 1910-byte messages).
        self.message_padding = message_padding
        super().__init__(peer, **kwargs)

    def _attach(self, wire_finder: WireServiceFinder) -> None:
        wire_finder.create_output_pipe(extra_send_cost=self._send_cost)

    def publish_offer(self, offer: SkiRental) -> "JxtaPublishReceipt":
        """Serialise the offer by hand into message elements and send it everywhere."""
        if not self.wire_finders:
            raise WireServiceFinderException(
                "SR-JXTA publisher is not initialised yet (no advertisement attached)"
            )
        message = Message()
        # Hand-rolled field encoding: every field becomes a text element.  A
        # typo here (or a wrong float parse on the receiving side) is exactly
        # the class of run-time error TPS rules out statically.
        message.add("SkiRental.Shop", offer.shop)
        message.add("SkiRental.Price", repr(offer.price))
        message.add("SkiRental.Brand", offer.brand)
        message.add("SkiRental.NumberOfDays", repr(offer.number_of_days))
        message.add(
            "SkiRental.MsgId", f"{self.peer.peer_id.to_urn()}/sr{next(_app_message_counter)}"
        )
        if self.message_padding:
            message.pad_to(self.message_padding)
        receipts = [finder.publish(message) for finder in self.wire_finders]
        self.offers_sent.append(offer)
        self.peer.metrics.counter("sr_jxta_published").increment()
        return JxtaPublishReceipt(
            cpu_time=sum(receipt.cpu_time for receipt in receipts),
            completion_time=max(receipt.completion_time for receipt in receipts),
            pipes=len(receipts),
            wire_receipts=receipts,
        )


class JxtaPublishReceipt:
    """Mirror of :class:`repro.core.interface.PublishReceipt` for the SR-JXTA app."""

    def __init__(
        self,
        cpu_time: float,
        completion_time: float,
        pipes: int,
        wire_receipts: List[SendReceipt],
    ) -> None:
        self.cpu_time = cpu_time
        self.completion_time = completion_time
        self.pipes = pipes
        self.wire_receipts = wire_receipts


class SkiRentalJxtaSubscriber(_SkiRentalJxtaBase):
    """The ski-rental shopper (subscriber), SR-JXTA flavour."""

    def __init__(self, peer: Peer, **kwargs) -> None:
        self.offers: List[SkiRental] = []
        self.parse_errors: List[Exception] = []
        self._seen_message_ids: set[str] = set()
        super().__init__(peer, **kwargs)

    def _attach(self, wire_finder: WireServiceFinder) -> None:
        input_pipe = wire_finder.create_input_pipe(processing_cost=self._receive_cost)
        input_pipe.add_listener(self._on_message)

    def _on_message(self, message: Message, source) -> None:
        # Functionality (3): duplicate filtering by the application-level id.
        message_id = message.get_text("SkiRental.MsgId")
        if message_id:
            if message_id in self._seen_message_ids:
                self.peer.metrics.counter("sr_jxta_duplicates").increment()
                return
            self._seen_message_ids.add(message_id)
        # Hand-rolled decoding: the equivalent of the explicit casts a JXTA
        # programmer performs, with the same run-time failure mode.
        try:
            offer = SkiRental(
                shop=message.get_text("SkiRental.Shop"),
                price=float(message.get_text("SkiRental.Price")),
                brand=message.get_text("SkiRental.Brand"),
                number_of_days=float(message.get_text("SkiRental.NumberOfDays")),
            )
        except (TypeError, ValueError) as error:
            self.parse_errors.append(error)
            self.peer.metrics.counter("sr_jxta_parse_errors").increment()
            return
        self.offers.append(offer)
        self.peer.metrics.counter("sr_jxta_received").increment()

    def received_offers(self) -> List[SkiRental]:
        """Every offer received so far (in delivery order)."""
        return list(self.offers)

    def received_count(self) -> int:
        """Number of offers received so far."""
        return len(self.offers)


__all__ = [
    "AdvertisementsCreator",
    "AdvertisementsFinder",
    "AdvertisementsListenerInterface",
    "JxtaPublishReceipt",
    "MyInputPipe",
    "MyOutputPipe",
    "PS_PREFIX",
    "SKI_RENTAL_TYPE_NAME",
    "SkiRentalJxtaPublisher",
    "SkiRentalJxtaSubscriber",
    "WireServiceFinder",
    "WireServiceFinderException",
]
