"""The committed lint baseline: grandfathered findings.

A baseline entry is a (rule, path, snippet) key plus a mandatory human
``note`` explaining *why* the finding is tolerated.  Matching is by the
stripped source line, not the line number, so a baselined exception survives
edits elsewhere in its file; moving or rewording the offending line itself
invalidates the entry -- which is the point: the exception must be
re-justified when the code changes.

The committed file (``lint-baseline.json`` at the repo root) exists for code
the lint rules flag but that must not be edited -- today that is
``apps/skirental/jxta_app.py``, whose line count feeds the paper's
Section 4.4 programming-effort comparison (see ROADMAP), so even an inline
pragma comment is off-limits there.  Everything else gets *fixed* or carries
an inline pragma next to the code it excuses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import LintConfigError

#: Schema identifier of the baseline file.
BASELINE_SCHEMA = "repro-lint-baseline/v1"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    snippet: str
    note: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path.replace("\\", "/"), self.snippet)

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path.replace("\\", "/"),
            "snippet": self.snippet,
            "note": self.note,
        }


def _paths_match(left: str, right: str) -> bool:
    """Whether two (posix) paths name the same file, tolerating one being
    relative to a different root (absolute CLI paths vs committed relative
    entries)."""
    if left == right:
        return True
    return left.endswith("/" + right) or right.endswith("/" + left)


class Baseline:
    """A set of grandfathered findings."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: Tuple[BaselineEntry, ...] = tuple(entries)

    # ------------------------------------------------------------------- io

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; malformed content raises
        :class:`LintConfigError` (a usage error, exit code 2)."""
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as error:
            raise LintConfigError(f"cannot read baseline {path!r}: {error}") from error
        except ValueError as error:
            raise LintConfigError(
                f"baseline {path!r} is not valid JSON: {error}"
            ) from error
        if not isinstance(document, dict) or document.get("schema") != BASELINE_SCHEMA:
            raise LintConfigError(
                f"baseline {path!r} must be a mapping with schema "
                f"{BASELINE_SCHEMA!r}, got {document.get('schema') if isinstance(document, dict) else document!r}"
            )
        raw_entries = document.get("entries")
        if not isinstance(raw_entries, list):
            raise LintConfigError(f"baseline {path!r}: entries must be a list")
        entries: List[BaselineEntry] = []
        for index, raw in enumerate(raw_entries):
            if not isinstance(raw, dict):
                raise LintConfigError(f"baseline {path!r}: entries[{index}] must be a mapping")
            try:
                entries.append(
                    BaselineEntry(
                        rule=str(raw["rule"]),
                        path=str(raw["path"]),
                        snippet=str(raw["snippet"]),
                        note=str(raw.get("note", "")),
                    )
                )
            except KeyError as error:
                raise LintConfigError(
                    f"baseline {path!r}: entries[{index}] missing {error.args[0]!r}"
                ) from error
        return cls(entries)

    def write(self, path: str) -> None:
        """Write the baseline file (stable ordering, trailing newline)."""
        document = {
            "schema": BASELINE_SCHEMA,
            "entries": [entry.to_json() for entry in sorted(self.entries, key=lambda e: e.key)],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=False)
            handle.write("\n")

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], note: str = "grandfathered by --write-baseline"
    ) -> "Baseline":
        """Build a baseline covering every given finding (deduplicated)."""
        seen: Set[Tuple[str, str, str]] = set()
        entries: List[BaselineEntry] = []
        for finding in findings:
            rule, path, snippet = finding.key
            if (rule, path, snippet) in seen:
                continue
            seen.add((rule, path, snippet))
            entries.append(BaselineEntry(rule=rule, path=path, snippet=snippet, note=note))
        return cls(entries)

    # -------------------------------------------------------------- filter

    def covers(self, finding: Finding) -> bool:
        """Whether a finding is grandfathered by this baseline."""
        rule, path, snippet = finding.key
        for entry in self.entries:
            if entry.rule == rule and entry.snippet == snippet and _paths_match(
                path, entry.path.replace("\\", "/")
            ):
                return True
        return False

    def filter(self, findings: Sequence[Finding]) -> Tuple[List[Finding], int]:
        """Split findings into (kept, baselined-count)."""
        kept = [finding for finding in findings if not self.covers(finding)]
        return kept, len(findings) - len(kept)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Baseline(entries={len(self.entries)})"


__all__ = ["BASELINE_SCHEMA", "Baseline", "BaselineEntry"]
