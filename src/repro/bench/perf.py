"""Persistent wall-clock micro-benchmarks for the hot-path event fabric.

The paper's quantitative story (Figures 18-20) is that the TPS layer adds
only a small, bounded overhead per event -- which makes the reproduction's
own hot path (serialise -> route -> deliver) the thing to keep fast.  This
module measures that path with real (not simulated) time and writes a JSON
trajectory file (``python -m repro bench --json BENCH_1.json``) so every
perf-touching PR has a recorded before/after.

Each *comparison* times the optimised implementation against a faithful
replica of the pre-optimisation (seed) hot path running in the same process:

* ``codec_encode`` / ``codec_decode`` -- the compiled per-type codec plans of
  :class:`~repro.serialization.object_codec.ObjectCodec` versus the generic
  recursive codec (``compiled=False``), on a representative event;
* ``xml_parse`` -- the scanning XML parser (``parse_xml``) versus the legacy
  character-at-a-time parser (``parse_xml(..., fast=False)``), over a corpus
  of representative wire documents (an encoded event, a peer advertisement,
  a discovery response with embedded advertisements);
* ``xml_roundtrip`` -- :class:`~repro.core.xml_types.XmlEventCodec` with
  cached type-description fragments and the cached-document decode fast path
  versus the tree-building encoder + tree-parsing decoder;
* ``fanout_1`` / ``fanout_10`` / ``fanout_100`` -- a full local-bus publish
  to N subscribers through the type-indexed routing table versus the seed's
  per-publish list copy + per-engine ``isinstance`` + per-dispatch
  subscription-list copy (replicated in :func:`_seed_publish`);
* ``subscribe_churn`` -- one subscribe/cancel cycle against an interface
  with resident subscriptions: the v2 ``SubscriptionHandle.cancel()``
  (identity discard) versus the Figure 8 ``unsubscribe(callback)``
  matching scan;
* ``filtered_fanout`` -- a publish fanned out to subscribers that filter
  most events away: v2 predicate push-down (the predicate lives in the
  dispatch rows, rejected events never open a callback frame) versus
  post-dispatch filtering (the pre-v2 idiom: a plain subscribed callable
  that applies the predicate in its body, adapted through
  ``FunctionCallback`` -- ``FilteringCallback`` is the named class form of
  the same pattern);
* ``mt_fanout`` -- concurrent fan-out over N independent hierarchies whose
  subscribers do per-event GIL-releasing work (a short wait standing in
  for the socket writes and disk appends real subscribers perform): the
  executor-backed ``publish_all`` cross-shard batch path of
  :class:`~repro.core.sharded_engine.ShardedLocalBus` (one shard per
  hierarchy, lock-free snapshot publish, N pool workers as the publisher
  threads) versus the naive thread-safe alternative, N publisher threads
  over a single ``LocalBus`` whose delivery runs under one big lock
  (:class:`_LockedLocalBus`), which serialises every hierarchy's
  subscriber waits behind one another;
* ``intra_shard_fanout`` -- the same threaded-workload style applied to a
  *single* hot hierarchy: a content-keyed
  :class:`~repro.core.sharded_engine.ShardedLocalBus`
  (``partition="content"``) spreading one hierarchy's events across N
  shards by event key versus the 1-shard bus an unsharded hierarchy
  amounts to, both driven through the identical ``publish_all`` batch
  entry point (per-key order preserved on both sides).

Two *scenario* entries record the real wall-clock cost of running the
simulated Figure 19/20 experiments (SR-TPS variant), so regressions in the
simulator's own hot path show up too.  A third scenario, ``lossy_publish``,
runs the at-least-once wire protocol (``reliable_delivery=True``) over a
fault-injected network at 0%/1%/5% link drop and records the per-rate
wall-clock plus delivery/retry counters -- the real cost of the ack/retry
machinery as loss grows.

The JSON schema (``repro-bench/v1``) is validated by
``tests/test_perf_harness.py``; the committed ``BENCH_*.json`` files form the
perf trajectory of the repository.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro._version import __version__
from repro.apps.skirental.types import SkiRental
from repro.core.async_engine import AsyncLocalBus, AsyncTPSEngine
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.sharded_engine import ShardedLocalBus
from repro.core.type_registry import type_name
from repro.core.xml_types import XmlEventCodec
from repro.serialization.object_codec import ObjectCodec

#: Identifier of the JSON document layout written by :func:`run_perf_suite`.
SCHEMA = "repro-bench/v1"

#: Comparison names every suite run must produce (schema contract).  The set
#: grows as PRs add sections; older committed BENCH_*.json files are held to
#: the baseline set they were generated under (see BASELINE_COMPARISON_NAMES).
COMPARISON_NAMES = (
    "codec_encode",
    "codec_decode",
    "xml_parse",
    "xml_roundtrip",
    "fanout_1",
    "fanout_10",
    "fanout_100",
    "subscribe_churn",
    "filtered_fanout",
    "mt_fanout",
    "intra_shard_fanout",
    "async_fanout",
)

#: The PR-1 comparison set: the minimum every historical repro-bench/v1
#: document contains.
BASELINE_COMPARISON_NAMES = (
    "codec_encode",
    "codec_decode",
    "xml_roundtrip",
    "fanout_1",
    "fanout_10",
    "fanout_100",
)

#: Scenario names every suite run must produce (schema contract).
SCENARIO_NAMES = (
    "figure19_sr_tps",
    "figure20_sr_tps",
    "lossy_publish",
    "reshard_live",
    "history_replay",
)

#: The pre-PR-6 scenario set: the minimum every historical repro-bench/v1
#: document contains (``lossy_publish`` arrived with the reliability layer).
BASELINE_SCENARIO_NAMES = ("figure19_sr_tps", "figure20_sr_tps")

#: Iteration counts per profile.  ``full`` is what BENCH_*.json files are
#: generated with; ``quick`` is for interactive runs; ``smoke`` exists so the
#: test suite can execute every code path in well under a second.
PROFILES: Dict[str, Dict[str, Any]] = {
    "full": {
        "repeats": 7,
        "codec_iterations": 20_000,
        "xml_iterations": 2_000,
        "fanout_iterations": {1: 5_000, 10: 1_000, 100: 400},
        "churn_iterations": 4_000,
        "churn_resident": 50,
        "filtered_iterations": 1_000,
        "filtered_subscribers": 200,
        "mt_publishers": 4,
        "mt_events": 75,
        "mt_subscribers": 2,
        "mt_io_s": 50e-6,
        "async_publishers": 4,
        "async_events": 75,
        "async_subscribers": 2,
        "async_io_s": 50e-6,
        "intra_shards": 4,
        "intra_keys": 16,
        "intra_events": 240,
        "intra_subscribers": 2,
        "intra_io_s": 50e-6,
        "figure19_events": 100,
        "figure20_duration": 10.0,
        "figure20_events": 2_000,
        "lossy_events": 60,
        "reshard_shards": 4,
        "reshard_keys": 24,
        "reshard_events": 4_000,
        "history_events": 20_000,
    },
    "quick": {
        "repeats": 3,
        "codec_iterations": 4_000,
        "xml_iterations": 400,
        "fanout_iterations": {1: 800, 10: 200, 100: 30},
        "churn_iterations": 800,
        "churn_resident": 50,
        "filtered_iterations": 200,
        "filtered_subscribers": 100,
        "mt_publishers": 4,
        "mt_events": 30,
        "mt_subscribers": 2,
        "mt_io_s": 50e-6,
        "async_publishers": 4,
        "async_events": 30,
        "async_subscribers": 2,
        "async_io_s": 50e-6,
        "intra_shards": 4,
        "intra_keys": 16,
        "intra_events": 96,
        "intra_subscribers": 2,
        "intra_io_s": 50e-6,
        "figure19_events": 40,
        "figure20_duration": 4.0,
        "figure20_events": 400,
        "lossy_events": 20,
        "reshard_shards": 4,
        "reshard_keys": 24,
        "reshard_events": 1_000,
        "history_events": 4_000,
    },
    "smoke": {
        "repeats": 1,
        "codec_iterations": 30,
        "xml_iterations": 10,
        "fanout_iterations": {1: 10, 10: 4, 100: 2},
        "churn_iterations": 10,
        "churn_resident": 5,
        "filtered_iterations": 10,
        "filtered_subscribers": 4,
        "mt_publishers": 2,
        "mt_events": 3,
        "mt_subscribers": 1,
        "mt_io_s": 100e-6,
        "async_publishers": 2,
        "async_events": 3,
        "async_subscribers": 1,
        "async_io_s": 100e-6,
        "intra_shards": 2,
        "intra_keys": 8,
        "intra_events": 8,
        "intra_subscribers": 1,
        "intra_io_s": 100e-6,
        "figure19_events": 10,
        "figure20_duration": 1.0,
        "figure20_events": 10,
        "lossy_events": 4,
        "reshard_shards": 2,
        "reshard_keys": 8,
        "reshard_events": 40,
        "history_events": 50,
    },
}

#: Link drop probabilities exercised by the ``lossy_publish`` scenario.
LOSSY_DROP_RATES = (0.0, 0.01, 0.05)


@dataclass
class Comparison:
    """Baseline-versus-fast timing of one hot-path operation."""

    name: str
    baseline_per_op_us: float
    fast_per_op_us: float
    iterations: int
    repeats: int

    @property
    def speedup(self) -> float:
        """How many times faster the fast path is than the seed replica."""
        if self.fast_per_op_us <= 0:
            return 0.0
        return self.baseline_per_op_us / self.fast_per_op_us

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "baseline_per_op_us": round(self.baseline_per_op_us, 4),
            "fast_per_op_us": round(self.fast_per_op_us, 4),
            "speedup": round(self.speedup, 3),
            "iterations": self.iterations,
            "repeats": self.repeats,
        }


def _time_per_op(fn: Callable[[], Any], iterations: int, repeats: int) -> float:
    """Best-of-``repeats`` mean time per call of ``fn``, in microseconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / iterations)
    return best * 1e6


def _time_pair(
    baseline_fn: Callable[[], Any],
    fast_fn: Callable[[], Any],
    iterations: int,
    repeats: int,
) -> "tuple[float, float]":
    """Best-of-``repeats`` per-op times for both paths, in microseconds.

    The two closures are timed in *alternating* repeats so transient machine
    noise (CPU contention, frequency scaling) hits both sides equally and the
    recorded speedup ratio stays stable even on busy hosts.
    """
    best_baseline = float("inf")
    best_fast = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            baseline_fn()
        best_baseline = min(best_baseline, (time.perf_counter() - start) / iterations)
        start = time.perf_counter()
        for _ in range(iterations):
            fast_fn()
        best_fast = min(best_fast, (time.perf_counter() - start) / iterations)
    return best_baseline * 1e6, best_fast * 1e6


def _sample_event(index: int = 0) -> SkiRental:
    return SkiRental(f"shop-{index}", 100.0 + index, "Salomon", 7)


# ------------------------------------------------------------------- codecs


def _bench_codec(profile: Dict[str, Any]) -> List[Comparison]:
    iterations = profile["codec_iterations"]
    repeats = profile["repeats"]
    event = _sample_event()
    fast = ObjectCodec()
    baseline = ObjectCodec(compiled=False)
    for codec in (fast, baseline):
        codec.register(SkiRental, "bench.SkiRental")
    payload = fast.encode(event)
    assert payload == baseline.encode(event)  # byte-compatibility sanity
    encode_baseline, encode_fast = _time_pair(
        lambda: baseline.encode(event), lambda: fast.encode(event), iterations, repeats
    )
    decode_baseline, decode_fast = _time_pair(
        lambda: baseline.decode(payload), lambda: fast.decode(payload), iterations, repeats
    )
    return [
        Comparison("codec_encode", encode_baseline, encode_fast, iterations, repeats),
        Comparison("codec_decode", decode_baseline, decode_fast, iterations, repeats),
    ]


def _parse_corpus() -> List[str]:
    """Representative wire documents for the parser benchmark.

    One encoded XML event (the TPS hot path), one peer advertisement
    (discovery/publish traffic) and one discovery response embedding three
    advertisement documents as text (the largest documents the stack
    routinely parses).
    """
    from repro.jxta.advertisement import PeerAdvertisement
    from repro.serialization.xml_codec import XmlElement, to_xml

    event_doc = XmlEventCodec().encode(_sample_event()).decode("utf-8")
    advertisement = PeerAdvertisement(
        name="bench-peer",
        endpoints=["tcp://host-0", "http://host-0"],
        is_rendezvous=True,
    )
    adv_doc = advertisement.to_document()
    response = XmlElement("DiscoveryResponse")
    response.add("Kind", "2")
    response.add("QueryId", "bench/q1")
    for _ in range(3):
        response.add("Adv", adv_doc)
    return [event_doc, adv_doc, to_xml(response, declaration=False)]


def _bench_xml_parse(profile: Dict[str, Any]) -> Comparison:
    from repro.serialization.xml_codec import parse_xml

    iterations = profile["xml_iterations"]
    repeats = profile["repeats"]
    corpus = _parse_corpus()
    for document in corpus:  # tree-equality sanity before timing
        assert parse_xml(document) == parse_xml(document, fast=False)

    def run_fast() -> None:
        for document in corpus:
            parse_xml(document)

    def run_legacy() -> None:
        for document in corpus:
            parse_xml(document, fast=False)

    baseline_us, fast_us = _time_pair(run_legacy, run_fast, iterations, repeats)
    return Comparison("xml_parse", baseline_us, fast_us, iterations, repeats)


def _bench_xml(profile: Dict[str, Any]) -> Comparison:
    iterations = profile["xml_iterations"]
    repeats = profile["repeats"]
    event = _sample_event()
    cached = XmlEventCodec()
    uncached = XmlEventCodec(cache_descriptions=False, cache_documents=False)
    for codec in (cached, uncached):
        codec.register(SkiRental)
    assert cached.encode(event) == uncached.encode(event)
    baseline_us, fast_us = _time_pair(
        lambda: uncached.decode(uncached.encode(event)),
        lambda: cached.decode(cached.encode(event)),
        iterations,
        repeats,
    )
    return Comparison("xml_roundtrip", baseline_us, fast_us, iterations, repeats)


# ------------------------------------------------------------------ fan-out


def _seed_publish(publisher: LocalTPSEngine, event: Any) -> "PublishReceipt":
    """A faithful replica of the seed's LocalTPSEngine.publish hot path.

    Reproduces, step for step, what the pre-optimisation implementation did
    per publish: the publishable check, the codec round-trip, a fresh list
    copy of the hierarchy's engines, a per-engine ``isinstance`` re-check, a
    fresh subscription-list copy per dispatched event, and the receipt.  Run
    against engines whose registries use the generic (``compiled=False``)
    codec, this *is* the seed hot path, which makes it the recorded baseline.
    """
    from repro.core.interface import PublishReceipt

    registry = publisher.registry
    registry.check_publishable(event)
    copy = registry.decode(registry.encode(event))
    bus = publisher.bus
    delivered = 0
    for engine in list(bus._engines.get(registry.advertised_name, ())):
        if engine is publisher:
            continue
        manager = engine.subscriber_manager
        if manager.empty:
            continue
        if not engine.registry.conforms(copy):
            continue
        if engine.criteria is not None and not engine.criteria.matches_event(copy):
            continue
        engine._received.append(copy)
        for subscription in list(manager._subscriptions):
            try:
                subscription.callback.handle(copy)
            except BaseException as error:  # noqa: BLE001 - routed to the handler
                try:
                    subscription.exception_handler.handle(error)
                except BaseException:  # noqa: BLE001  # repro-lint: disable=RL005 - raw-dispatch baseline mirrors engine swallow
                    pass
        delivered += 1
    publisher._sent.append(event)
    return PublishReceipt(
        cpu_time=0.0, completion_time=0.0, pipes=1, wire_receipts=[delivered]
    )


def _build_fanout(subscribers: int, *, compiled: bool) -> LocalTPSEngine:
    bus = LocalBus()
    publisher = LocalTPSEngine(
        SkiRental, bus=bus, codec=ObjectCodec(compiled=compiled)
    )
    for _ in range(subscribers):
        engine = LocalTPSEngine(
            SkiRental, bus=bus, codec=ObjectCodec(compiled=compiled)
        )
        engine.subscribe(lambda event: None)
    return publisher


def _bench_fanout(profile: Dict[str, Any]) -> List[Comparison]:
    repeats = profile["repeats"]
    comparisons: List[Comparison] = []
    for subscribers, iterations in sorted(profile["fanout_iterations"].items()):
        event = _sample_event()
        fast_publisher = _build_fanout(subscribers, compiled=True)
        seed_publisher = _build_fanout(subscribers, compiled=False)

        def run_fast() -> None:
            fast_publisher.publish(event)

        def run_seed() -> None:
            _seed_publish(seed_publisher, event)

        baseline_us, fast_us = _time_pair(run_seed, run_fast, iterations, repeats)
        comparisons.append(
            Comparison(f"fanout_{subscribers}", baseline_us, fast_us, iterations, repeats)
        )
        # The engines' received/sent histories grew during timing; free them.
        for publisher in (fast_publisher, seed_publisher):
            for engine in publisher.bus.engines_for(publisher.registry.root):
                engine._received.clear()
                engine._sent.clear()
    return comparisons


# --------------------------------------------------- v2 subscription paths


def _bench_subscribe_churn(profile: Dict[str, Any]) -> Comparison:
    """One subscribe + cancel cycle against an interface with resident load.

    The fast path is the v2 handle: ``subscribe()`` returns a
    ``SubscriptionHandle`` whose ``cancel()`` discards the exact subscription
    objects by identity.  The baseline is the Figure 8 cycle the seed API
    forced: ``subscribe(cb)`` then ``unsubscribe(cb)``, a matching scan that
    calls ``Subscription.matches`` on every resident subscription.
    """
    iterations = profile["churn_iterations"]
    repeats = profile["repeats"]
    resident = profile["churn_resident"]
    engine = LocalTPSEngine(SkiRental, bus=LocalBus())
    for _ in range(resident):
        engine.subscribe(lambda event: None)

    def churn_fast() -> None:
        engine.subscribe(_sink).cancel()

    def churn_seed() -> None:
        engine.subscribe(_sink)
        engine.unsubscribe(_sink)

    baseline_us, fast_us = _time_pair(churn_seed, churn_fast, iterations, repeats)
    return Comparison("subscribe_churn", baseline_us, fast_us, iterations, repeats)


def _sink(event: Any) -> None:
    """Shared no-op callback (a named function so churn matching is fair)."""


def _cheap(offer: Any) -> bool:
    """The filtered-fanout predicate; rejects 15 of the 16 corpus events."""
    return offer.price < 50.0


def _build_filtered(subscribers: int, *, pushdown: bool) -> LocalTPSEngine:
    """A publisher plus N subscribers that each filter with ``_cheap``.

    The post-dispatch side subscribes the pre-v2 idiom: a plain callable
    that applies the predicate inside the callback body (adapted through
    ``FunctionCallback``, exactly as application code wrote it before
    ``where`` existed).
    """
    bus = LocalBus()
    publisher = LocalTPSEngine(SkiRental, bus=bus)
    for _ in range(subscribers):
        engine = LocalTPSEngine(SkiRental, bus=bus)
        if pushdown:
            engine.subscription(_sink).where(_cheap).start()
        else:
            engine.subscribe(lambda event: _sink(event) if _cheap(event) else None)
    return publisher


def _bench_filtered_fanout(profile: Dict[str, Any]) -> Comparison:
    """Publish with per-subscription filtering: push-down vs post-dispatch.

    Both sides publish the identical 16-event corpus (1 accepted, 15
    rejected by ``_cheap``) to the same number of subscribers.  The fast side
    carries the predicate in the dispatch rows (v2 ``where`` push-down), so a
    rejected event costs one predicate call; the baseline filters inside the
    subscribed callable, so every rejected event still pays the dispatch
    try/except frame plus the adapter and wrapper calls before the predicate
    even runs.
    """
    import itertools

    iterations = profile["filtered_iterations"]
    repeats = profile["repeats"]
    subscribers = profile["filtered_subscribers"]
    corpus = [_sample_event(index) for index in range(16)]
    corpus[0] = SkiRental("shop-cheap", 10.0, "Salomon", 7)  # the one match
    fast_publisher = _build_filtered(subscribers, pushdown=True)
    seed_publisher = _build_filtered(subscribers, pushdown=False)
    fast_events = itertools.cycle(corpus)
    seed_events = itertools.cycle(corpus)

    def run_fast() -> None:
        fast_publisher.publish(next(fast_events))

    def run_seed() -> None:
        seed_publisher.publish(next(seed_events))

    baseline_us, fast_us = _time_pair(run_seed, run_fast, iterations, repeats)
    for publisher in (fast_publisher, seed_publisher):
        for engine in publisher.bus.engines_for(publisher.registry.root):
            engine._received.clear()
            engine._sent.clear()
    return Comparison("filtered_fanout", baseline_us, fast_us, iterations, repeats)


# ------------------------------------------------------- concurrent fan-out


class _LockedLocalBus(LocalBus):
    """The naive thread-safe bus: one lock held across the whole delivery.

    This is the alternative the concurrent-bus design rejects -- guard
    ``publish`` with a single mutex instead of reading immutable snapshots.
    It is correct, but every hierarchy's delivery (including whatever the
    subscribers do per event) serialises behind one lock, so it is the
    recorded ``mt_fanout`` baseline.
    """

    def __init__(self) -> None:
        super().__init__()
        self._publish_lock = threading.Lock()

    def publish(self, publisher: LocalTPSEngine, event: Any) -> int:
        with self._publish_lock:
            return super().publish(publisher, event)


#: Candidate event types for the multi-threaded benchmark, one hierarchy
#: each.  More candidates than publisher threads so the greedy selection in
#: :func:`_mt_types` can cover every shard of the benchmark bus (CRC-32
#: placement is stable but arbitrary).
_MT_EVENT_TYPES = tuple(
    dataclasses.make_dataclass(f"_MtEvent{index}", [("price", float, 0.0)])
    for index in range(12)
)


def _mt_types(publishers: int) -> List[type]:
    """``publishers`` event types whose hierarchies land on distinct shards.

    Greedy, deterministic pick from the candidate pool; if the pool cannot
    cover every shard (it can, for the committed profiles) the remainder is
    filled with unused candidates and the benchmark merely loses some
    parallelism -- it never breaks.
    """
    # placement="modn" pins the pre-PR 7 CRC-32-mod-N assignment, keeping
    # this benchmark's workload bit-identical to the recorded BENCH history.
    probe = ShardedLocalBus(shards=publishers, placement="modn")
    chosen: List[type] = []
    used: "set[int]" = set()
    for cls in _MT_EVENT_TYPES:
        index = probe.shard_index(type_name(cls))
        if index not in used:
            used.add(index)
            chosen.append(cls)
            if len(chosen) == publishers:
                return chosen
    for cls in _MT_EVENT_TYPES:
        if len(chosen) == publishers:
            break
        if cls not in chosen:
            chosen.append(cls)
    return chosen


def _bench_mt_fanout(profile: Dict[str, Any]) -> Comparison:
    """N-hierarchy concurrent fan-out: sharded ``publish_all`` vs locked bus.

    Each subscriber callback performs a short GIL-releasing wait
    (``mt_io_s``), standing in for the per-event I/O real subscribers do
    (socket writes, disk appends, handing off to a blocking
    ``EventStream``).  Both sides deliver the identical pre-built event
    batches at the bus level (no codec work on either side), so the
    recorded speedup isolates the bus architecture:

    * baseline -- N publisher threads over one :class:`_LockedLocalBus`,
      the naive thread-safe design, where every hierarchy's subscriber
      waits serialise behind the single delivery lock;
    * fast -- one ``publish_all`` batch over a
      :class:`~repro.core.sharded_engine.ShardedLocalBus` with one shard
      per hierarchy: the executor's N workers are the publisher threads,
      each shard's lock-free delivery runs independently, and the waits
      overlap.  (The same cross-shard path backs ``tps.publish_many``;
      there it degenerates to the inline single-shard case because one
      interface is one hierarchy.)
    """
    publishers = profile["mt_publishers"]
    events = profile["mt_events"]
    subscribers = profile["mt_subscribers"]
    io_wait = profile["mt_io_s"]
    repeats = profile["repeats"]
    types = _mt_types(publishers)
    batches = {cls: [cls(float(index)) for index in range(events)] for cls in types}

    def build(bus: Any) -> List[LocalTPSEngine]:
        built = []
        for cls in types:
            publisher = LocalTPSEngine(cls, bus=bus)
            for _ in range(subscribers):
                engine = LocalTPSEngine(cls, bus=bus)
                engine.subscribe(lambda event: time.sleep(io_wait))
            built.append(publisher)
        return built

    locked_bus = _LockedLocalBus()
    locked_engines = build(locked_bus)
    sharded_bus = ShardedLocalBus(shards=publishers, placement="modn")
    sharded_engines = build(sharded_bus)

    def run_locked() -> float:
        def work(publisher: LocalTPSEngine, cls: type) -> None:
            publish = locked_bus.publish
            for event in batches[cls]:
                publish(publisher, event)

        threads = [
            threading.Thread(target=work, args=(publisher, cls), daemon=True)
            for publisher, cls in zip(locked_engines, types)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - start

    def run_sharded() -> float:
        jobs = [
            (publisher, batches[cls][index])
            for index in range(events)
            for publisher, cls in zip(sharded_engines, types)
        ]
        start = time.perf_counter()
        sharded_bus.publish_all(jobs)
        return time.perf_counter() - start

    total_events = publishers * events
    best_locked = float("inf")
    best_sharded = float("inf")
    for _ in range(repeats):
        best_locked = min(best_locked, run_locked())
        best_sharded = min(best_sharded, run_sharded())
        for engines in (locked_engines, sharded_engines):
            for publisher in engines:
                for engine in publisher.bus.engines_for(publisher.registry.root):
                    engine._received.clear()
    sharded_bus.shutdown()
    return Comparison(
        "mt_fanout",
        best_locked / total_events * 1e6,
        best_sharded / total_events * 1e6,
        total_events,
        repeats,
    )


def _bench_async_fanout(profile: Dict[str, Any]) -> Comparison:
    """Coroutine fan-out on one event loop vs threaded locked-bus fan-out.

    The ``mt_fanout`` workload shape (N publisher hierarchies, each with
    ``async_subscribers`` subscribers performing a short I/O wait per
    event), contrasting the two concurrency models at identical bus-level
    delivery (pre-built event batches, no codec work on either side):

    * baseline -- N publisher *threads* over one :class:`_LockedLocalBus`,
      every subscriber's ``time.sleep`` wait serialising behind the single
      delivery lock (the same baseline leg ``mt_fanout`` uses);
    * fast -- N publisher *tasks* on one event loop over an
      :class:`~repro.core.async_engine.AsyncLocalBus` with
      ``dispatch="concurrent"``: subscribers are coroutines awaiting
      ``asyncio.sleep``, so one event's subscriber waits overlap and the
      loop interleaves the publishers' awaitable backpressure instead of
      parking threads.

    Engine construction is loop-confined, so the async side rebuilds its
    engines inside each repeat's fresh ``asyncio.run`` loop; the clock
    starts after the build on both sides.
    """
    publishers = profile["async_publishers"]
    events = profile["async_events"]
    subscribers = profile["async_subscribers"]
    io_wait = profile["async_io_s"]
    repeats = profile["repeats"]
    types = _mt_types(publishers)
    batches = {cls: [cls(float(index)) for index in range(events)] for cls in types}

    locked_bus = _LockedLocalBus()
    locked_engines = []
    for cls in types:
        publisher = LocalTPSEngine(cls, bus=locked_bus)
        for _ in range(subscribers):
            engine = LocalTPSEngine(cls, bus=locked_bus)
            engine.subscribe(lambda event: time.sleep(io_wait))
        locked_engines.append(publisher)

    def run_locked() -> float:
        def work(publisher: LocalTPSEngine, cls: type) -> None:
            publish = locked_bus.publish
            for event in batches[cls]:
                publish(publisher, event)

        threads = [
            threading.Thread(target=work, args=(publisher, cls), daemon=True)
            for publisher, cls in zip(locked_engines, types)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - start

    def run_async() -> float:
        async def main() -> float:
            bus = AsyncLocalBus(dispatch="concurrent")
            engines = []
            for cls in types:
                publisher = AsyncTPSEngine(cls, bus=bus)
                for _ in range(subscribers):
                    engine = AsyncTPSEngine(cls, bus=bus)

                    async def wait(event: Any) -> None:
                        await asyncio.sleep(io_wait)

                    engine.subscribe(wait)
                engines.append(publisher)

            async def work(publisher: AsyncTPSEngine, cls: type) -> None:
                publish = bus.publish
                for event in batches[cls]:
                    await publish(publisher, event)

            start = time.perf_counter()
            await asyncio.gather(
                *(work(publisher, cls) for publisher, cls in zip(engines, types))
            )
            return time.perf_counter() - start

        return asyncio.run(main())

    total_events = publishers * events
    best_locked = float("inf")
    best_async = float("inf")
    for _ in range(repeats):
        best_locked = min(best_locked, run_locked())
        best_async = min(best_async, run_async())
        for publisher in locked_engines:
            for engine in locked_bus.engines_for(publisher.registry.root):
                engine._received.clear()
    return Comparison(
        "async_fanout",
        best_locked / total_events * 1e6,
        best_async / total_events * 1e6,
        total_events,
        repeats,
    )


#: The intra-hierarchy benchmark's single hot event type: one hierarchy,
#: sharded by the ``key`` attribute's value.
_HotEvent = dataclasses.make_dataclass(
    "_HotShardEvent", [("key", str, ""), ("price", float, 0.0)]
)


def _bench_intra_shard_fanout(profile: Dict[str, Any]) -> Comparison:
    """Single hot hierarchy: content-keyed N-shard bus vs the 1-shard baseline.

    The ``mt_fanout``-style workload (subscribers perform a short
    GIL-releasing wait per event, standing in for socket writes and disk
    appends) applied to the shape ``mt_fanout`` cannot cover: *every* event
    belongs to one hierarchy, so root-partitioned sharding degenerates to a
    single shard and the whole fan-out serialises.  Content-keyed
    partitioning (``partition="content"``, ``content_key="key"``) spreads
    the hierarchy across N shards by event key; ``publish_all`` then runs
    the per-key shard groups on the executor's threads concurrently while
    preserving per-key order.  Both sides run the identical batch through
    the identical ``ShardedLocalBus.publish_all`` entry point -- the only
    difference is the partition: N content shards (fast) versus the 1-shard
    bus (baseline, equivalent to an unsharded hierarchy), so the recorded
    speedup isolates intra-hierarchy sharding itself.
    """
    shards = profile["intra_shards"]
    keys = profile["intra_keys"]
    events = profile["intra_events"]
    subscribers = profile["intra_subscribers"]
    io_wait = profile["intra_io_s"]
    repeats = profile["repeats"]
    batch = [_HotEvent(key=f"key-{index % keys}", price=float(index)) for index in range(events)]

    def build(bus: ShardedLocalBus) -> LocalTPSEngine:
        publisher = LocalTPSEngine(_HotEvent, bus=bus)
        for _ in range(subscribers):
            engine = LocalTPSEngine(_HotEvent, bus=bus)
            engine.subscribe(lambda event: time.sleep(io_wait))
        return publisher

    # placement="modn" keeps the key->shard grouping identical to the
    # recorded BENCH history (ring placement would regroup the corpus).
    sharded_bus = ShardedLocalBus(
        shards=shards, partition="content", content_key="key", placement="modn"
    )
    single_bus = ShardedLocalBus(shards=1, placement="modn")
    sharded_publisher = build(sharded_bus)
    single_publisher = build(single_bus)

    def run(bus: ShardedLocalBus, publisher: LocalTPSEngine) -> float:
        jobs = [(publisher, event) for event in batch]
        start = time.perf_counter()
        bus.publish_all(jobs)
        return time.perf_counter() - start

    best_single = float("inf")
    best_sharded = float("inf")
    for _ in range(repeats):
        best_single = min(best_single, run(single_bus, single_publisher))
        best_sharded = min(best_sharded, run(sharded_bus, sharded_publisher))
        for publisher in (single_publisher, sharded_publisher):
            for engine in publisher.bus.engines_for(publisher.registry.root):
                engine._received.clear()
    sharded_bus.shutdown()
    single_bus.shutdown()
    return Comparison(
        "intra_shard_fanout",
        best_single / events * 1e6,
        best_sharded / events * 1e6,
        events,
        repeats,
    )


# ---------------------------------------------------------------- scenarios


def _bench_scenarios(profile: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Wall-clock cost of the simulated Figure 19/20 experiments (SR-TPS)."""
    from repro.bench.figures import run_publisher_throughput, run_subscriber_throughput
    from repro.bench.scenario import SR_TPS

    scenarios: List[Dict[str, Any]] = []
    events = profile["figure19_events"]
    start = time.perf_counter()
    series = run_publisher_throughput(
        SR_TPS, subscribers=1, events=events, epochs=min(10, events)
    )
    wall = time.perf_counter() - start
    scenarios.append(
        {
            "name": "figure19_sr_tps",
            "wall_clock_s": round(wall, 4),
            "events": events,
            "mean_rate_events_per_s": round(series.mean_rate, 3),
        }
    )
    duration = profile["figure20_duration"]
    per_publisher = profile["figure20_events"]
    start = time.perf_counter()
    series20 = run_subscriber_throughput(
        SR_TPS, publishers=1, duration=duration, events_per_publisher=per_publisher
    )
    wall = time.perf_counter() - start
    scenarios.append(
        {
            "name": "figure20_sr_tps",
            "wall_clock_s": round(wall, 4),
            "events_per_publisher": per_publisher,
            "duration_virtual_s": duration,
            "received_total": sum(series20.per_second),
        }
    )
    scenarios.append(_bench_lossy_publish(profile))
    scenarios.append(_bench_reshard_live(profile))
    scenarios.append(_bench_history_replay(profile))
    return scenarios


def _bench_history_replay(profile: Dict[str, Any]) -> Dict[str, Any]:
    """Append and replay throughput of the two history stores (PR 10).

    Same event corpus through a :class:`~repro.core.history.RingHistory`
    (the paper-faithful in-memory bound) and a durable
    :class:`~repro.storage.log.LogHistory` (length-prefixed codec records,
    group-commit fsync): append the full batch, then replay it with
    ``since(0)`` -- the exact path a resumable stream or a catching-up peer
    takes.  The ratio quantifies what durability costs: the log pays codec
    encode + file I/O per append and codec decode per replayed record,
    where the ring only rotates a deque.
    """
    import os
    import tempfile

    from repro.core.history import RingHistory
    from repro.core.type_registry import TypeRegistry
    from repro.storage.log import LogHistory

    events = profile["history_events"]
    batch = [
        _HotEvent(key=f"key-{index % 16}", price=float(index))
        for index in range(events)
    ]
    codec = TypeRegistry(_HotEvent).codec

    ring = RingHistory(events)
    start = time.perf_counter()
    for event in batch:
        ring.append(event)
    ring_append_wall = time.perf_counter() - start
    start = time.perf_counter()
    ring_replayed = len(ring.since(0))
    ring_replay_wall = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-bench-history-") as tmp:
        log = LogHistory(
            os.path.join(tmp, "sent.log"),
            encode=codec.encode,
            decode=codec.decode,
        )
        start = time.perf_counter()
        for event in batch:
            log.append(event)
        log.sync()
        log_append_wall = time.perf_counter() - start
        start = time.perf_counter()
        log_replayed = len(log.since(0))
        log_replay_wall = time.perf_counter() - start
        log.close()
    assert ring_replayed == log_replayed == events, "a history store lost records"
    return {
        "name": "history_replay",
        "wall_clock_s": round(
            ring_append_wall + ring_replay_wall + log_append_wall + log_replay_wall,
            4,
        ),
        "events": events,
        "ring_append_events_per_s": round(events / ring_append_wall, 1),
        "ring_replay_events_per_s": round(events / ring_replay_wall, 1),
        "log_append_events_per_s": round(events / log_append_wall, 1),
        "log_replay_events_per_s": round(events / log_replay_wall, 1),
        "replay_slowdown_log_vs_ring": round(log_replay_wall / ring_replay_wall, 3),
    }


def _bench_reshard_live(profile: Dict[str, Any]) -> Dict[str, Any]:
    """Publish throughput during a live ``add_shard`` versus steady state.

    One content-keyed ring bus (the PR 7 elastic default), one subscriber,
    one publisher streaming the same key corpus twice: first against a
    fixed topology (steady), then again while a background thread grows the
    bus by one shard mid-stream (the drain-then-switch migration pauses
    only the moved keys, so throughput should dip, not stop).  The scenario
    also records the placement-layer movement bound in action: how many of
    the corpus keys the migration actually re-homed (consistent hashing
    promises ~1/(N+1) of them; mod-N rehashing would move ~N/(N+1)).
    """
    from repro.core.placement import moved_keys

    shards = profile["reshard_shards"]
    keys = profile["reshard_keys"]
    events = profile["reshard_events"]
    bus = ShardedLocalBus(shards=shards, partition="content", content_key="key")
    publisher = LocalTPSEngine(_HotEvent, bus=bus)
    subscriber = LocalTPSEngine(_HotEvent, bus=bus)
    delivered = [0]
    subscriber.subscribe(lambda event: delivered.__setitem__(0, delivered[0] + 1))
    corpus = [f"key-{index}" for index in range(keys)]
    batch = [
        _HotEvent(key=corpus[index % keys], price=float(index))
        for index in range(events)
    ]

    def stream() -> float:
        start = time.perf_counter()
        for event in batch:
            bus.publish(publisher, event)
        return time.perf_counter() - start

    steady_wall = stream()

    placement_before = bus._epoch.placement
    go = threading.Event()
    done = threading.Event()

    def grow() -> None:
        go.wait()
        bus.add_shard()
        done.set()

    churn = threading.Thread(target=grow, name="reshard-bench", daemon=True)
    churn.start()
    start = time.perf_counter()
    for index, event in enumerate(batch):
        if index == events // 3:
            go.set()
        bus.publish(publisher, event)
    churn.join()
    reshard_wall = time.perf_counter() - start
    placement_after = bus._epoch.placement
    moved = moved_keys(placement_before, placement_after, corpus)
    bus.shutdown()
    assert delivered[0] == 2 * events, "resharding lost or duplicated deliveries"
    return {
        "name": "reshard_live",
        "wall_clock_s": round(steady_wall + reshard_wall, 4),
        "events": events,
        "shards_before": shards,
        "shards_after": shards + 1,
        "epochs": bus.epoch_number,
        "steady_events_per_s": round(events / steady_wall, 1),
        "reshard_events_per_s": round(events / reshard_wall, 1),
        "throughput_ratio": round(
            (events / reshard_wall) / (events / steady_wall), 3
        ),
        "keys_total": keys,
        "keys_moved": len(moved),
    }


def _bench_lossy_publish(profile: Dict[str, Any]) -> Dict[str, Any]:
    """Wall-clock cost of reliable publishing over increasingly lossy links.

    For each rate in :data:`LOSSY_DROP_RATES` the same small JXTA testbed
    (one rendez-vous, one publisher, one subscriber, ``reliable_delivery``
    on) publishes ``lossy_events`` events over a network whose links drop
    packets with that probability -- a seeded
    :class:`~repro.net.faults.FaultPlan`, so every run is deterministic.
    The per-rate figures record the ack/retry machinery's real cost growing
    with loss while delivery stays complete (retries climb, delivered stays
    at the published count, terminal failures stay at zero).
    """
    from repro.core import TPSConfig, TPSEngine
    from repro.jxta.platform import JxtaNetworkBuilder
    from repro.net.faults import FaultPlan, LinkFaults

    events = profile["lossy_events"]
    reliable = {"reliable_delivery": True}
    rates: List[Dict[str, Any]] = []
    total_wall = 0.0
    for rate in LOSSY_DROP_RATES:
        builder = JxtaNetworkBuilder(seed=2002)
        builder.add_rendezvous("rdv-0")
        pub_peer = builder.add_peer("bench-pub")
        publisher = TPSEngine(
            SkiRental,
            peer=pub_peer,
            config=TPSConfig(search_timeout=2.0, **reliable),
        ).new_interface("JXTA")
        builder.settle(rounds=8)
        sub_peer = builder.add_peer("bench-sub")
        subscriber = TPSEngine(
            SkiRental,
            peer=sub_peer,
            config=TPSConfig(search_timeout=6.0, create_if_missing=False, **reliable),
        ).new_interface("JXTA")
        inbox: List[Any] = []
        subscriber.subscribe(inbox.append)
        builder.settle(rounds=12)
        # The plan is installed only after discovery has converged, so every
        # publish (and its acks and retries) crosses the lossy link.
        builder.network.fault_plan = FaultPlan(seed=6, default=LinkFaults(drop=rate))
        start = time.perf_counter()
        for index in range(events):
            receipt = publisher.publish(SkiRental("bench", 10.0 + index, "b", 1))
            builder.simulator.run_until(
                max(builder.simulator.now, receipt.completion_time)
            )
        builder.settle(rounds=16)  # drain the retry window
        wall = time.perf_counter() - start
        total_wall += wall
        counters = pub_peer.metrics.counters()
        rates.append(
            {
                "drop_rate": rate,
                "wall_clock_s": round(wall, 4),
                "published": events,
                "delivered": len(inbox),
                "retries": counters.get("wire_retries", 0),
                "delivery_failures": counters.get("wire_delivery_failed", 0),
            }
        )
    return {
        "name": "lossy_publish",
        "wall_clock_s": round(total_wall, 4),
        "events_per_rate": events,
        "rates": rates,
    }


# -------------------------------------------------------------------- suite


def run_perf_suite(profile: str = "full") -> Dict[str, Any]:
    """Run every micro-benchmark and return the ``repro-bench/v1`` document."""
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; expected one of {sorted(PROFILES)}")
    settings = PROFILES[profile]
    comparisons = _bench_codec(settings)
    comparisons.append(_bench_xml_parse(settings))
    comparisons.append(_bench_xml(settings))
    comparisons.extend(_bench_fanout(settings))
    comparisons.append(_bench_subscribe_churn(settings))
    comparisons.append(_bench_filtered_fanout(settings))
    comparisons.append(_bench_mt_fanout(settings))
    comparisons.append(_bench_intra_shard_fanout(settings))
    comparisons.append(_bench_async_fanout(settings))
    return {
        "schema": SCHEMA,
        "version": __version__,
        "unix_time": round(time.time(), 3),
        "profile": profile,
        "comparisons": [comparison.to_json() for comparison in comparisons],
        "scenarios": _bench_scenarios(settings),
    }


def validate_document(
    document: Dict[str, Any],
    *,
    required_comparisons: "tuple[str, ...]" = COMPARISON_NAMES,
    required_scenarios: "tuple[str, ...]" = SCENARIO_NAMES,
) -> List[str]:
    """Return every schema violation in a suite document (empty = valid).

    ``required_comparisons`` and ``required_scenarios`` default to the full
    current sets; pass :data:`BASELINE_COMPARISON_NAMES` /
    :data:`BASELINE_SCENARIO_NAMES` when validating a historical
    ``BENCH_*.json`` generated before newer sections existed.
    """
    problems: List[str] = []
    if document.get("schema") != SCHEMA:
        problems.append(f"schema is {document.get('schema')!r}, expected {SCHEMA!r}")
    for key in ("version", "unix_time", "profile", "comparisons", "scenarios"):
        if key not in document:
            problems.append(f"missing top-level key {key!r}")
    names = [entry.get("name") for entry in document.get("comparisons", [])]
    for expected in required_comparisons:
        if expected not in names:
            problems.append(f"missing comparison {expected!r}")
    for entry in document.get("comparisons", []):
        for key in ("baseline_per_op_us", "fast_per_op_us", "speedup", "iterations", "repeats"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"comparison {entry.get('name')!r}: bad {key}={value!r}")
    scenario_names = [entry.get("name") for entry in document.get("scenarios", [])]
    for expected in required_scenarios:
        if expected not in scenario_names:
            problems.append(f"missing scenario {expected!r}")
    for entry in document.get("scenarios", []):
        wall = entry.get("wall_clock_s")
        if not isinstance(wall, (int, float)) or wall < 0:
            problems.append(f"scenario {entry.get('name')!r}: bad wall_clock_s={wall!r}")
    return problems


def format_suite(document: Dict[str, Any]) -> str:
    """A plain-text table of one suite document."""
    lines = [
        f"perf suite ({document['profile']}) -- repro {document['version']}",
        f"{'comparison':<18} {'seed us/op':>12} {'fast us/op':>12} {'speedup':>9}",
    ]
    for entry in document["comparisons"]:
        lines.append(
            f"{entry['name']:<18} {entry['baseline_per_op_us']:>12.2f} "
            f"{entry['fast_per_op_us']:>12.2f} {entry['speedup']:>8.2f}x"
        )
    for entry in document["scenarios"]:
        lines.append(f"{entry['name']:<18} wall-clock {entry['wall_clock_s']:.3f}s")
    return "\n".join(lines)


def write_suite(path: str, document: Optional[Dict[str, Any]] = None, *, profile: str = "full") -> Dict[str, Any]:
    """Run (unless given) and write a suite document to ``path``; returns it."""
    if document is None:
        document = run_perf_suite(profile)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return document


__all__ = [
    "BASELINE_COMPARISON_NAMES",
    "BASELINE_SCENARIO_NAMES",
    "COMPARISON_NAMES",
    "Comparison",
    "LOSSY_DROP_RATES",
    "PROFILES",
    "SCENARIO_NAMES",
    "SCHEMA",
    "format_suite",
    "run_perf_suite",
    "validate_document",
    "write_suite",
]
