"""History stores backing ``objects_received()`` / ``objects_sent()``.

The paper's Figure 8 exposes ``objectsReceived``/``objectsSent`` as the way a
peer inspects -- and catches up on -- the events that flowed through an
interface.  The seed backed them with *unbounded* plain lists, which is a
memory-growth bug on any long-running engine and a dead end for crash
recovery.  This module replaces the lists with a small storage abstraction:

* :class:`HistoryStore` -- the contract every engine's ``_received``/``_sent``
  slot satisfies: ``append`` assigns a **monotonically increasing offset**
  per store, ``snapshot`` renders the retained events as the paper's Vector,
  and ``since(offset)`` is the replay primitive consumed by resumable
  streams (``tps.stream(from_offset=...)``) and the wire catch-up protocol.
* :class:`RingHistory` -- the paper-faithful default: a bounded in-memory
  ring (``history_size`` events per direction).  Eviction advances
  ``start_offset``; offsets already handed out never change.
* :class:`~repro.storage.log.LogHistory` -- the durable flavour
  (``history="log"``): an append-only file of length-prefixed codec records
  with crash-safe truncated-tail recovery, living in :mod:`repro.storage`.

Every binding accepts the same three parameters (``history=``,
``history_size=``, ``history_path=``; the JXTA binding carries them as
:class:`~repro.core.jxta_engine.TPSConfig` fields) and builds its pair of
stores through :func:`make_history_pair`.

Thread safety: ``append`` is called from the :class:`LocalBus` delivery loop
on arbitrary publisher threads (the route rows cache the bound ``append``
exactly as they cached ``list.append``), so :class:`RingHistory` guards its
deque and offset counter with one small lock; reads take the same lock and
copy.  No store method ever calls out into user code under its lock.
"""

from __future__ import annotations

import abc
import threading
from collections import deque
from typing import Any, Callable, List, Optional, Tuple

from repro.core.bindings import BindingParam
from repro.core.exceptions import PSException

#: Default retention bound (events per direction) of the ring store.  Big
#: enough that the paper's measurement runs never evict; small enough that a
#: long-running engine's memory stays constant.
DEFAULT_HISTORY_SIZE = 4096

#: The recognised ``history=`` kinds.
HISTORY_KINDS = ("ring", "log")


class HistoryStore(abc.ABC):
    """One direction (received or sent) of an interface's event history.

    Offsets are assigned densely from 0 by ``append`` and are monotonically
    increasing for the lifetime of the store; ``since(offset)`` returns the
    retained entries at or after ``offset``, so a consumer that remembers
    the last offset it processed can resume exactly where it stopped
    (entries evicted from a bounded store are simply absent -- bounded
    retention is part of the contract, see ``start_offset``).
    """

    #: The ``history=`` kind this store implements (``"ring"`` or ``"log"``).
    kind: str = ""

    @abc.abstractmethod
    def append(self, event: Any, meta: Any = None) -> int:
        """Retain ``event`` (with optional codec-encodable ``meta``); returns
        the offset assigned to it."""

    @abc.abstractmethod
    def snapshot(self) -> List[Any]:
        """The retained events, oldest first (the paper's Vector copy)."""

    @abc.abstractmethod
    def since(self, offset: int) -> List[Tuple[int, Any, Any]]:
        """Retained ``(offset, event, meta)`` entries at or after ``offset``."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """How many events are retained right now."""

    @property
    @abc.abstractmethod
    def next_offset(self) -> int:
        """The offset the next ``append`` will assign."""

    @property
    @abc.abstractmethod
    def start_offset(self) -> int:
        """The oldest retained offset (== ``next_offset`` when empty).

        ``since(offset)`` with ``offset < start_offset`` cannot return the
        evicted entries; resuming consumers observe the gap as silently
        skipped offsets.
        """

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop every retained event (bench/test housekeeping)."""

    def close(self) -> None:
        """Release resources; reads stay valid, further appends raise."""


class RingHistory(HistoryStore):
    """Bounded in-memory history: a ring of the ``capacity`` newest events.

    ``capacity <= 0`` means unbounded (the seed's behaviour, kept reachable
    for tests that inspect complete histories).  Eviction advances
    :attr:`start_offset`; :meth:`clear` empties the ring but keeps the offset
    counter monotone, so offsets never repeat within one engine's life.
    """

    kind = "ring"

    __slots__ = ("capacity", "_entries", "_next", "_lock")

    def __init__(self, capacity: int = DEFAULT_HISTORY_SIZE) -> None:
        if isinstance(capacity, bool) or not isinstance(capacity, int):
            raise PSException(f"history_size must be an int, got {capacity!r}")
        self.capacity = capacity
        maxlen = capacity if capacity > 0 else None
        self._entries: "deque[Tuple[int, Any, Any]]" = deque(maxlen=maxlen)
        self._next = 0
        self._lock = threading.Lock()

    def append(self, event: Any, meta: Any = None) -> int:
        with self._lock:
            offset = self._next
            self._next = offset + 1
            self._entries.append((offset, event, meta))
            return offset

    def snapshot(self) -> List[Any]:
        with self._lock:
            return [event for _, event, _ in self._entries]

    def since(self, offset: int) -> List[Tuple[int, Any, Any]]:
        with self._lock:
            return [entry for entry in self._entries if entry[0] >= offset]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def next_offset(self) -> int:
        with self._lock:
            return self._next

    @property
    def start_offset(self) -> int:
        with self._lock:
            return self._entries[0][0] if self._entries else self._next

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RingHistory(capacity={self.capacity}, retained={len(self)}, "
            f"next_offset={self.next_offset})"
        )


def _check_history_kind(value: Any) -> Optional[str]:
    if value not in HISTORY_KINDS:
        return f"must be one of {HISTORY_KINDS}, got {value!r}"
    return None


def _check_history_size(value: Any) -> Optional[str]:
    # bool subclasses int; reject it the way the numeric binding params do.
    if isinstance(value, bool):
        return f"must be an int, got {value!r}"
    return None


#: The shared history parameter schema: every binding (LOCAL, SHARDED,
#: SHARDED+JXTA, ASYNC; the JXTA binding derives the same three from its
#: TPSConfig fields) accepts these and routes them to
#: :func:`make_history_pair`.
HISTORY_BINDING_PARAMS = (
    BindingParam(
        "history",
        (str,),
        "history store kind: 'ring' (bounded in-memory, the default) or "
        "'log' (append-only durable file, needs history_path)",
        _check_history_kind,
        default="ring",
    ),
    BindingParam(
        "history_size",
        (int,),
        "ring retention bound, events per direction; <= 0 means unbounded "
        f"(default {DEFAULT_HISTORY_SIZE})",
        _check_history_size,
        default=DEFAULT_HISTORY_SIZE,
    ),
    BindingParam(
        "history_path",
        (str,),
        "directory holding the 'log' store's received.log/sent.log files "
        "(required when history='log')",
        None,
        default="",
    ),
)


def make_history(
    kind: str,
    *,
    size: int = DEFAULT_HISTORY_SIZE,
    path: Optional[str] = None,
    encode: Optional[Callable[[Any], bytes]] = None,
    decode: Optional[Callable[[bytes], Any]] = None,
) -> HistoryStore:
    """Build one history store of the requested ``kind``.

    ``"ring"`` ignores ``path``/``encode``/``decode``; ``"log"`` requires all
    three (``path`` is the file the records are appended to).
    """
    if kind == "ring":
        return RingHistory(size)
    if kind == "log":
        if not path:
            raise PSException(
                "history='log' needs history_path= (the directory the "
                "append-only store writes to)"
            )
        if encode is None or decode is None:
            raise PSException("the 'log' history store needs encode/decode callables")
        from repro.storage.log import LogHistory

        return LogHistory(path, encode=encode, decode=decode)
    raise PSException(f"unknown history kind {kind!r}; expected one of {HISTORY_KINDS}")


def make_history_pair(
    kind: str,
    size: int,
    path: Optional[str],
    *,
    codec: Any = None,
) -> Tuple[HistoryStore, HistoryStore]:
    """The (received, sent) store pair an engine installs at construction.

    For ``kind="log"``, ``path`` names a directory (created if missing) that
    gets one ``received.log`` and one ``sent.log`` file; ``codec`` is the
    engine's :class:`~repro.serialization.object_codec.ObjectCodec`, used to
    serialise ``(event, meta)`` records.
    """
    if kind == "ring":
        return RingHistory(size), RingHistory(size)
    if kind == "log":
        if not path:
            raise PSException(
                "history='log' needs history_path= (the directory the "
                "append-only store writes to)"
            )
        if codec is None:
            raise PSException("the 'log' history store needs the engine's codec")
        import os

        os.makedirs(path, exist_ok=True)
        received = make_history(
            "log",
            path=os.path.join(path, "received.log"),
            encode=codec.encode,
            decode=codec.decode,
        )
        sent = make_history(
            "log",
            path=os.path.join(path, "sent.log"),
            encode=codec.encode,
            decode=codec.decode,
        )
        return received, sent
    raise PSException(f"unknown history kind {kind!r}; expected one of {HISTORY_KINDS}")


__all__ = [
    "DEFAULT_HISTORY_SIZE",
    "HISTORY_BINDING_PARAMS",
    "HISTORY_KINDS",
    "HistoryStore",
    "RingHistory",
    "make_history",
    "make_history_pair",
]
