"""Fixture-pair tests for the repro.analysis rule pack and engine plumbing.

Every rule gets at least one *bad* fixture (the rule must fire: a proven
true positive) and one *good* fixture (the idiomatic version of the same
code; the rule must stay silent: a proven true negative).  Then the engine
seams: inline suppressions, the baseline round-trip, scoping, the registry,
and the CLI exit-code contract.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    DEFAULT_PROFILE,
    LintConfigError,
    LintEngine,
    LintRule,
    PARSE_ERROR_RULE,
    RuleScope,
    get_rule,
    module_name,
    register_rule,
    registered_rules,
    unregister_rule,
    validate_document,
)
from repro.__main__ import main


ENGINE = LintEngine(DEFAULT_PROFILE)


def findings_for(source: str, module: str = "repro.net.fixture"):
    """Lint a dedented fixture as if it lived at ``module``."""
    run = ENGINE.lint_source(textwrap.dedent(source), module=module)
    return run.findings


def rules_fired(source: str, module: str = "repro.net.fixture"):
    return sorted({finding.rule for finding in findings_for(source, module)})


# --------------------------------------------------------------------- RL001


def test_rl001_flags_raw_acquire_and_release():
    fired = rules_fired(
        """
        def publish(self, event):
            self._lock.acquire()
            try:
                self._pending.append(event)
            finally:
                self._lock.release()
        """
    )
    assert "RL001" in fired


def test_rl001_silent_on_with_statement():
    assert "RL001" not in rules_fired(
        """
        def publish(self, event):
            with self._lock:
                self._pending.append(event)
        """
    )


# --------------------------------------------------------------------- RL002


def test_rl002_flags_callback_under_lock():
    findings = findings_for(
        """
        def dispatch(self, event):
            with self._lock:
                for subscription in self._subscriptions:
                    subscription.callback.handle(event)
        """
    )
    assert [f.rule for f in findings] == ["RL002"]
    assert "with <lock>:" in findings[0].message


def test_rl002_silent_when_snapshot_then_call_out():
    assert "RL002" not in rules_fired(
        """
        def dispatch(self, event):
            with self._lock:
                snapshot = tuple(self._subscriptions)
            for subscription in snapshot:
                subscription.callback.handle(event)
        """
    )


def test_rl002_function_defined_under_lock_is_not_a_call_out():
    # The nested function's body runs at call time, outside the lock.
    assert "RL002" not in rules_fired(
        """
        def build(self):
            with self._lock:
                def runner(event):
                    self.callback.handle(event)
                self._runner = runner
        """
    )


def test_rl002_non_lock_with_is_ignored():
    # ``with open(...)`` is not a lock: call-outs inside it are fine.
    assert "RL002" not in rules_fired(
        """
        def load(self):
            with open("state.json") as handle:
                return self.codec.dispatch(handle.read())
        """
    )


def test_rl002_executor_submit_under_lock():
    assert "RL002" in rules_fired(
        """
        def fan_out(self, groups):
            with self._executor_lock:
                futures = [self._executor.submit(group) for group in groups]
            return futures
        """
    )


def test_rl002_asyncio_handoff_under_lock():
    # Scheduling loop work while holding a lock couples the critical
    # section to the event loop's readiness -- the asyncio hand-off
    # surfaces are call-outs like any other.
    findings = findings_for(
        """
        def wake(self, fn):
            with self._lock:
                self._loop.call_soon(fn)
                self._task = self._loop.create_task(fn())
        """
    )
    assert [f.rule for f in findings] == ["RL002", "RL002"]


def test_rl002_asyncio_handoff_after_release_is_silent():
    assert "RL002" not in rules_fired(
        """
        def wake(self, fn):
            with self._lock:
                loop = self._loop
            loop.call_soon_threadsafe(fn)
            return loop.create_task(fn())
        """
    )


# --------------------------------------------------------------------- RL003


def test_rl003_flags_in_place_mutation_of_snapshot():
    fired = rules_fired(
        """
        def subscribe(self, handler):
            with self._lock:
                self._handlers.append(handler)
        """
    )
    assert "RL003" in fired


def test_rl003_flags_item_assignment_and_del():
    source = """
    def reroute(self, index, row):
        self.placement[index] = row
        del self.shards[index]
    """
    findings = findings_for(source)
    assert [f.rule for f in findings] == ["RL003", "RL003"]


def test_rl003_flags_rebind_to_list():
    assert "RL003" in rules_fired(
        """
        def subscribe(self, handler):
            with self._lock:
                self._handlers = list(self._handlers) + [handler]
        """
    )


def test_rl003_silent_on_tuple_rebind():
    assert "RL003" not in rules_fired(
        """
        def subscribe(self, handler):
            with self._lock:
                self._handlers = self._handlers + (handler,)
        """
    )


def test_rl003_other_attributes_unaffected():
    assert "RL003" not in rules_fired(
        """
        def track(self, token):
            self.inflight.append(token)
            self._pending[token.key] = token
        """
    )


# --------------------------------------------------------------------- RL004


def test_rl004_flags_wall_clock_and_global_random():
    source = """
    import time
    import random

    def jitter(self):
        return time.monotonic() + random.random()
    """
    findings = findings_for(source)
    assert [f.rule for f in findings].count("RL004") == 4  # 2 imports + 2 uses


def test_rl004_flags_datetime_now_and_uuid4():
    fired = rules_fired(
        """
        import uuid
        from datetime import datetime

        def stamp(self):
            return uuid.uuid4(), datetime.now()
        """
    )
    assert "RL004" in fired


def test_rl004_silent_on_injected_entropy():
    assert "RL004" not in rules_fired(
        """
        from repro.net.entropy import monotonic_clock, seeded_rng

        class NoiseSource:
            def __init__(self, seed=2002):
                self._rng = seeded_rng(seed)
                self._clock = monotonic_clock
        """
    )


def test_rl004_skips_type_checking_imports_and_annotations():
    assert "RL004" not in rules_fired(
        """
        from typing import TYPE_CHECKING, Optional

        if TYPE_CHECKING:
            import random

        def configure(rng: Optional["random.Random"] = None) -> "random.Random":
            return rng
        """
    )


def test_rl004_out_of_scope_packages_are_exempt():
    source = """
    import time

    def elapsed(start):
        return time.monotonic() - start
    """
    assert "RL004" in rules_fired(source, module="repro.net.fixture")
    # bench/ measures the real world; apps/ demo against it.
    assert "RL004" not in rules_fired(source, module="repro.bench.fixture")
    assert "RL004" not in rules_fired(source, module="repro.apps.fixture")


# --------------------------------------------------------------------- RL005


def test_rl005_flags_bare_except():
    assert "RL005" in rules_fired(
        """
        def deliver(self, event):
            try:
                self.sink(event)
            except:
                pass
        """
    )


def test_rl005_flags_broad_swallow():
    for body in ("pass", "return False", "return None", "return"):
        source = f"""
        def deliver(self, event):
            try:
                self.sink(event)
            except Exception:
                {body}
        """
        assert "RL005" in rules_fired(source), body
    assert "RL005" in rules_fired(
        """
        def drain(self, events):
            for event in events:
                try:
                    self.sink(event)
                except BaseException:
                    continue
        """
    )


def test_rl005_silent_when_error_is_routed_or_counted():
    assert "RL005" not in rules_fired(
        """
        def deliver(self, event):
            try:
                self.sink(event)
            except Exception as error:
                self.errors.increment()
        """
    )
    assert "RL005" not in rules_fired(
        """
        def parse(self, text):
            try:
                return int(text)
            except ValueError:
                return 0
        """
    )


# --------------------------------------------------------- suppressions


def test_line_pragma_silences_one_rule():
    run = ENGINE.lint_source(
        textwrap.dedent(
            """
            def deliver(self, event):
                try:
                    self.sink(event)
                except Exception:  # repro-lint: disable=RL005 - deliberate
                    pass
            """
        ),
        module="repro.net.fixture",
    )
    assert run.findings == []
    assert run.suppressed == 1


def test_line_pragma_only_covers_its_own_line():
    run = ENGINE.lint_source(
        textwrap.dedent(
            """
            import time  # repro-lint: disable=RL004

            def now(self):
                return time.monotonic()
            """
        ),
        module="repro.net.fixture",
    )
    assert [f.rule for f in run.findings] == ["RL004"]  # the use, not the import
    assert run.suppressed == 1


def test_file_pragma_silences_whole_module():
    run = ENGINE.lint_source(
        textwrap.dedent(
            """
            # repro-lint: disable-file=RL004 - audited entropy module
            import time
            import random

            def draw(self):
                return random.random() + time.monotonic()
            """
        ),
        module="repro.net.fixture",
    )
    assert run.findings == []
    assert run.suppressed == 4


def test_pragma_inside_string_literal_does_not_count():
    run = ENGINE.lint_source(
        textwrap.dedent(
            '''
            DOC = "# repro-lint: disable-file=all"
            import time
            '''
        ),
        module="repro.net.fixture",
    )
    assert [f.rule for f in run.findings] == ["RL004"]


def test_disable_all_wildcard():
    run = ENGINE.lint_source(
        "self._lock.acquire()  # repro-lint: disable=all\n",
        module="repro.net.fixture",
    )
    assert run.findings == []
    assert run.suppressed == 1


# ------------------------------------------------------------- baseline


def test_baseline_round_trip(tmp_path):
    findings = findings_for(
        """
        def publish(self, event):
            self._lock.acquire()
        """
    )
    assert findings
    baseline = Baseline.from_findings(findings, note="grandfathered for the test")
    path = tmp_path / "baseline.json"
    baseline.write(str(path))
    loaded = Baseline.load(str(path))
    kept, baselined = loaded.filter(findings)
    assert kept == []
    assert baselined == len(findings)


def test_baseline_survives_unrelated_edits_but_not_snippet_changes():
    entry = BaselineEntry(
        rule="RL001",
        path="pkg/mod.py",
        snippet="self._lock.acquire()",
        note="test",
    )
    baseline = Baseline([entry])
    engine = LintEngine(DEFAULT_PROFILE, rules=["RL001"])
    # Same offending line, different line number (a comment inserted above).
    moved = engine.lint_source(
        "# an unrelated new comment\nself._lock.acquire()\n", path="pkg/mod.py"
    ).findings
    kept, baselined = baseline.filter(moved)
    assert kept == [] and baselined == 1
    # The line itself changed: the entry no longer covers it.
    changed = engine.lint_source(
        "self._other_lock.acquire()\n", path="pkg/mod.py"
    ).findings
    kept, baselined = baseline.filter(changed)
    assert len(kept) == 1 and baselined == 0


def test_baseline_rejects_malformed_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"schema": "something-else/v1", "entries": []}')
    with pytest.raises(LintConfigError):
        Baseline.load(str(path))


# ------------------------------------------------------ engine plumbing


def test_parse_error_yields_rl000():
    run = ENGINE.lint_source("def broken(:\n", path="pkg/broken.py")
    assert [f.rule for f in run.findings] == [PARSE_ERROR_RULE]


def test_module_name_anchors_at_repro():
    assert module_name("src/repro/net/faults.py") == "repro.net.faults"
    assert module_name("/abs/checkout/src/repro/core/__init__.py") == "repro.core"
    assert module_name("scripts/tool.py") == "tool"


def test_rule_scope_prefix_matching():
    scope = RuleScope(packages=("repro.net",))
    assert scope.applies_to("repro.net.faults")
    assert scope.applies_to("repro.net")
    assert not scope.applies_to("repro.network")  # prefix is package-wise
    assert RuleScope().applies_to("anything")


def test_engine_rejects_unknown_rule():
    with pytest.raises(LintConfigError):
        LintEngine(DEFAULT_PROFILE, rules=["RL999"])


def test_registry_round_trip_and_conflict():
    class DemoRule(LintRule):
        rule_id = "RLTEST"
        title = "demo"
        rationale = "test only"

        def check(self, tree, context):
            return iter(())

    try:
        register_rule(DemoRule)
        assert get_rule("rltest") is DemoRule
        assert "RLTEST" in registered_rules()
        with pytest.raises(LintConfigError):
            register_rule(DemoRule)  # without replace=True
        register_rule(DemoRule, replace=True)
    finally:
        assert unregister_rule("RLTEST")


def test_builtin_rules_all_registered():
    assert set(DEFAULT_PROFILE) <= set(registered_rules())
    assert set(DEFAULT_PROFILE) == {"RL001", "RL002", "RL003", "RL004", "RL005"}


# ------------------------------------------------------------------ CLI


def _write_fixture(tmp_path, source):
    target = tmp_path / "fixture.py"
    target.write_text(textwrap.dedent(source))
    return str(target)


def test_cli_exit_zero_and_json_schema_on_clean_file(tmp_path, capsys):
    path = _write_fixture(
        tmp_path,
        """
        def publish(self, event):
            with self._lock:
                self._pending = self._pending + (event,)
        """,
    )
    assert main(["lint", "--json", "--no-baseline", path]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == "repro-lint/v1"
    assert validate_document(document) == []
    assert document["findings"] == [] and document["files"] == 1


def test_cli_exit_one_on_findings(tmp_path, capsys):
    path = _write_fixture(
        tmp_path,
        """
        def publish(self, event):
            self._lock.acquire()
        """,
    )
    assert main(["lint", "--no-baseline", path]) == 1
    output = capsys.readouterr().out
    assert "RL001" in output and "hint:" in output


def test_cli_exit_two_on_usage_errors(tmp_path, capsys):
    assert main(["lint", "--no-baseline", str(tmp_path / "missing.py")]) == 2
    assert main(["lint", "--rules", "RL999", "--no-baseline", "."]) == 2


def test_cli_write_then_apply_baseline(tmp_path, capsys, monkeypatch):
    path = _write_fixture(
        tmp_path,
        """
        def publish(self, event):
            self._lock.acquire()
        """,
    )
    baseline = tmp_path / "baseline.json"
    assert main(["lint", "--baseline", str(baseline), "--write-baseline", path]) == 0
    capsys.readouterr()
    assert main(["lint", "--baseline", str(baseline), path]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # Without the baseline the finding is live again.
    assert main(["lint", "--no-baseline", path]) == 1


def test_cli_rules_filter(tmp_path, capsys):
    path = _write_fixture(
        tmp_path,
        """
        def deliver(self, event):
            self._lock.acquire()
            try:
                self.sink(event)
            except Exception:
                pass
        """,
    )
    assert main(["lint", "--rules", "RL005", "--no-baseline", "--json", path]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["rules"] == ["RL005"]
    assert {f["rule"] for f in document["findings"]} == {"RL005"}


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    output = capsys.readouterr().out
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
        assert rule_id in output
