"""Tests for the Peer Membership Protocol and the Peer Information Protocol."""

from __future__ import annotations

import pytest

from repro.jxta.advertisement import PeerGroupAdvertisement
from repro.jxta.errors import MembershipError
from repro.jxta.membership import DEFAULT_CREDENTIAL_LIFETIME
from repro.jxta.peerinfo import PeerInfo


class TestMembership:
    def _group(self, peer, password=None, name="club"):
        advertisement = PeerGroupAdvertisement(name=name, membership_password=password)
        return peer.world_group.new_group(advertisement)

    def test_open_group_join_and_resign(self, two_peers):
        alpha, _beta, _builder = two_peers
        group = self._group(alpha)
        membership = group.membership
        authenticator = membership.apply()
        assert not authenticator.requires_password
        credential = membership.join(authenticator)
        assert membership.is_member()
        assert membership.current_credential is credential
        assert credential.group_id == group.group_id
        membership.resign()
        assert not membership.is_member()

    def test_password_protected_group(self, two_peers):
        alpha, _beta, _builder = two_peers
        group = self._group(alpha, password="hunter2")
        membership = group.membership
        authenticator = membership.apply("alice")
        assert authenticator.requires_password
        # Incomplete authenticator rejected.
        with pytest.raises(MembershipError):
            membership.join(authenticator)
        # Wrong password rejected.
        authenticator.password = "wrong"
        with pytest.raises(MembershipError):
            membership.join(authenticator)
        # Right password accepted.
        authenticator.password = "hunter2"
        credential = membership.join(authenticator)
        assert credential.identity == "alice"
        assert membership.is_member()

    def test_authenticator_for_other_group_rejected(self, two_peers):
        alpha, _beta, _builder = two_peers
        group_a = self._group(alpha, name="a")
        group_b = self._group(alpha, name="b")
        authenticator = group_a.membership.apply()
        with pytest.raises(MembershipError):
            group_b.membership.join(authenticator)

    def test_credential_expiry_and_renew(self, two_peers):
        alpha, _beta, builder = two_peers
        group = self._group(alpha)
        credential = group.membership.join(group.membership.apply())
        original_issued_at = credential.issued_at
        assert credential.valid(alpha.now)
        assert not credential.valid(alpha.now + DEFAULT_CREDENTIAL_LIFETIME + 1)
        builder.simulator.run_until(builder.simulator.now + 10.0)
        renewed = group.membership.renew()
        assert renewed.expires_at > original_issued_at + DEFAULT_CREDENTIAL_LIFETIME

    def test_renew_and_resign_require_membership(self, two_peers):
        alpha, _beta, _builder = two_peers
        group = self._group(alpha)
        with pytest.raises(MembershipError):
            group.membership.renew()
        with pytest.raises(MembershipError):
            group.membership.resign()

    def test_validate_credentials(self, two_peers):
        alpha, _beta, _builder = two_peers
        group = self._group(alpha)
        other = self._group(alpha, name="other")
        credential = group.membership.join(group.membership.apply())
        assert group.membership.validate(credential)
        assert not other.membership.validate(credential)

    def test_member_count_tracks_issued_credentials(self, two_peers):
        alpha, _beta, _builder = two_peers
        group = self._group(alpha)
        assert group.membership.member_count() == 0
        group.membership.join(group.membership.apply())
        assert group.membership.member_count() == 1


class TestPeerInfo:
    def test_local_peer_info_reflects_uptime_and_roles(self, lan):
        builder = lan
        rendezvous = builder.peer_named("rdv-0")
        info = rendezvous.world_group.peerinfo.local_peer_info()
        assert info.peer_id == rendezvous.peer_id
        assert info.is_rendezvous and info.is_router
        assert info.uptime >= 0.0
        assert info.incoming_channels == 3  # the three connected edge peers

    def test_peer_info_xml_round_trip(self, two_peers):
        alpha, _beta, _builder = two_peers
        info = alpha.world_group.peerinfo.local_peer_info()
        restored = PeerInfo.from_xml(info.to_xml())
        assert restored.peer_id == info.peer_id
        assert restored.name == info.name
        assert restored.packets_sent == info.packets_sent

    def test_remote_peer_info_query(self, two_peers):
        alpha, beta, builder = two_peers
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        collected = []
        alpha.world_group.peerinfo.add_peer_info_listener(collected.append)
        alpha.world_group.peerinfo.get_remote_peer_info(beta.peer_id)
        builder.settle(rounds=2)
        assert len(collected) == 1
        assert collected[0].peer_id == beta.peer_id
        assert alpha.world_group.peerinfo.received == collected

    def test_propagated_peer_info_query_reaches_everyone(self, lan):
        builder = lan
        source = builder.peer_named("peer-0")
        source.world_group.peerinfo.get_remote_peer_info(None)
        builder.settle(rounds=3)
        names = {info.name for info in source.world_group.peerinfo.received}
        assert names == {"rdv-0", "peer-1", "peer-2"}

    def test_traffic_counters_grow_with_activity(self, two_peers):
        alpha, beta, builder = two_peers
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        before = alpha.world_group.peerinfo.local_peer_info().packets_sent
        from repro.jxta.message import Message

        message = Message()
        message.add("x", "y")
        alpha.endpoint.send(beta.peer_id, message, "svc")
        builder.settle(rounds=2)
        after = alpha.world_group.peerinfo.local_peer_info().packets_sent
        assert after == before + 1

    def test_listener_removal(self, two_peers):
        alpha, beta, builder = two_peers
        collected = []
        peerinfo = alpha.world_group.peerinfo
        peerinfo.add_peer_info_listener(collected.append)
        peerinfo.remove_peer_info_listener(collected.append)
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        peerinfo.get_remote_peer_info(beta.peer_id)
        builder.settle(rounds=2)
        assert collected == []
        assert len(peerinfo.received) == 1  # still recorded internally
