"""Tests for the cost model, noise source, transports and firewall rules."""

from __future__ import annotations

import pytest

from repro.net.cost import CostModel, NoiseSource, PAPER_TESTBED
from repro.net.firewall import Direction, Firewall, FirewallRule
from repro.net.packet import Packet
from repro.net.transport import (
    HttpTransport,
    MulticastTransport,
    TcpTransport,
    TransportKind,
    transport_for,
)


class TestCostModel:
    def test_paper_calibration_publisher_side(self):
        """The noise-free calibration reproduces the paper's headline rates."""
        model = PAPER_TESTBED
        wire_1 = model.send_cost(1, 0)
        wire_4 = model.send_cost(4, 0)
        # ~10 events/s for JXTA-WIRE with one subscriber, ~3x slower with four.
        assert 1.0 / wire_1 == pytest.approx(10.0, rel=0.05)
        assert 2.0 < wire_4 / wire_1 < 3.0

    def test_paper_calibration_subscriber_side(self):
        model = PAPER_TESTBED
        rate_wire = 1.0 / model.receive_cost(1, 0)
        rate_tps = 1.0 / (
            model.receive_cost(1, 0) + model.app_layer_receive + model.tps_layer_receive
        )
        assert rate_wire == pytest.approx(7.8, rel=0.05)
        assert rate_tps == pytest.approx(6.0, rel=0.08)

    def test_layer_gap_is_about_one_percent(self):
        model = PAPER_TESTBED
        sr_jxta = model.send_cost(1, 1910) + model.app_layer_send
        sr_tps = sr_jxta + model.tps_layer_send
        assert (sr_tps - sr_jxta) / sr_jxta < 0.02

    def test_send_cost_grows_with_connections_and_size(self):
        model = PAPER_TESTBED
        assert model.send_cost(2, 0) > model.send_cost(1, 0)
        assert model.send_cost(1, 10_000) > model.send_cost(1, 0)
        # Zero connections is charged like one (there is always some fan-out work).
        assert model.send_cost(0, 0) == model.send_cost(1, 0)

    def test_scaled_preserves_ratios(self):
        model = PAPER_TESTBED
        fast = model.scaled(0.5)
        assert fast.wire_send_base == pytest.approx(model.wire_send_base * 0.5)
        ratio_before = model.send_cost(4, 0) / model.send_cost(1, 0)
        ratio_after = fast.send_cost(4, 0) / fast.send_cost(1, 0)
        assert ratio_after == pytest.approx(ratio_before)

    def test_without_noise(self):
        quiet = PAPER_TESTBED.without_noise()
        assert quiet.wire_jitter == 0.0
        assert quiet.wire_loss_rate == 0.0
        # The original is unchanged (frozen dataclass semantics).
        assert PAPER_TESTBED.wire_jitter > 0.0

    def test_transmission_and_serialization_time(self):
        model = CostModel(per_byte=1e-6, lan_bandwidth=1e6)
        assert model.transmission_time(1_000_000) == pytest.approx(1.0)
        assert model.serialization_time(1000) == pytest.approx(0.001)


class TestNoiseSource:
    def test_determinism(self):
        a, b = NoiseSource(7), NoiseSource(7)
        assert [a.jittered(1.0, 0.3) for _ in range(5)] == [
            b.jittered(1.0, 0.3) for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        a, b = NoiseSource(7), NoiseSource(8)
        assert [a.jittered(1.0, 0.3) for _ in range(5)] != [
            b.jittered(1.0, 0.3) for _ in range(5)
        ]

    def test_zero_sigma_is_identity(self):
        noise = NoiseSource(1)
        assert noise.jittered(2.5, 0.0) == 2.5

    def test_jitter_mean_is_near_base(self):
        noise = NoiseSource(2)
        samples = [noise.jittered(1.0, 0.2) for _ in range(2000)]
        assert 0.9 < sum(samples) / len(samples) < 1.15

    def test_chance_extremes(self):
        noise = NoiseSource(3)
        assert not noise.chance(0.0)
        assert noise.chance(1.0)

    def test_fork_is_deterministic_and_independent(self):
        base = NoiseSource(9)
        fork_a = base.fork(1)
        fork_b = NoiseSource(9).fork(1)
        assert fork_a.jittered(1.0, 0.3) == fork_b.jittered(1.0, 0.3)
        assert base.fork(1).seed != base.fork(2).seed


class TestTransports:
    def test_lookup_by_kind_and_name(self):
        assert transport_for(TransportKind.TCP) is TcpTransport
        assert transport_for("http") is HttpTransport
        assert transport_for("multicast") is MulticastTransport

    def test_reliability_flags(self):
        assert TcpTransport.reliable
        assert HttpTransport.reliable
        assert not MulticastTransport.reliable

    def test_http_has_more_overhead_than_tcp(self):
        assert HttpTransport.per_packet_overhead > TcpTransport.per_packet_overhead

    def test_point_to_point(self):
        assert TcpTransport.point_to_point
        assert not MulticastTransport.point_to_point


class TestFirewall:
    def _packet(self, transport="tcp", protocol="jxta"):
        return Packet(source="a", destination="b", payload=b"", transport=transport, protocol=protocol)

    def test_open_firewall_allows_everything(self):
        firewall = Firewall.open()
        assert firewall.permits(self._packet(), Direction.INBOUND)
        assert firewall.permits(self._packet("multicast"), Direction.OUTBOUND)

    def test_corporate_default_blocks_inbound_tcp_allows_http(self):
        firewall = Firewall.corporate_default()
        assert not firewall.permits(self._packet("tcp"), Direction.INBOUND)
        assert firewall.permits(self._packet("http"), Direction.INBOUND)
        assert firewall.permits(self._packet("http"), Direction.OUTBOUND)
        assert not firewall.permits(self._packet("multicast"), Direction.OUTBOUND)

    def test_first_matching_rule_wins(self):
        firewall = Firewall(
            rules=[
                FirewallRule("allow", transport=TransportKind.TCP),
                FirewallRule("deny", transport=TransportKind.TCP),
            ]
        )
        assert firewall.permits(self._packet("tcp"), Direction.INBOUND)

    def test_default_policies(self):
        firewall = Firewall(default_inbound="deny")
        assert not firewall.permits(self._packet(), Direction.INBOUND)
        assert firewall.permits(self._packet(), Direction.OUTBOUND)

    def test_protocol_specific_rule(self):
        firewall = Firewall(rules=[FirewallRule("deny", protocol="experimental")])
        assert firewall.permits(self._packet(protocol="jxta"), Direction.INBOUND)
        assert not firewall.permits(self._packet(protocol="experimental"), Direction.INBOUND)

    def test_blocked_counter(self):
        firewall = Firewall(default_inbound="deny")
        firewall.permits(self._packet(), Direction.INBOUND)
        firewall.permits(self._packet(), Direction.INBOUND)
        assert firewall.blocked_count == 2

    def test_invalid_rule_action_rejected(self):
        with pytest.raises(ValueError):
            FirewallRule("maybe")

    def test_invalid_default_policy_rejected(self):
        with pytest.raises(ValueError):
            Firewall(default_inbound="whatever")
