"""An in-process TPS binding.

The paper's ``TPSEngine.newInterface`` takes a *name* selecting the
underlying infrastructure ("JXTA" in all of the paper's listings).  The
reproduction adds a second binding, ``"LOCAL"``: a purely in-process bus with
the same Figure 7 semantics (type hierarchy matching, duplicate-free
delivery, callback/exception-handler dispatch) but no simulated network.

The local binding is useful on its own (unit-testing application callbacks,
prototyping event types before deploying on the P2P substrate) and doubles as
a semantic reference implementation: property-based tests check that the
JXTA binding delivers exactly what the local binding would.

Locking model: the bus is safe under concurrent publishers, subscribers and
attach/detach/close churn without slowing the single-threaded hot path.
Lifecycle mutations (``attach``/``detach`` and route-row rebuilds) serialise
on the per-bus ``_lock`` and only ever *replace* immutable values -- the
per-root engine tuples and the per-class route-row tuples -- while
``publish`` reads those snapshots with no lock at all: a publish racing an
attach/detach simply delivers against the previous attachment snapshot, the
same way a publish racing a subscribe sees the previous
:class:`~repro.core.subscriber.TPSSubscriberManager` handler snapshot.
Route rows resolved before an engine closed are made harmless by the
delivery loop itself, which skips rows whose engine reports closed.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple, Type

from repro.core.bindings import BindingRequest, register_binding
from repro.core.exceptions import PSException
from repro.core.history import DEFAULT_HISTORY_SIZE, HISTORY_BINDING_PARAMS, make_history_pair
from repro.core.interface import PublishReceipt, Subscription, TPSInterface
from repro.core.type_registry import Criteria, TypeRegistry, hierarchy_root, type_name
from repro.core.subscriber import TPSSubscriberManager
from repro.serialization.object_codec import ObjectCodec


class LocalBus:
    """A process-local event bus connecting :class:`LocalTPSEngine` instances.

    Engines attach under the *root* of their type hierarchy; publishing walks
    every engine attached to the same hierarchy and delivers to those whose
    interface type the event conforms to.

    Publishing is served from a *type-indexed routing table*: per hierarchy
    root, the tuple of engines whose interface type a given concrete event
    class conforms to, computed once per event class and invalidated whenever
    an engine attaches or detaches.  Event classes first seen at publish time
    (e.g. subclasses defined after the engines were built) simply miss the
    table once and get their row computed on the spot, so late subclass
    registration needs no explicit invalidation hook.  The per-class rows
    replace the seed's per-publish list copy and per-engine ``isinstance``
    re-check.

    Thread safety: ``attach``/``detach`` and row rebuilds hold the per-bus
    ``_lock``; ``publish`` reads the immutable snapshots lock-free (see the
    module docstring).
    """

    def __init__(self) -> None:
        #: Serialises attach/detach and route-row rebuilds.  ``publish``
        #: never takes it: delivery reads immutable snapshots only.
        self._lock = threading.Lock()
        self._engines: Dict[str, Tuple["LocalTPSEngine", ...]] = {}
        #: root name -> {concrete event class -> delivery rows}.  Each row is
        #: (engine, subscriber manager, criteria, received.append): everything
        #: the delivery loop needs, resolved once per (root, class) so the
        #: per-subscriber work is free of attribute lookups.  Criteria and
        #: the history store are fixed at engine construction, which is what
        #: makes caching them (and the store's bound ``append``) here safe.
        #: Rows are installed and invalidated
        #: only under ``_lock`` (double-checked on miss), so a row can never
        #: be built from a half-applied attachment change.
        self._routes: Dict[str, Dict[Type[Any], Tuple[Tuple[Any, ...], ...]]] = {}

    def attach(self, engine: "LocalTPSEngine") -> None:
        """Attach an engine to its hierarchy's topic."""
        root = engine.registry.advertised_name
        with self._lock:
            self._engines[root] = self._engines.get(root, ()) + (engine,)
            self._routes.pop(root, None)

    def detach(self, engine: "LocalTPSEngine") -> None:
        """Detach an engine (missing engines are ignored)."""
        root = engine.registry.advertised_name
        with self._lock:
            engines = self._engines.get(root, ())
            if engine in engines:
                self._engines[root] = tuple(e for e in engines if e is not engine)
                self._routes.pop(root, None)

    def engines_for(self, root: Type[Any]) -> Tuple["LocalTPSEngine", ...]:
        """Every engine attached to the hierarchy rooted at ``root``.

        Returns the immutable attachment snapshot itself -- no per-call copy.
        """
        return self._engines.get(type_name(root), ())

    def _route(self, root: str, event_class: Type[Any]) -> Tuple[Tuple[Any, ...], ...]:
        """The delivery rows a ``root``-hierarchy event of ``event_class`` reaches.

        The hit path is two lock-free dict reads.  A miss takes ``_lock`` and
        re-checks (another publisher may have built the row while we waited)
        before computing the row against the current attachment snapshot;
        holding the lock for the rebuild means an attach/detach can never
        interleave with it and leave a permanently stale row installed.
        """
        routes = self._routes.get(root)
        if routes is not None:
            targets = routes.get(event_class)
            if targets is not None:
                return targets
        with self._lock:
            routes = self._routes.get(root)
            if routes is None:
                routes = self._routes[root] = {}
            targets = routes.get(event_class)
            if targets is None:
                targets = routes[event_class] = tuple(
                    (engine, engine.subscriber_manager, engine.criteria, engine._received.append)
                    for engine in self._engines.get(root, ())
                    if issubclass(event_class, engine.registry.event_type)
                )
            return targets

    def publish(self, publisher: "LocalTPSEngine", event: Any) -> int:
        """Deliver ``event`` to every conforming engine except the publisher.

        Returns the number of engines the event was delivered to.

        This loop is the single home of local delivery semantics: skip the
        publisher, skip closed engines, skip engines with no subscriptions,
        apply content criteria, record the event, dispatch to the bound
        handlers (errors routed to the paired exception handler).  The
        subtype check lives in the routing row, and dispatch is inlined
        rather than delegated to the engine/manager because at high fan-out
        the two extra Python calls per subscriber were the largest remaining
        per-delivery cost.

        The closed check guards against *stale rows*: the row tuple was
        resolved before the loop started, so a callback that closes another
        engine mid-dispatch (or a concurrent ``close()`` on another thread)
        would otherwise still get that engine's ``record(event)`` and handler
        dispatch.  ``close()`` flips the flag before detaching, so a closed
        engine stops receiving even from rows resolved before it left the
        routing table.
        """
        targets = self._route(publisher.registry.advertised_name, type(event))
        delivered = 0
        for engine, manager, criteria, record in targets:
            if engine is publisher or engine._tps_closed:
                continue
            handlers = manager._handlers
            if not handlers:
                continue
            if criteria is not None and not criteria.matches_event(event):
                continue
            record(event)
            for handle, handle_error, predicate, breaker in handlers:
                # The pushed-down predicate runs inside the dispatch guard:
                # a rejected event skips the callback entirely, and a
                # *raising* predicate is routed to the paired exception
                # handler exactly like a raising callback (so push-down
                # keeps FilteringCallback's error semantics and a broken
                # predicate cannot crash the publisher).  The breaker slot
                # quarantines persistently-raising rows (see CircuitBreaker);
                # it is None unless a breaker policy was configured.
                try:
                    if predicate is not None and not predicate(event):
                        continue
                    if breaker is not None and not breaker.allow():
                        continue
                    handle(event)
                    if breaker is not None:
                        breaker.record_success()
                except BaseException as error:  # noqa: BLE001 - routed to the handler
                    if breaker is not None:
                        breaker.record_failure()
                    try:
                        handle_error(error)
                    except BaseException:  # noqa: BLE001  # repro-lint: disable=RL005 - a broken error handler must not stop dispatch
                        pass
            delivered += 1
        return delivered


#: Default process-wide bus used when no explicit bus is supplied.
DEFAULT_BUS = LocalBus()


class LocalTPSEngine(TPSInterface):
    """The TPS interface implemented over an in-process :class:`LocalBus`."""

    def __init__(
        self,
        event_type: Type[Any],
        *,
        bus: Optional[LocalBus] = None,
        criteria: Optional[Criteria] = None,
        codec: Optional[ObjectCodec] = None,
        history: str = "ring",
        history_size: int = DEFAULT_HISTORY_SIZE,
        history_path: Optional[str] = None,
    ) -> None:
        # Shadow the TPSInterface class attribute with an instance slot: the
        # delivery loop reads this flag once per route row per publish, and
        # an instance-dict hit is measurably cheaper than the class-MRO
        # fallback at high fan-out.
        self._tps_closed = False
        self.registry = TypeRegistry(event_type, codec=codec)
        self.criteria = criteria
        self.bus = bus or DEFAULT_BUS
        self.subscriber_manager = TPSSubscriberManager()
        self._received, self._sent = make_history_pair(
            history, history_size, history_path, codec=self.registry.codec
        )
        self.bus.attach(self)

    # ------------------------------------------------------------ publishing

    def publish(self, event: Any) -> PublishReceipt:
        """Publish an event to every conforming local subscriber."""
        self._check_open()
        self.registry.check_publishable(event)
        # Round-trip through the codec so local and JXTA bindings agree on
        # what is serialisable (and so subscribers get an isolated copy).
        copy = self.registry.decode(self.registry.encode(event))
        delivered = self.bus.publish(self, copy)
        self._sent.append(event)
        return PublishReceipt(
            cpu_time=0.0, completion_time=0.0, pipes=1, wire_receipts=[delivered]
        )

    def publish_many(self, events: Iterable[Any]) -> List[PublishReceipt]:
        """Publish a batch of events; returns one receipt per event, in order.

        Every event is validated and codec-round-tripped up front (so a batch
        with a non-publishable event fails before anything is delivered),
        then the whole batch is handed to the bus in one call when the bus
        offers a batch path (:meth:`ShardedLocalBus.publish_all
        <repro.core.sharded_engine.ShardedLocalBus.publish_all>`, which runs
        independent hierarchies on its executor).  One interface covers one
        hierarchy, so *this* engine's batch stays in publish order on its own
        shard; the batch API pays off when several interfaces' batches meet
        in the bus, or simply by amortising the per-call bookkeeping.
        """
        self._check_open()
        batch = list(events)
        copies = []
        for event in batch:
            self.registry.check_publishable(event)
            copies.append(self.registry.decode(self.registry.encode(event)))
        publish_all = getattr(self.bus, "publish_all", None)
        if publish_all is not None:
            counts = publish_all([(self, copy) for copy in copies])
        else:
            counts = [self.bus.publish(self, copy) for copy in copies]
        record_sent = self._sent.append
        for event in batch:
            record_sent(event)
        return [
            PublishReceipt(
                cpu_time=0.0, completion_time=0.0, pipes=1, wire_receipts=[delivered]
            )
            for delivered in counts
        ]

    # ----------------------------------------------------------- subscribing

    def _add_subscription(self, subscription: Subscription) -> None:
        self.subscriber_manager.add(subscription)

    def _remove_subscriptions(
        self, callback: Optional[Any] = None, handler: Optional[Any] = None
    ) -> int:
        return self.subscriber_manager.remove(callback, handler)

    def _discard_subscription(self, subscription: Subscription) -> int:
        return self.subscriber_manager.discard(subscription)

    # --------------------------------------------------------------- history
    # objects_received/objects_sent (and their retention contract) are the
    # shared TPSInterfaceCore implementations over self._received/self._sent.

    def _do_close(self) -> None:
        """Detach from the bus, drop every subscription, settle the stores."""
        self.bus.detach(self)
        self.subscriber_manager.remove()
        # Flush/fsync a durable store; history queries keep working after.
        self._received.close()
        self._sent.close()


def _local_binding(request: BindingRequest) -> LocalTPSEngine:
    """The ``"LOCAL"`` binding factory: an in-process interface."""
    return LocalTPSEngine(
        request.event_type,
        bus=request.local_bus,
        criteria=request.criteria,
        codec=request.codec,
        history=request.param("history", "ring"),
        history_size=request.param("history_size", DEFAULT_HISTORY_SIZE),
        history_path=request.param("history_path", "") or None,
    )


# Beyond the history parameters shared by every binding, LOCAL accepts no
# parameters: everything else it needs (bus, codec, criteria) arrives through
# the engine-level construction arguments, so any other
# ``new_interface("LOCAL", key=...)`` parameter is rejected with the uniform
# schema error instead of being silently dropped.
register_binding(
    "LOCAL",
    _local_binding,
    capabilities=("in-process", "synchronous"),
    params=HISTORY_BINDING_PARAMS,
    replace=True,
)


__all__ = ["DEFAULT_BUS", "LocalBus", "LocalTPSEngine"]
