"""A minimal XML document model, writer and parser.

JXTA represents every advertisement as an XML document and every message as a
bag of named (possibly XML) elements.  The reproduction does not need the full
XML specification -- only elements, attributes, text content and nesting --
so this module implements exactly that, from scratch, with strict escaping.

The parser is a small recursive-descent parser over the writer's output
grammar.  It accepts the documents this package produces (and reasonable
hand-written ones), and raises :class:`XmlParseError` with a position on
malformed input.  Comments and processing instructions are skipped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
    '"': "&quot;",
    "'": "&apos;",
}
_UNESCAPES = {v: k for k, v in _ESCAPES.items()}

#: One-pass translation table for :func:`escape_text` (ordinal -> entity).
_ESCAPE_TABLE = str.maketrans(_ESCAPES)
#: Matches any character that needs escaping; most strings contain none, so
#: a single failed scan is the whole cost of escaping them.
_NEEDS_ESCAPE = re.compile(r"[&<>\"']").search


class XmlParseError(ValueError):
    """Raised when a document cannot be parsed; carries the offending position."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


def escape_text(text: str) -> str:
    """Escape the five XML special characters in ``text``.

    Strings containing no specials (the overwhelmingly common case on the
    publish hot path) are returned unchanged after one regex scan; the rest
    are rewritten in one pass with :meth:`str.translate`.
    """
    if _NEEDS_ESCAPE(text) is None:
        return text
    return text.translate(_ESCAPE_TABLE)


def unescape_text(text: str) -> str:
    """Reverse :func:`escape_text` (also handles numeric character references).

    Text without ``&`` is returned unchanged; otherwise the string is copied
    in bulk slices between entity references instead of character by
    character.
    """
    amp = text.find("&")
    if amp == -1:
        return text
    result: List[str] = []
    i = 0
    while amp != -1:
        result.append(text[i:amp])
        end = text.find(";", amp)
        if end == -1:
            raise XmlParseError("unterminated entity reference", amp)
        entity = text[amp : end + 1]
        if entity in _UNESCAPES:
            result.append(_UNESCAPES[entity])
        elif entity.startswith("&#x"):
            result.append(chr(int(entity[3:-1], 16)))
        elif entity.startswith("&#"):
            result.append(chr(int(entity[2:-1])))
        else:
            raise XmlParseError(f"unknown entity {entity!r}", amp)
        i = end + 1
        amp = text.find("&", i)
    result.append(text[i:])
    return "".join(result)


@dataclass
class XmlElement:
    """One XML element: a name, attributes, text content and child elements."""

    name: str
    attributes: Dict[str, str] = field(default_factory=dict)
    text: str = ""
    children: List["XmlElement"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ValueError(f"invalid element name {self.name!r}")

    # -------------------------------------------------------------- building

    def add_child(self, child: "XmlElement") -> "XmlElement":
        """Append a child element and return it (for chaining)."""
        self.children.append(child)
        return child

    def add(self, tag: str, text: str = "", **attributes: str) -> "XmlElement":
        """Create a child element with the given tag/text/attributes and return it.

        Keyword arguments become XML attributes (e.g. ``parent.add("Service",
        name="wire")`` produces ``<Service name="wire"/>``).
        """
        return self.add_child(XmlElement(name=tag, attributes=dict(attributes), text=text))

    def set_attribute(self, key: str, value: str) -> None:
        """Set an attribute on this element."""
        self.attributes[key] = value

    # -------------------------------------------------------------- querying

    def find(self, name: str) -> Optional["XmlElement"]:
        """Return the first direct child with the given name, or None."""
        for child in self.children:
            if child.name == name:
                return child
        return None

    def find_all(self, name: str) -> List["XmlElement"]:
        """Return every direct child with the given name."""
        return [child for child in self.children if child.name == name]

    def child_text(self, name: str, default: str = "") -> str:
        """Return the text of the first child with the given name, or ``default``."""
        child = self.find(name)
        return child.text if child is not None else default

    def iter(self) -> Iterator["XmlElement"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self.children:
            yield from child.iter()

    # ------------------------------------------------------------- rendering

    def to_string(self, *, indent: Optional[int] = None, _level: int = 0) -> str:
        """Serialise the element (and subtree) to a string.

        ``indent`` of None produces a compact single-line document; an integer
        pretty-prints with that many spaces per level.
        """
        pad = "" if indent is None else "\n" + " " * (indent * _level)
        child_pad = "" if indent is None else "\n" + " " * (indent * (_level + 1))
        attrs = "".join(
            f' {key}="{escape_text(str(value))}"' for key, value in self.attributes.items()
        )
        inner = escape_text(self.text)
        if not self.children and not inner:
            return f"<{self.name}{attrs}/>"
        parts = [f"<{self.name}{attrs}>"]
        if inner:
            parts.append(inner)
        for child in self.children:
            if indent is not None:
                parts.append(child_pad)
            parts.append(child.to_string(indent=indent, _level=_level + 1))
        if self.children and indent is not None:
            parts.append(pad if _level else "\n")
        parts.append(f"</{self.name}>")
        return "".join(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XmlElement):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.text == other.text
            and self.children == other.children
        )


def to_xml(element: XmlElement, *, declaration: bool = True, indent: Optional[int] = None) -> str:
    """Serialise an element tree to a full document string."""
    body = element.to_string(indent=indent)
    if declaration:
        return f'<?xml version="1.0" encoding="UTF-8"?>{body}'
    return body


class _Parser:
    """Recursive-descent parser over the subset of XML this package emits."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def parse_document(self) -> XmlElement:
        self._skip_prolog()
        element = self._parse_element()
        self._skip_whitespace_and_misc()
        if self.pos != len(self.text):
            raise XmlParseError("trailing content after document element", self.pos)
        return element

    # ------------------------------------------------------------- low level

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise XmlParseError(f"expected {literal!r}", self.pos)
        self.pos += len(literal)

    def _skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _skip_prolog(self) -> None:
        self._skip_whitespace_and_misc()
        if self.text.startswith("<?xml", self.pos):
            end = self.text.find("?>", self.pos)
            if end == -1:
                raise XmlParseError("unterminated XML declaration", self.pos)
            self.pos = end + 2
        self._skip_whitespace_and_misc()

    def _skip_whitespace_and_misc(self) -> None:
        while True:
            self._skip_whitespace()
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end == -1:
                    raise XmlParseError("unterminated comment", self.pos)
                self.pos = end + 3
            elif self.text.startswith("<?", self.pos) and not self.text.startswith(
                "<?xml", self.pos
            ):
                end = self.text.find("?>", self.pos)
                if end == -1:
                    raise XmlParseError("unterminated processing instruction", self.pos)
                self.pos = end + 2
            else:
                return

    def _parse_name(self) -> str:
        start = self.pos
        first = self._peek()
        if not (first.isalpha() or first == "_"):
            raise XmlParseError("names must start with a letter or underscore", self.pos)
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "._-:"
        ):
            self.pos += 1
        return self.text[start : self.pos]

    def _parse_attributes(self) -> Dict[str, str]:
        attributes: Dict[str, str] = {}
        while True:
            self._skip_whitespace()
            ch = self._peek()
            if ch in (">", "/", ""):
                return attributes
            key = self._parse_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            quote = self._peek()
            if quote not in ('"', "'"):
                raise XmlParseError("attribute value must be quoted", self.pos)
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end == -1:
                raise XmlParseError("unterminated attribute value", self.pos)
            attributes[key] = unescape_text(self.text[self.pos : end])
            self.pos = end + 1

    def _parse_element(self) -> XmlElement:
        self._expect("<")
        name = self._parse_name()
        attributes = self._parse_attributes()
        if self._peek() == "/":
            self._expect("/>")
            return XmlElement(name=name, attributes=attributes)
        self._expect(">")
        element = XmlElement(name=name, attributes=attributes)
        text_chunks: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise XmlParseError(f"unterminated element <{name}>", self.pos)
            if self.text.startswith("</", self.pos):
                self._expect("</")
                closing = self._parse_name()
                if closing != name:
                    raise XmlParseError(
                        f"mismatched closing tag </{closing}> for <{name}>", self.pos
                    )
                self._skip_whitespace()
                self._expect(">")
                element.text = unescape_text("".join(text_chunks).strip())
                return element
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end == -1:
                    raise XmlParseError("unterminated comment", self.pos)
                self.pos = end + 3
                continue
            if self._peek() == "<":
                element.children.append(self._parse_element())
                continue
            next_tag = self.text.find("<", self.pos)
            if next_tag == -1:
                raise XmlParseError(f"unterminated element <{name}>", self.pos)
            text_chunks.append(self.text[self.pos : next_tag])
            self.pos = next_tag


def parse_xml(document: str) -> XmlElement:
    """Parse a document string produced by :func:`to_xml` back into an element tree."""
    return _Parser(document).parse_document()


__all__ = [
    "XmlElement",
    "XmlParseError",
    "escape_text",
    "parse_xml",
    "to_xml",
    "unescape_text",
]
