"""Golden test pinning the paper's public API surface (Figure 8 + Section 4.3.2).

The v2 core (binding registry, subscription handles, streams, lifecycle) is
free to evolve, but the paper-facing facade may not drift: the seven Figure 8
operations, the camelCase aliases used in the paper's listings
(``newInterface``, ``objectsReceived``, ``objectsSent``) and their parameter
lists are pinned here by name and by ``inspect.signature``.  A failure in
this file means the reproduction no longer matches the paper's listing.
"""

from __future__ import annotations

import inspect

import pytest

from repro.apps.skirental.types import SkiRental
from repro.core import LocalBus, TPSEngine
from repro.core.interface import TPSInterface
from repro.core.jxta_engine import JxtaTPSEngine
from repro.core.local_engine import LocalTPSEngine


def _parameters(callable_obj) -> list:
    """Parameter names of a callable, without ``self``."""
    names = list(inspect.signature(callable_obj).parameters)
    return [name for name in names if name != "self"]


class TestFigure8Surface:
    """The seven operations of Figure 8, as the Python rendering maps them."""

    #: Figure 8 operation -> the facade method that renders it.  (2)/(3)
    #: collapse into one ``subscribe`` (single callback or a list), (4)/(5)
    #: into ``unsubscribe`` (one subscription or all of them).
    FIGURE8 = {
        1: "publish",
        2: "subscribe",
        3: "subscribe",
        4: "unsubscribe",
        5: "unsubscribe",
        6: "objects_received",
        7: "objects_sent",
    }

    def test_all_seven_operations_exist_on_the_interface(self):
        for operation, method in self.FIGURE8.items():
            assert hasattr(TPSInterface, method), f"Figure 8 ({operation}) missing"

    @pytest.mark.parametrize("binding", [LocalTPSEngine, JxtaTPSEngine])
    def test_bindings_expose_the_same_seven_operations(self, binding):
        for method in set(self.FIGURE8.values()):
            assert callable(getattr(binding, method))

    def test_publish_signature(self):
        assert _parameters(TPSInterface.publish) == ["event"]

    def test_subscribe_signature(self):
        # One method covers both Figure 8 overloads: a single callback or a
        # sequence of callbacks, each with optional exception handler(s).
        assert _parameters(TPSInterface.subscribe) == ["callback", "exception_handler"]
        signature = inspect.signature(TPSInterface.subscribe)
        assert signature.parameters["exception_handler"].default is None

    def test_unsubscribe_signature(self):
        # Both Figure 8 forms: with a callback (one subscription) and with no
        # arguments at all ("no event is received anymore").
        assert _parameters(TPSInterface.unsubscribe) == ["callback", "exception_handler"]
        signature = inspect.signature(TPSInterface.unsubscribe)
        assert signature.parameters["callback"].default is None
        assert signature.parameters["exception_handler"].default is None

    def test_history_queries_take_no_arguments(self):
        assert _parameters(TPSInterface.objects_received) == []
        assert _parameters(TPSInterface.objects_sent) == []


class TestCamelCaseAliases:
    """The paper's listings use camelCase; the aliases must stay and delegate."""

    def test_objects_received_alias(self):
        assert _parameters(TPSInterface.objectsReceived) == []

    def test_objects_sent_alias(self):
        assert _parameters(TPSInterface.objectsSent) == []

    def test_new_interface_alias(self):
        assert _parameters(TPSEngine.newInterface) == _parameters(TPSEngine.new_interface)

    def test_aliases_delegate(self):
        engine = TPSEngine(SkiRental, local_bus=LocalBus())
        interface = engine.newInterface("LOCAL")
        assert isinstance(interface, LocalTPSEngine)
        assert interface.objectsReceived() == interface.objects_received() == []
        assert interface.objectsSent() == interface.objects_sent() == []


class TestInitialisationSurface:
    """Section 4.3.2: ``newInterface(String name, Criteria c, Type t, String[] arg)``."""

    def test_new_interface_signature_matches_the_paper(self):
        # The paper's four arguments, in the paper's order.  The only v2
        # addition is the trailing ``**params`` catch-all for binding
        # parameters -- a VAR_KEYWORD slot is invisible to callers following
        # the paper's listings, so the Section 4.3.2 call sites are intact.
        signature = inspect.signature(TPSEngine.new_interface)
        positional = [
            name
            for name, parameter in signature.parameters.items()
            if name != "self" and parameter.kind is not inspect.Parameter.VAR_KEYWORD
        ]
        assert positional == ["name", "criteria", "instance", "argv"]
        extras = [
            parameter
            for parameter in signature.parameters.values()
            if parameter.kind is inspect.Parameter.VAR_KEYWORD
        ]
        assert [parameter.name for parameter in extras] == ["params"]

    def test_new_interface_defaults(self):
        signature = inspect.signature(TPSEngine.new_interface)
        assert signature.parameters["name"].default == "JXTA"
        assert signature.parameters["criteria"].default is None
        assert signature.parameters["instance"].default is None
        assert signature.parameters["argv"].default is None

    def test_two_line_initialisation_still_works(self):
        # The paper's two initialisation lines, rendered in Python.
        tpse = TPSEngine(SkiRental, local_bus=LocalBus())
        tps_int = tpse.new_interface("LOCAL", None, SkiRental("s", 1.0, "b", 1), [])
        assert isinstance(tps_int, TPSInterface)

    def test_subscribe_return_is_backward_compatible(self):
        # The paper's subscribe returns void; v2 returns a handle.  Callers
        # that ignore the return value must observe the paper's semantics:
        # unsubscribing by re-presenting the callback still works.
        engine = LocalTPSEngine(SkiRental, bus=LocalBus())
        collected: list = []
        engine.subscribe(collected.append)
        assert engine.unsubscribe(collected.append) == 1
