"""Peers: the runtime identity of one participant.

"The peer concept points out all networked devices using JXTA.  Any device
with an electronic pulse is a JXTA peer."  (paper, Section 2.1)

A :class:`Peer` ties together a simulated network node, a stable
:class:`~repro.jxta.ids.PeerID`, the endpoint service and the world peer
group with its standard services.  Special peers are flagged through
:class:`PeerConfig`: rendez-vous peers keep track of connected peers and
re-dispatch discovery queries and propagated messages; router peers relay
traffic between peers that cannot talk directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.jxta.advertisement import PeerAdvertisement
from repro.jxta.endpoint import EndpointService
from repro.jxta.ids import PeerID, WORLD_GROUP_ID
from repro.net.cost import CostModel, NoiseSource, PAPER_TESTBED
from repro.net.metrics import MetricsRegistry
from repro.net.node import Node
from repro.net.simclock import SimClock, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.peergroup import PeerGroup


@dataclass
class PeerConfig:
    """Static configuration of a peer.

    Attributes
    ----------
    name:
        Human-readable peer name (also used in advertisements).
    rendezvous:
        Whether this peer acts as a rendez-vous (keeps client connections and
        re-propagates discovery queries and messages).
    router:
        Whether this peer relays unicast traffic for peers that cannot reach
        each other directly (Endpoint Routing Protocol).
    rendezvous_addresses:
        Network addresses of rendez-vous peers this peer should connect to at
        start-up.
    """

    name: str
    rendezvous: bool = False
    router: bool = False
    rendezvous_addresses: List[str] = field(default_factory=list)


class Peer:
    """One running peer: node + ID + endpoint + world peer group.

    Instances are normally created through
    :func:`repro.jxta.platform.create_peer`, which also attaches the node to
    the network, boots the world group and publishes the peer advertisement.
    """

    def __init__(
        self,
        node: Node,
        simulator: Simulator,
        config: PeerConfig,
        *,
        peer_id: Optional[PeerID] = None,
        cost_model: CostModel = PAPER_TESTBED,
        noise: Optional[NoiseSource] = None,
    ) -> None:
        self.node = node
        self.simulator = simulator
        self.config = config
        self.peer_id = peer_id or PeerID()
        self.cost_model = cost_model
        self.noise = noise or NoiseSource()
        self.metrics: MetricsRegistry = node.metrics
        self.started_at = simulator.now
        self.endpoint = EndpointService(self)
        self._world_group: Optional["PeerGroup"] = None
        self._joined_groups: List["PeerGroup"] = []

    # ------------------------------------------------------------ properties

    @property
    def name(self) -> str:
        """The peer's human-readable name."""
        return self.config.name

    @property
    def clock(self) -> SimClock:
        """The simulation clock this peer lives on."""
        return self.simulator.clock

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.simulator.now

    @property
    def is_rendezvous(self) -> bool:
        """Whether the peer acts as a rendez-vous."""
        return self.config.rendezvous

    @property
    def is_router(self) -> bool:
        """Whether the peer acts as a router."""
        return self.config.router

    @property
    def world_group(self) -> "PeerGroup":
        """The world (net) peer group this peer booted into."""
        if self._world_group is None:
            raise RuntimeError(
                f"peer {self.name!r} has no world group yet; create it via "
                "repro.jxta.platform.create_peer"
            )
        return self._world_group

    def _set_world_group(self, group: "PeerGroup") -> None:
        self._world_group = group

    @property
    def joined_groups(self) -> List["PeerGroup"]:
        """Every peer group this peer has instantiated locally (world group first)."""
        groups: List["PeerGroup"] = []
        if self._world_group is not None:
            groups.append(self._world_group)
        groups.extend(self._joined_groups)
        return groups

    def _register_group(self, group: "PeerGroup") -> None:
        if group is not self._world_group and group not in self._joined_groups:
            self._joined_groups.append(group)

    # ------------------------------------------------------------- lifecycle

    def uptime(self) -> float:
        """Seconds of virtual time since the peer started (used by the PIP)."""
        return self.now - self.started_at

    def restart_at_address(self, new_address: str) -> None:
        """Simulate the peer coming back online at a different network address.

        The peer keeps its :class:`PeerID` (the whole point of the Pipe
        Binding Protocol is that pipes survive such address changes), but its
        node moves to a fresh address on the same network segment.
        """
        network = self.node.network
        if network is None:
            raise RuntimeError("peer is not attached to a network")
        segment = network.segment_of(self.node.address)
        old_node = self.node
        old_node.go_offline()
        new_node = Node(
            new_address,
            transports=[k for k, i in old_node.interfaces.items() if i.enabled],
            firewall=old_node.firewall,
        )
        network.attach(new_node, segment=segment)
        self.node = new_node
        self.metrics = new_node.metrics
        # Re-wire the endpoint onto the new node.
        self.endpoint.node = new_node
        new_node.add_handler(self.endpoint._on_packet)
        self.endpoint.learn_address(self.peer_id, new_address)

    # --------------------------------------------------------- advertisement

    def advertisement(self) -> PeerAdvertisement:
        """Build this peer's advertisement (ID, name, endpoints, roles)."""
        endpoints = [
            f"{kind.value}://{self.node.address}"
            for kind, interface in self.node.interfaces.items()
            if interface.enabled
        ]
        return PeerAdvertisement(
            peer_id=self.peer_id,
            group_id=WORLD_GROUP_ID,
            name=self.name,
            endpoints=sorted(endpoints),
            is_rendezvous=self.is_rendezvous,
            is_router=self.is_router,
            created_at=self.now,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        roles = []
        if self.is_rendezvous:
            roles.append("rdv")
        if self.is_router:
            roles.append("router")
        suffix = f" [{','.join(roles)}]" if roles else ""
        return f"Peer({self.name!r}, {self.peer_id!r}{suffix})"


__all__ = ["Peer", "PeerConfig"]
