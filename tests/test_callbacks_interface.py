"""Tests for the callback adapters and the TPSInterface base behaviour."""

from __future__ import annotations

import pytest

from repro.core.callbacks import (
    CollectingCallback,
    CollectingExceptionHandler,
    FunctionCallback,
    FunctionExceptionHandler,
    PrintingExceptionHandler,
    as_callback,
    as_exception_handler,
)
from repro.core.exceptions import PSException
from repro.core.interface import Subscription
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.subscriber import TPSSubscriberManager


class Event:
    def __init__(self, value=0):
        self.value = value


class TestCallbackAdapters:
    def test_plain_callable_adapted(self):
        collected = []
        callback = as_callback(collected.append)
        callback.handle("x")
        assert collected == ["x"]

    def test_callback_instance_passes_through(self):
        callback = CollectingCallback()
        assert as_callback(callback) is callback

    def test_invalid_callback_rejected(self):
        with pytest.raises(TypeError):
            as_callback(42)
        with pytest.raises(TypeError):
            FunctionCallback("not callable")

    def test_exception_handler_adapters(self):
        errors = []
        handler = as_exception_handler(errors.append)
        handler.handle(ValueError("x"))
        assert len(errors) == 1
        collecting = CollectingExceptionHandler()
        assert as_exception_handler(collecting) is collecting
        # None means "collect silently".
        default = as_exception_handler(None)
        default.handle(ValueError("y"))
        assert len(default.errors) == 1
        with pytest.raises(TypeError):
            as_exception_handler(3.14)
        with pytest.raises(TypeError):
            FunctionExceptionHandler(3.14)

    def test_printing_handler_does_not_raise(self, capsys):
        PrintingExceptionHandler().handle(RuntimeError("boom"))
        assert "boom" in capsys.readouterr().out

    def test_collecting_callback_len(self):
        callback = CollectingCallback()
        callback.handle(1)
        callback.handle(2)
        assert len(callback) == 2


class TestSubscription:
    def test_matches_original_objects(self):
        def callback(event):
            pass

        def handler(error):
            pass

        subscription = Subscription(
            callback=as_callback(callback),
            exception_handler=as_exception_handler(handler),
            original_callback=callback,
            original_handler=handler,
        )
        assert subscription.matches(callback)
        assert subscription.matches(callback, handler)
        assert not subscription.matches(lambda e: None)
        assert not subscription.matches(callback, lambda e: None)


class TestSubscriberManager:
    def test_dispatch_routes_errors_to_handlers(self):
        manager = TPSSubscriberManager()
        good, errors = [], CollectingExceptionHandler()

        def failing(event):
            raise ValueError("nope")

        manager.add(
            Subscription(as_callback(good.append), as_exception_handler(None), good.append)
        )
        manager.add(Subscription(as_callback(failing), errors, failing))
        delivered = manager.dispatch("event")
        assert delivered == 1
        assert good == ["event"]
        assert len(errors.errors) == 1

    def test_broken_exception_handler_does_not_stop_dispatch(self):
        manager = TPSSubscriberManager()

        def failing(event):
            raise ValueError("nope")

        def broken_handler(error):
            raise RuntimeError("handler is broken too")

        collected = []
        manager.add(Subscription(as_callback(failing), as_exception_handler(broken_handler), failing))
        manager.add(Subscription(as_callback(collected.append), as_exception_handler(None), collected.append))
        assert manager.dispatch("e") == 1
        assert collected == ["e"]

    def test_remove_specific_and_all(self):
        manager = TPSSubscriberManager()
        a, b = (lambda e: None), (lambda e: None)
        manager.add(Subscription(as_callback(a), as_exception_handler(None), a))
        manager.add(Subscription(as_callback(b), as_exception_handler(None), b))
        assert manager.remove(a) == 1
        assert len(manager) == 1
        assert manager.remove() == 1
        assert manager.empty


class TestInterfaceSubscribeForms:
    """The subscribe()/unsubscribe() forms of Figure 8, exercised on the local binding."""

    def _pair(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(Event, bus=bus)
        subscriber = LocalTPSEngine(Event, bus=bus)
        return publisher, subscriber

    def test_single_callback_subscribe(self):
        publisher, subscriber = self._pair()
        collected = []
        subscriber.subscribe(collected.append)
        publisher.publish(Event(1))
        assert len(collected) == 1

    def test_list_subscribe_with_matching_handlers(self):
        publisher, subscriber = self._pair()
        first, second = [], []
        errors = CollectingExceptionHandler()
        subscriber.subscribe([first.append, second.append], [errors, errors])
        publisher.publish(Event(2))
        assert len(first) == 1 and len(second) == 1

    def test_list_subscribe_with_shared_handler(self):
        publisher, subscriber = self._pair()
        first, second = [], []
        errors = CollectingExceptionHandler()
        subscriber.subscribe([first.append, second.append], errors)
        publisher.publish(Event(3))
        assert len(first) == len(second) == 1

    def test_list_subscribe_mismatched_lengths_rejected(self):
        _publisher, subscriber = self._pair()
        with pytest.raises(PSException):
            subscriber.subscribe([lambda e: None, lambda e: None], [None])

    def test_empty_callback_list_rejected(self):
        _publisher, subscriber = self._pair()
        with pytest.raises(PSException):
            subscriber.subscribe([])

    def test_unsubscribe_specific_callback(self):
        publisher, subscriber = self._pair()
        keep, drop = [], []
        subscriber.subscribe(keep.append)
        subscriber.subscribe(drop.append)
        assert subscriber.unsubscribe(drop.append) == 1
        publisher.publish(Event(4))
        assert len(keep) == 1 and len(drop) == 0

    def test_unsubscribe_all(self):
        publisher, subscriber = self._pair()
        collected = []
        subscriber.subscribe(collected.append)
        subscriber.subscribe(collected.append)
        assert subscriber.unsubscribe() == 2
        publisher.publish(Event(5))
        assert collected == []

    def test_camel_case_aliases(self):
        publisher, subscriber = self._pair()
        collected = []
        subscriber.subscribe(collected.append)
        publisher.publish(Event(6))
        assert len(subscriber.objectsReceived()) == 1
        assert len(publisher.objectsSent()) == 1
