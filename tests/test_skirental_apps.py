"""Tests for the ski-rental application in its three variants."""

from __future__ import annotations

import pytest

from repro.apps.skirental import (
    PremiumSkiRental,
    RentalOffer,
    SkiRental,
    SkiRentalJxtaPublisher,
    SkiRentalJxtaSubscriber,
    SkiRentalTPSPublisher,
    SkiRentalTPSSubscriber,
    SnowboardRental,
    WirePublisher,
    WireSubscriber,
    shared_wire_advertisement,
)
from repro.apps.skirental.jxta_app import WireServiceFinderException


OFFERS = [
    SkiRental("XTremShop", 100.0, "Salomon", 14.0),
    SkiRental("AlpineHut", 80.0, "Rossignol", 7.0),
    SkiRental("ValleyRentals", 55.0, "Head", 3.0),
]


class TestEventTypes:
    def test_price_per_day(self):
        offer = SkiRental("s", 70.0, "b", 7.0)
        assert offer.price_per_day == pytest.approx(10.0)
        assert RentalOffer("s", 50.0, 0.0).price_per_day == 50.0

    def test_equality_and_hash(self):
        a = SkiRental("s", 10.0, "b", 1.0)
        b = SkiRental("s", 10.0, "b", 1.0)
        c = SkiRental("s", 11.0, "b", 1.0)
        assert a == b and hash(a) == hash(b)
        assert a != c
        # Different concrete types never compare equal even with same fields.
        assert RentalOffer("s", 10.0, 1.0) != SnowboardRental("s", 10.0, "b", 1.0)

    def test_str_forms(self):
        assert "Salomon" in str(SkiRental("s", 10.0, "Salomon", 1.0))
        assert "boots" in str(PremiumSkiRental("s", 10.0, "b", 1.0, extras=("boots",)))
        assert "no extras" in str(PremiumSkiRental("s", 10.0, "b", 1.0))
        assert "goofy" in str(SnowboardRental("s", 10.0, "b", 1.0, stance="goofy"))

    def test_hierarchy(self):
        assert issubclass(PremiumSkiRental, SkiRental)
        assert issubclass(SkiRental, RentalOffer)
        assert not issubclass(SnowboardRental, SkiRental)


def _publish_all(builder, publisher, offers=OFFERS):
    for offer in offers:
        receipt = publisher.publish_offer(offer)
        builder.simulator.run_until(max(builder.simulator.now, receipt.completion_time))
    builder.settle(rounds=8)


class TestSRTPS:
    def test_publisher_and_subscribers(self, lan):
        builder = lan
        shop = SkiRentalTPSPublisher(builder.peer_named("peer-0"))
        builder.settle(rounds=8)
        shoppers = [
            SkiRentalTPSSubscriber(builder.peer_named(f"peer-{i}")) for i in (1, 2)
        ]
        builder.settle(rounds=12)
        assert shop.ready and all(s.ready for s in shoppers)
        _publish_all(builder, shop)
        for shopper in shoppers:
            assert shopper.received_count() == len(OFFERS)
            assert shopper.received_offers() == OFFERS
        assert shop.offers_sent() == OFFERS

    def test_best_offer_and_console_lines(self, lan):
        builder = lan
        shop = SkiRentalTPSPublisher(builder.peer_named("peer-0"))
        builder.settle(rounds=8)
        shopper = SkiRentalTPSSubscriber(builder.peer_named("peer-1"))
        builder.settle(rounds=12)
        _publish_all(builder, shop)
        best = shopper.best_offer()
        assert best is not None
        assert best.price_per_day == min(o.price_per_day for o in OFFERS)
        # The console callback (the paper's MyCBInterface) rendered every offer.
        assert len(shopper.console_lines) == len(OFFERS)
        assert all("Skis that could be rented" in line for line in shopper.console_lines)
        assert shopper.best_offer() is not None
        assert not shopper.exception_handler.errors

    def test_unsubscribe_stops_reception(self, lan):
        builder = lan
        shop = SkiRentalTPSPublisher(builder.peer_named("peer-0"))
        builder.settle(rounds=8)
        shopper = SkiRentalTPSSubscriber(builder.peer_named("peer-1"))
        builder.settle(rounds=12)
        shopper.unsubscribe()
        _publish_all(builder, shop)
        assert shopper.received_count() == 0

    def test_empty_best_offer(self, lan):
        builder = lan
        shopper = SkiRentalTPSSubscriber(builder.peer_named("peer-1"))
        assert shopper.best_offer() is None


class TestSRJXTA:
    def test_publisher_and_subscriber(self, lan):
        builder = lan
        shop = SkiRentalJxtaPublisher(builder.peer_named("peer-0"), search_timeout=2.0)
        builder.settle(rounds=8)
        shopper = SkiRentalJxtaSubscriber(
            builder.peer_named("peer-1"), create_if_missing=False
        )
        builder.settle(rounds=12)
        assert shop.ready and shopper.ready
        assert shop.created_own and not shopper.created_own
        _publish_all(builder, shop)
        assert shopper.received_count() == len(OFFERS)
        # The hand-decoded offers round-trip field by field.
        assert shopper.received_offers() == OFFERS
        assert shopper.parse_errors == []
        assert shop.offers_sent == OFFERS

    def test_publish_before_initialisation_raises(self, lan):
        builder = lan
        shop = SkiRentalJxtaPublisher(builder.peer_named("peer-0"))
        with pytest.raises(WireServiceFinderException):
            shop.publish_offer(OFFERS[0])

    def test_duplicate_filtering_with_two_advertisements(self, lan):
        builder = lan
        shop_a = SkiRentalJxtaPublisher(builder.peer_named("peer-0"), search_timeout=2.0)
        shop_b = SkiRentalJxtaPublisher(builder.peer_named("peer-1"), search_timeout=2.0)
        shopper = SkiRentalJxtaSubscriber(builder.peer_named("peer-2"), create_if_missing=False)
        builder.settle(rounds=20)
        # Both shops raced and created an advertisement each; the shopper is
        # attached to both, and each shop publishes on both pipes.
        assert shop_a.created_own and shop_b.created_own
        assert len(shopper.wire_finders) == 2
        _publish_all(builder, shop_a, OFFERS[:2])
        assert shopper.received_count() == 2
        assert shopper.peer.metrics.counters().get("sr_jxta_duplicates", 0) >= 1

    def test_close_stops_reception(self, lan):
        builder = lan
        shop = SkiRentalJxtaPublisher(builder.peer_named("peer-0"), search_timeout=2.0)
        builder.settle(rounds=8)
        shopper = SkiRentalJxtaSubscriber(builder.peer_named("peer-1"), create_if_missing=False)
        builder.settle(rounds=12)
        shopper.close()
        _publish_all(builder, shop, OFFERS[:1])
        assert shopper.received_count() == 0


class TestWireOnly:
    def test_publish_and_receive_raw_payloads(self, lan):
        builder = lan
        advertisement = shared_wire_advertisement("SkiRental")
        subscriber = WireSubscriber(builder.peer_named("peer-1"), advertisement)
        builder.settle(rounds=4)
        publisher = WirePublisher(builder.peer_named("peer-0"), advertisement)
        builder.settle(rounds=4)
        receipt = publisher.publish_bytes(b"raw ski rental payload")
        builder.settle(rounds=4)
        assert receipt.targets == 1
        assert subscriber.received_count() == 1
        assert subscriber.received_offers() == [b"raw ski rental payload"]

    def test_publish_offer_sends_string_form(self, lan):
        builder = lan
        advertisement = shared_wire_advertisement("SkiRental")
        subscriber = WireSubscriber(builder.peer_named("peer-1"), advertisement)
        builder.settle(rounds=4)
        publisher = WirePublisher(builder.peer_named("peer-0"), advertisement)
        builder.settle(rounds=4)
        publisher.publish_offer(OFFERS[0])
        builder.settle(rounds=4)
        assert b"XTremShop" in subscriber.payloads[0]

    def test_listener_callback(self, lan):
        builder = lan
        advertisement = shared_wire_advertisement("SkiRental")
        seen = []
        subscriber = WireSubscriber(
            builder.peer_named("peer-1"), advertisement, listener=seen.append
        )
        builder.settle(rounds=4)
        publisher = WirePublisher(builder.peer_named("peer-0"), advertisement)
        builder.settle(rounds=4)
        publisher.publish_bytes(b"x")
        builder.settle(rounds=4)
        assert seen == [b"x"]
        subscriber.close()
        publisher.publish_bytes(b"y")
        builder.settle(rounds=4)
        assert seen == [b"x"]


class TestVariantEquivalence:
    def test_all_three_variants_deliver_the_same_offers(self, builder):
        """The functional behaviour is identical; only the abstraction level differs."""
        builder.add_rendezvous("rdv-0")
        peers = {name: builder.add_peer(name) for name in ("tps-p", "tps-s", "jxta-p", "jxta-s")}
        builder.settle(rounds=4)

        tps_shop = SkiRentalTPSPublisher(peers["tps-p"])
        jxta_shop = SkiRentalJxtaPublisher(peers["jxta-p"], type_name="SkiRentalJxta", search_timeout=2.0)
        builder.settle(rounds=8)
        tps_shopper = SkiRentalTPSSubscriber(peers["tps-s"])
        jxta_shopper = SkiRentalJxtaSubscriber(
            peers["jxta-s"], type_name="SkiRentalJxta", create_if_missing=False
        )
        builder.settle(rounds=14)

        for offer in OFFERS:
            r1 = tps_shop.publish_offer(offer)
            r2 = jxta_shop.publish_offer(offer)
            builder.simulator.run_until(
                max(builder.simulator.now, r1.completion_time, r2.completion_time)
            )
        builder.settle(rounds=10)
        assert tps_shopper.received_offers() == OFFERS
        assert jxta_shopper.received_offers() == OFFERS
