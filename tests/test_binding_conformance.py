"""Cross-binding conformance: "same API, any transport" as a pytest matrix.

The paper's central claim is that one typed publish/subscribe abstraction
runs unchanged over different infrastructures.  This suite is that claim in
executable form: every behavioral test below runs identically -- same
bodies, same assertions -- against every registered built-in binding:

* ``LOCAL``   -- the in-process bus;
* ``SHARDED`` -- the N-shard in-process bus;
* ``JXTA``    -- the simulated P2P substrate (publisher and subscriber on
  *different* peers, traffic over the wire);
* ``SHARDED+JXTA`` -- the composite (remote subscriber over the wire, and a
  same-peer local check in its dedicated test);
* ``ASYNC``   -- the asyncio-native binding, driven through a thin driver
  shim that marshals each call onto the harness-owned event loop
  (``loop.run_until_complete``) and awaits awaitable results, so the very
  same sync-shaped test bodies exercise ``await tps.publish(...)`` et al.

The only per-binding knowledge lives in the harness: how to build a
publisher/subscriber interface pair and how to *pump* in-flight deliveries
(a no-op for the synchronous in-process bindings; run-the-simulator for the
wire bindings; for ``ASYNC``, serial dispatch completes delivery inside the
awaited publish, so pumping is a no-op there too).  The test bodies never
branch on the binding name.

Covered surface: publish/subscribe with ordering and history, handle
cancellation, fluent ``.where()`` predicates, streams under both overflow
policies, close idempotence, and the uniform post-close ``PSException``.

The ``+CHAOS`` variants (marked ``chaos``) re-run the wire bindings over a
fault-injected network -- every link drops, duplicates, reorders and delays
packets per :meth:`repro.net.faults.FaultPlan.chaos` -- with the wire
layer's reliable delivery switched on.  Every assertion stays byte-for-byte
identical: at-least-once retries plus receiver dedup and ordering must make
a faulty network indistinguishable from a clean one at the TPS API.

The ``+RESHARD`` variants (PR 7) additionally grow and shrink every sharded
bus *between pumps*, so each behavioral test runs across live
``add_shard``/``remove_shard`` migrations -- alone for the in-process
``SHARDED`` binding, and stacked on top of the chaos fault plan for the
composite.  Again every assertion is unchanged: elasticity, like the
network faults, must be invisible at the TPS API.
"""

from __future__ import annotations

import asyncio
import inspect
from typing import Any, List, Optional, Tuple

import pytest

from repro.apps.skirental.types import SkiRental
from repro.core import TPSConfig, TPSEngine
from repro.core.exceptions import PSException
from repro.core.interface import TPSInterface
from repro.core.local_engine import LocalBus
from repro.core.sharded_engine import ShardedLocalBus
from repro.jxta.platform import JxtaNetworkBuilder
from repro.net.faults import FaultPlan

#: Suffix selecting a fault-injected network with reliable delivery on.
CHAOS_SUFFIX = "+CHAOS"

#: Suffix growing/shrinking every sharded bus between pumps (live
#: resharding while the behavioral tests run).
RESHARD_SUFFIX = "+RESHARD"

#: The behavioral matrix: every test in this module runs once per binding,
#: plus once per wire binding over the standard chaos fault plan, plus the
#: resharding variants of the sharded bindings.
BINDINGS = (
    "LOCAL",
    "SHARDED",
    "JXTA",
    "SHARDED+JXTA",
    pytest.param("ASYNC", marks=pytest.mark.asyncio),
    pytest.param("JXTA" + CHAOS_SUFFIX, marks=pytest.mark.chaos),
    pytest.param("SHARDED+JXTA" + CHAOS_SUFFIX, marks=pytest.mark.chaos),
    pytest.param("SHARDED" + RESHARD_SUFFIX, marks=pytest.mark.migration),
    pytest.param(
        "SHARDED+JXTA" + CHAOS_SUFFIX + RESHARD_SUFFIX,
        marks=[pytest.mark.chaos, pytest.mark.migration],
    ),
)

#: Conformance involves full simulated networks for the wire bindings.
pytestmark = [pytest.mark.slow]


def _offer(shop: str = "shop", price: float = 10.0) -> SkiRental:
    return SkiRental(shop, price, "Salomon", 7)


class _LoopProxy:
    """Marshals calls onto the harness-owned event loop, awaiting results.

    The ASYNC binding's objects are loop-confined and its verbs are
    awaitables; these drivers give them the synchronous face the shared
    test bodies expect.  Each call runs *on* the owning loop (the loop is
    driven by the test thread via ``run_until_complete``), so the binding's
    loop-affinity checks pass exactly as they would for a real coroutine
    caller -- the shim translates the calling convention, never the
    behavior.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    def _run(self, fn: Any, *args: Any, **kwargs: Any) -> Any:
        async def call() -> Any:
            result = fn(*args, **kwargs)
            if inspect.isawaitable(result):
                result = await result
            return result

        return self._loop.run_until_complete(call())


class AsyncHandleDriver(_LoopProxy):
    def __init__(self, handle: Any, loop: asyncio.AbstractEventLoop) -> None:
        super().__init__(loop)
        self._handle = handle

    def cancel(self) -> int:
        return self._run(self._handle.cancel)

    @property
    def active(self) -> bool:
        return self._handle.active

    def __enter__(self) -> "AsyncHandleDriver":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.cancel()


class AsyncStreamDriver(_LoopProxy):
    def __init__(self, stream: Any, loop: asyncio.AbstractEventLoop) -> None:
        super().__init__(loop)
        self._stream = stream

    def get(self, timeout: Optional[float] = None) -> Any:
        return self._run(self._stream.get, timeout=timeout)

    def drain(self) -> List[Any]:
        return self._run(self._stream.drain)

    def close(self) -> None:
        self._run(self._stream.close)

    @property
    def closed(self) -> bool:
        return self._stream.closed

    @property
    def pending(self) -> int:
        return self._stream.pending

    @property
    def dropped(self) -> int:
        return self._stream.dropped

    def __enter__(self) -> "AsyncStreamDriver":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class AsyncBuilderDriver(_LoopProxy):
    """Chains on the real SubscriptionBuilder -- the fluent surface is the
    shared one; only the terminal operations marshal onto the loop."""

    def __init__(self, builder: Any, loop: asyncio.AbstractEventLoop) -> None:
        super().__init__(loop)
        self._builder = builder

    def where(self, predicate: Any) -> "AsyncBuilderDriver":
        self._builder.where(predicate)
        return self

    def on_error(self, handler: Any) -> "AsyncBuilderDriver":
        self._builder.on_error(handler)
        return self

    def start(self) -> AsyncHandleDriver:
        return AsyncHandleDriver(self._run(self._builder.start), self._loop)

    def stream(self, *args: Any, **kwargs: Any) -> AsyncStreamDriver:
        return AsyncStreamDriver(
            self._run(self._builder.stream, *args, **kwargs), self._loop
        )


class AsyncInterfaceDriver(_LoopProxy):
    def __init__(self, interface: Any, loop: asyncio.AbstractEventLoop) -> None:
        super().__init__(loop)
        self._interface = interface

    def publish(self, event: Any) -> Any:
        return self._run(self._interface.publish, event)

    def publish_many(self, events: Any) -> Any:
        return self._run(self._interface.publish_many, events)

    def subscribe(self, *args: Any, **kwargs: Any) -> AsyncHandleDriver:
        return AsyncHandleDriver(
            self._run(self._interface.subscribe, *args, **kwargs), self._loop
        )

    def unsubscribe(self, *args: Any, **kwargs: Any) -> int:
        return self._run(self._interface.unsubscribe, *args, **kwargs)

    def subscription(self, *args: Any, **kwargs: Any) -> AsyncBuilderDriver:
        return AsyncBuilderDriver(
            self._run(self._interface.subscription, *args, **kwargs), self._loop
        )

    def stream(self, *args: Any, **kwargs: Any) -> AsyncStreamDriver:
        return AsyncStreamDriver(
            self._run(self._interface.stream, *args, **kwargs), self._loop
        )

    def objects_received(self) -> List[Any]:
        return self._interface.objects_received()

    def objects_sent(self) -> List[Any]:
        return self._interface.objects_sent()

    def close(self) -> None:
        self._run(self._interface.close)

    @property
    def closed(self) -> bool:
        return self._interface.closed

    def __enter__(self) -> "AsyncInterfaceDriver":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class BindingHarness:
    """Builds interface pairs over one binding and pumps its deliveries."""

    #: Settle rounds after a publish; generous so slow discovery converges.
    PUMP_ROUNDS = 10

    def __init__(self, binding: str) -> None:
        self.reshard = binding.endswith(RESHARD_SUFFIX)
        if self.reshard:
            binding = binding[: -len(RESHARD_SUFFIX)]
        self.chaos = binding.endswith(CHAOS_SUFFIX)
        if self.chaos:
            binding = binding[: -len(CHAOS_SUFFIX)]
        self.binding = binding
        self.engines: List[TPSEngine] = []
        self.builder: Optional[JxtaNetworkBuilder] = None
        self.local_bus: Optional[Any] = None
        #: The harness-owned event loop (ASYNC binding only).
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        #: Buses to grow/shrink between pumps (+RESHARD variants).
        self._reshard_buses: List[ShardedLocalBus] = []
        self._reshard_step = 0
        if binding == "LOCAL":
            self.local_bus = LocalBus()
        elif binding == "SHARDED":
            self.local_bus = ShardedLocalBus(shards=4)
        elif binding == "ASYNC":
            # The registry resolves a parameter-less ASYNC request to the
            # per-loop shared bus, so interfaces built on this loop pair up
            # exactly like the in-process bindings sharing self.local_bus.
            self.loop = asyncio.new_event_loop()
        else:
            self.builder = JxtaNetworkBuilder(seed=20020713)
            self.builder.add_rendezvous("rdv-0")
            self.publisher_peer = self.builder.add_peer("conf-pub")
            self.subscriber_peer = self.builder.add_peer("conf-sub")
            # Discovery converges on a clean network; the faults switch on
            # *before* any TPS traffic, so every publish crosses chaos.
            self.builder.settle(rounds=6)
            if self.chaos:
                self.builder.network.fault_plan = FaultPlan.chaos(seed=20020713)

    @property
    def wire(self) -> bool:
        return self.builder is not None

    def interface(
        self, *, peer: Any = None, create: bool = True, event_type: type = SkiRental
    ) -> TPSInterface:
        """One interface over this harness's binding (wire peers explicit)."""
        if self.wire:
            config = TPSConfig(
                search_timeout=2.0 if create else 6.0,
                create_if_missing=create,
                reliable_delivery=self.chaos,
            )
            engine = TPSEngine(
                event_type, peer=peer or self.publisher_peer, config=config
            )
        elif self.loop is not None:
            engine = TPSEngine(event_type)
            self.engines.append(engine)
            # new_interface must run on the owning loop ('the loop is the
            # thread'); the driver keeps marshaling every later call there.
            interface = self._run_on_loop(engine.new_interface, self.binding)
            return AsyncInterfaceDriver(interface, self.loop)
        else:
            engine = TPSEngine(event_type, local_bus=self.local_bus)
        self.engines.append(engine)
        interface = engine.new_interface(self.binding)
        if self.reshard:
            bus = getattr(interface, "bus", None) or self.local_bus
            if isinstance(bus, ShardedLocalBus) and bus not in self._reshard_buses:
                self._reshard_buses.append(bus)
        return interface

    def pair(self) -> Tuple[TPSInterface, TPSInterface]:
        """A (publisher, subscriber) pair, discovery already converged.

        For wire bindings the publisher creates the advertisement and the
        subscriber (on the other peer) discovers it; for in-process
        bindings the two interfaces simply share the bus.
        """
        publisher = self.interface(create=True)
        self.pump()
        subscriber = self.interface(
            peer=self.subscriber_peer if self.wire else None, create=False
        )
        self.pump()
        return publisher, subscriber

    def pump(self, receipt: Any = None) -> None:
        """Drive in-flight deliveries to completion (no-op in-process).

        ``+RESHARD`` variants alternate ``add_shard``/``remove_shard`` on
        every known bus here, so each behavioral test crosses several live
        migrations without the test bodies knowing.
        """
        if self.reshard:
            self._reshard_step += 1
            for bus in self._reshard_buses:
                if self._reshard_step % 2:
                    bus.add_shard()
                else:
                    bus.remove_shard()
        if self.builder is None:
            return
        simulator = self.builder.simulator
        if receipt is not None and getattr(receipt, "completion_time", 0.0):
            simulator.run_until(max(simulator.now, receipt.completion_time))
        self.builder.settle(rounds=self.PUMP_ROUNDS)

    def publish(self, interface: TPSInterface, event: Any) -> Any:
        """Publish and pump, so the event is delivered on return."""
        receipt = interface.publish(event)
        self.pump(receipt)
        return receipt

    def _run_on_loop(self, fn: Any, *args: Any, **kwargs: Any) -> Any:
        async def call() -> Any:
            return fn(*args, **kwargs)

        assert self.loop is not None
        return self.loop.run_until_complete(call())

    def finish(self) -> None:
        if self.loop is not None:
            # Engine close iterates interface.close(), which is
            # loop-confined; run the whole teardown on the owning loop.
            for engine in self.engines:
                self._run_on_loop(engine.close)
            self.loop.close()
            return
        for engine in self.engines:
            engine.close()


@pytest.fixture(params=BINDINGS)
def harness(request):
    built = BindingHarness(request.param)
    yield built
    built.finish()


class TestPublishSubscribeConformance:
    def test_delivery_in_publish_order_with_histories(self, harness):
        publisher, subscriber = harness.pair()
        inbox: List[Any] = []
        subscriber.subscribe(inbox.append)
        harness.pump()
        events = [_offer(f"shop-{index}", 10.0 * (index + 1)) for index in range(3)]
        for event in events:
            harness.publish(publisher, event)
        assert [(e.shop, e.price) for e in inbox] == [
            (e.shop, e.price) for e in events
        ]
        # Histories (Figure 8 operations 6 and 7) agree with delivery.
        assert [e.shop for e in publisher.objects_sent()] == [e.shop for e in events]
        assert [e.shop for e in subscriber.objects_received()] == [
            e.shop for e in events
        ]
        # Delivered objects are isolated copies of the right type.
        assert all(isinstance(e, SkiRental) for e in inbox)
        assert all(
            delivered is not published for delivered, published in zip(inbox, events)
        )

    def test_unsubscribed_interface_receives_nothing(self, harness):
        publisher, subscriber = harness.pair()
        harness.publish(publisher, _offer())
        assert subscriber.objects_received() == []

    def test_publish_rejects_foreign_type(self, harness):
        publisher, _ = harness.pair()
        with pytest.raises(PSException):
            publisher.publish(object())


class TestHandleCancelConformance:
    def test_cancel_stops_delivery_exactly_once(self, harness):
        publisher, subscriber = harness.pair()
        inbox: List[Any] = []
        handle = subscriber.subscribe(inbox.append)
        harness.pump()
        harness.publish(publisher, _offer("before"))
        assert handle.cancel() == 1
        assert not handle.active
        harness.pump()
        harness.publish(publisher, _offer("after"))
        assert [e.shop for e in inbox] == ["before"]
        # Cancelling again is a no-op, uniformly.
        assert handle.cancel() == 0

    def test_scoped_subscription_via_context_manager(self, harness):
        publisher, subscriber = harness.pair()
        inbox: List[Any] = []
        with subscriber.subscribe(inbox.append):
            harness.pump()
            harness.publish(publisher, _offer("inside"))
        harness.pump()
        harness.publish(publisher, _offer("outside"))
        assert [e.shop for e in inbox] == ["inside"]


class TestWherePredicateConformance:
    def test_pushed_down_predicate_filters_delivery(self, harness):
        publisher, subscriber = harness.pair()
        inbox: List[Any] = []
        subscriber.subscription(inbox.append).where(
            lambda offer: offer.price < 50.0
        ).start()
        harness.pump()
        harness.publish(publisher, _offer("cheap", 10.0))
        harness.publish(publisher, _offer("expensive", 500.0))
        harness.publish(publisher, _offer("bargain", 25.0))
        assert [e.shop for e in inbox] == ["cheap", "bargain"]

    def test_raising_predicate_routes_to_error_handler(self, harness):
        publisher, subscriber = harness.pair()
        inbox: List[Any] = []
        errors: List[BaseException] = []

        def broken(offer: Any) -> bool:
            raise ValueError("bad predicate")

        subscriber.subscription(inbox.append).where(broken).on_error(
            errors.append
        ).start()
        harness.pump()
        harness.publish(publisher, _offer())
        assert inbox == []
        assert len(errors) == 1 and isinstance(errors[0], ValueError)


class TestStreamConformance:
    def test_stream_block_policy_fifo(self, harness):
        publisher, subscriber = harness.pair()
        with subscriber.stream(maxsize=10, policy="block") as stream:
            harness.pump()
            for index in range(3):
                harness.publish(publisher, _offer(f"shop-{index}"))
            assert [e.shop for e in stream.drain()] == [
                "shop-0",
                "shop-1",
                "shop-2",
            ]
            assert stream.dropped == 0

    def test_stream_drop_oldest_policy_bounds_buffer(self, harness):
        publisher, subscriber = harness.pair()
        with subscriber.stream(maxsize=2, policy="drop_oldest") as stream:
            harness.pump()
            for index in range(5):
                harness.publish(publisher, _offer(f"shop-{index}"))
            assert stream.dropped == 3
            # The freshest two events survive, in order.
            assert [e.shop for e in stream.drain()] == ["shop-3", "shop-4"]

    def test_closed_stream_stops_buffering(self, harness):
        publisher, subscriber = harness.pair()
        stream = subscriber.stream(maxsize=10)
        harness.pump()
        harness.publish(publisher, _offer("kept"))
        stream.close()
        harness.pump()
        harness.publish(publisher, _offer("lost"))
        assert [e.shop for e in stream.drain()] == ["kept"]
        with pytest.raises(PSException):
            stream.get(timeout=0.01)


class TestLifecycleConformance:
    def test_close_is_idempotent_and_observable(self, harness):
        publisher, subscriber = harness.pair()
        assert not publisher.closed
        publisher.close()
        assert publisher.closed
        publisher.close()  # idempotent, uniformly
        assert publisher.closed
        subscriber.close()
        assert subscriber.closed

    def test_context_manager_form(self, harness):
        publisher, subscriber = harness.pair()
        with publisher:
            pass
        assert publisher.closed
        subscriber.close()

    def test_closed_interface_receives_nothing(self, harness):
        publisher, subscriber = harness.pair()
        inbox: List[Any] = []
        subscriber.subscribe(inbox.append)
        harness.pump()
        subscriber.close()
        harness.pump()
        harness.publish(publisher, _offer())
        assert inbox == []

    def test_post_close_operations_raise_psexception(self, harness):
        publisher, subscriber = harness.pair()
        publisher.close()
        subscriber.close()
        with pytest.raises(PSException):
            publisher.publish(_offer())
        with pytest.raises(PSException):
            subscriber.subscribe(lambda event: None)
        with pytest.raises(PSException):
            subscriber.subscription(lambda event: None)
        with pytest.raises(PSException):
            subscriber.stream()
        with pytest.raises(PSException):
            publisher.publish_many([_offer()])
        # History queries keep answering after close, uniformly.
        assert publisher.objects_sent() == []
        assert subscriber.objects_received() == []


class TestCompositeSpecifics:
    """The composite's distinguishing behavior, on top of the shared matrix."""

    def test_same_peer_interfaces_deliver_locally_without_settling(self):
        harness = BindingHarness("SHARDED+JXTA")
        try:
            publisher = harness.interface(create=True)
            harness.pump()
            local_subscriber = harness.interface(
                peer=harness.publisher_peer, create=False
            )
            inbox: List[Any] = []
            local_subscriber.subscribe(inbox.append)
            # No pump after publish: same-peer delivery is the synchronous
            # sharded leg, so the event is in the inbox on return.
            publisher.publish(_offer("local"))
            assert [e.shop for e in inbox] == ["local"]
        finally:
            harness.finish()

    def test_remote_and_local_subscribers_each_get_exactly_one_copy(self):
        harness = BindingHarness("SHARDED+JXTA")
        try:
            publisher, remote_subscriber = harness.pair()
            local_subscriber = harness.interface(
                peer=harness.publisher_peer, create=False
            )
            remote_inbox: List[Any] = []
            local_inbox: List[Any] = []
            remote_subscriber.subscribe(remote_inbox.append)
            local_subscriber.subscribe(local_inbox.append)
            harness.pump()
            harness.publish(publisher, _offer("fanout"))
            # The same-bus origin filter keeps the wire echo from doubling
            # the local delivery; the wire carries it to the remote peer.
            assert [e.shop for e in local_inbox] == ["fanout"]
            assert [e.shop for e in remote_inbox] == ["fanout"]
        finally:
            harness.finish()


class TestCompositeThreadAffinity:
    """Cross-thread misuse of the composite must fail atomically: the wire
    leg is single-threaded, so the check runs before any state mutates."""

    def _cross_thread(self, fn):
        import threading

        caught: List[BaseException] = []

        def run() -> None:
            try:
                fn()
            except BaseException as error:  # noqa: BLE001 - collected for assert
                caught.append(error)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        return caught[0] if caught else None

    def test_cross_thread_subscribe_leaves_no_half_registration(self):
        harness = BindingHarness("SHARDED+JXTA")
        try:
            publisher, subscriber = harness.pair()
            error = self._cross_thread(
                lambda: subscriber.subscribe(lambda event: None)
            )
            assert isinstance(error, PSException)
            assert "single-threaded" in str(error)
            # Nothing was registered: a publish delivers to nobody.
            assert len(subscriber.subscriber_manager) == 0
            harness.publish(publisher, _offer())
            assert subscriber.objects_received() == []
        finally:
            harness.finish()

    def test_cross_thread_unsubscribe_keeps_bridge_consistent(self):
        harness = BindingHarness("SHARDED+JXTA")
        try:
            publisher, subscriber = harness.pair()
            inbox: List[Any] = []
            subscriber.subscribe(inbox.append)
            harness.pump()
            error = self._cross_thread(lambda: subscriber.unsubscribe())
            assert isinstance(error, PSException)
            # The subscription (and the wire bridge behind it) is intact:
            # remote delivery still works and arrives exactly once.
            harness.publish(publisher, _offer("still-on"))
            assert [e.shop for e in inbox] == ["still-on"]
            # Owner-thread unsubscribe then works normally.
            assert subscriber.unsubscribe() == 1
            harness.publish(publisher, _offer("gone"))
            assert [e.shop for e in inbox] == ["still-on"]
        finally:
            harness.finish()

    def test_cross_thread_close_fails_before_local_teardown(self):
        harness = BindingHarness("SHARDED+JXTA")
        try:
            publisher, subscriber = harness.pair()
            inbox: List[Any] = []
            subscriber.subscribe(inbox.append)
            harness.pump()
            error = self._cross_thread(subscriber.close)
            assert isinstance(error, PSException)
            # close() reverted to open and nothing was detached: the
            # interface still receives, and an owner-thread close works.
            assert not subscriber.closed
            harness.publish(publisher, _offer("alive"))
            assert [e.shop for e in inbox] == ["alive"]
            subscriber.close()
            assert subscriber.closed
        finally:
            harness.finish()
