"""Smoke tests: every example script runs end-to-end and prints what it promises."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys, argv=None):
    path = EXAMPLES_DIR / name
    assert path.exists(), f"example {name} is missing"
    old_argv = sys.argv
    sys.argv = [str(path)] + list(argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart_example(capsys):
    output = _run_example("quickstart.py", capsys)
    assert "objects sent     : 3" in output
    assert "objects received : 3" in output
    assert "[subscriber] received" in output


def test_ski_rental_example(capsys):
    output = _run_example("ski_rental.py", capsys)
    assert "SR-TPS" in output and "SR-JXTA" in output
    assert "received 4 offers" in output
    assert "same offers in the same order: True" in output


def test_news_ticker_example(capsys):
    output = _run_example("news_ticker.py", capsys)
    assert "archivist (4 stories)" in output
    assert "sports desk (2 stories)" in output
    assert "ski club (1 stories)" in output


def test_stock_monitor_example(capsys):
    output = _run_example("stock_monitor.py", capsys)
    assert "watchlist subscriber" in output
    assert "dashboard console view (5 quotes)" in output
    assert "dashboard alerts (3)" in output
    assert "exception handler: 2" in output


def test_firewalled_peers_example(capsys):
    output = _run_example("firewalled_peers.py", capsys)
    assert "received 2 alerts" in output
    assert "relayed by the rendez-vous/router" in output


def test_loose_coupling_example(capsys):
    output = _run_example("loose_coupling.py", capsys)
    assert "peer without the class sees" in output
    assert "is it a RentalOffer?      : True" in output
    assert "counter-offer 70.00" in output


def test_filtered_stream_example(capsys):
    output = _run_example("filtered_stream.py", capsys)
    assert "registered bindings: ASYNC, JXTA, LOCAL, SHARDED" in output
    assert "tape drained 5 trades (4 dropped)" in output
    assert "block-trade alerts: 2" in output
    assert "alerts after cancel: 2" in output
    assert "engines closed: True" in output


def test_reproduce_figures_single_figure(capsys):
    output = _run_example("reproduce_figures.py", capsys, argv=["--figure", "code-size"])
    assert "programming effort" in output
    assert "SR-TPS application" in output


def test_hot_hierarchy_example(capsys):
    output = _run_example("hot_hierarchy.py", capsys)
    assert "registered bindings: ASYNC, JXTA, LOCAL, SHARDED, SHARDED+JXTA" in output
    assert "4 shards, partition='content'" in output
    assert "delivered 24/24 trades" in output
    assert "SKI trades arrived in publish order: True" in output
    assert "same-peer desk saw it synchronously: True" in output
    assert "remote desk received over the wire: True" in output
    assert "exactly once on both paths: True" in output


def test_lint_demo_example(capsys):
    output = _run_example("lint_demo.py", capsys)
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
        assert rule_id in output
    assert "caught 7 violation(s)" in output
    assert "distinct rules fired: 5 of 5" in output
    assert "findings on the fixed version: 0" in output
    assert "docs/CONCURRENCY.md" in output  # hints point at the invariant docs


def test_elastic_shards_example(capsys):
    output = _run_example("elastic_shards.py", capsys)
    assert "keys traded between surviving shards: 0" in output
    assert "3 live migrations" in output
    assert "delivered exactly once: True" in output
    assert "per-sensor order preserved: True" in output
