"""Smoke tests for the persistent perf harness (repro.bench.perf).

Runs the whole suite at the tiny ``smoke`` profile and validates the
``repro-bench/v1`` JSON schema, so the harness (and the CLI around it) cannot
silently rot between perf-focused PRs.  Also covers the supporting hot-path
structures: the bounded duplicate-filter set and the subscription dispatch
snapshot.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.perf import (
    COMPARISON_NAMES,
    PROFILES,
    SCENARIO_NAMES,
    SCHEMA,
    format_suite,
    run_perf_suite,
    validate_document,
    write_suite,
)
from repro.core.interface import Subscription
from repro.core.jxta_engine import BoundedIdSet, TPSConfig
from repro.core.callbacks import as_callback, as_exception_handler
from repro.core.subscriber import TPSSubscriberManager


@pytest.fixture(scope="module")
def smoke_document():
    return run_perf_suite("smoke")


class TestPerfSuite:
    def test_document_passes_schema_validation(self, smoke_document):
        assert validate_document(smoke_document) == []

    def test_schema_and_profile_recorded(self, smoke_document):
        assert smoke_document["schema"] == SCHEMA
        assert smoke_document["profile"] == "smoke"
        assert smoke_document["unix_time"] > 0

    def test_every_comparison_present_with_positive_timings(self, smoke_document):
        by_name = {entry["name"]: entry for entry in smoke_document["comparisons"]}
        assert set(by_name) == set(COMPARISON_NAMES)
        for entry in by_name.values():
            assert entry["baseline_per_op_us"] > 0
            assert entry["fast_per_op_us"] > 0
            assert entry["speedup"] > 0

    def test_every_scenario_present(self, smoke_document):
        names = [entry["name"] for entry in smoke_document["scenarios"]]
        assert names == list(SCENARIO_NAMES)

    def test_document_is_json_serialisable(self, smoke_document):
        round_tripped = json.loads(json.dumps(smoke_document))
        assert validate_document(round_tripped) == []

    def test_write_suite_round_trips(self, smoke_document, tmp_path):
        path = tmp_path / "BENCH_smoke.json"
        write_suite(str(path), smoke_document)
        with open(path, encoding="utf-8") as handle:
            assert validate_document(json.load(handle)) == []

    def test_format_suite_mentions_every_comparison(self, smoke_document):
        text = format_suite(smoke_document)
        for name in COMPARISON_NAMES:
            assert name in text

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            run_perf_suite("bogus")

    def test_validate_document_reports_problems(self):
        assert validate_document({}) != []
        assert any("schema" in problem for problem in validate_document({}))

    def test_profiles_are_complete(self):
        keys = {
            "repeats", "codec_iterations", "xml_iterations",
            "fanout_iterations", "churn_iterations", "churn_resident",
            "filtered_iterations", "filtered_subscribers",
            "mt_publishers", "mt_events", "mt_subscribers", "mt_io_s",
            "async_publishers", "async_events", "async_subscribers",
            "async_io_s",
            "intra_shards", "intra_keys", "intra_events",
            "intra_subscribers", "intra_io_s",
            "figure19_events", "figure20_duration", "figure20_events",
            "lossy_events",
            "reshard_shards", "reshard_keys", "reshard_events",
        }
        for name, profile in PROFILES.items():
            assert keys <= set(profile), f"profile {name} missing keys"

    def test_schema_covers_the_parse_sections(self):
        """The PR-2 sections are part of the repro-bench/v1 contract: a
        document missing them must fail validation."""
        assert "xml_parse" in COMPARISON_NAMES
        assert "xml_roundtrip" in COMPARISON_NAMES
        document = {
            "schema": SCHEMA, "version": "x", "unix_time": 1.0,
            "profile": "full", "comparisons": [], "scenarios": [],
        }
        problems = validate_document(document)
        assert any("xml_parse" in problem for problem in problems)
        assert any("xml_roundtrip" in problem for problem in problems)

    def test_schema_covers_the_subscription_sections(self):
        """The PR-3 sections (v2 subscription API) are part of the contract:
        a document missing them must fail validation."""
        assert "subscribe_churn" in COMPARISON_NAMES
        assert "filtered_fanout" in COMPARISON_NAMES
        document = {
            "schema": SCHEMA, "version": "x", "unix_time": 1.0,
            "profile": "full", "comparisons": [], "scenarios": [],
        }
        problems = validate_document(document)
        assert any("subscribe_churn" in problem for problem in problems)
        assert any("filtered_fanout" in problem for problem in problems)

    def test_schema_covers_the_concurrency_section(self):
        """The PR-4 section (concurrent sharded fan-out) is part of the
        contract: a document missing it must fail validation."""
        assert "mt_fanout" in COMPARISON_NAMES
        document = {
            "schema": SCHEMA, "version": "x", "unix_time": 1.0,
            "profile": "full", "comparisons": [], "scenarios": [],
        }
        problems = validate_document(document)
        assert any("mt_fanout" in problem for problem in problems)

    def test_schema_covers_the_intra_shard_section(self):
        """The PR-5 section (content-keyed intra-hierarchy sharding) is part
        of the contract: a document missing it must fail validation."""
        assert "intra_shard_fanout" in COMPARISON_NAMES
        document = {
            "schema": SCHEMA, "version": "x", "unix_time": 1.0,
            "profile": "full", "comparisons": [], "scenarios": [],
        }
        problems = validate_document(document)
        assert any("intra_shard_fanout" in problem for problem in problems)

    def test_schema_covers_the_async_section(self):
        """The PR-9 section (coroutine fan-out over the ASYNC binding) is
        part of the contract: a document missing it must fail validation."""
        assert "async_fanout" in COMPARISON_NAMES
        document = {
            "schema": SCHEMA, "version": "x", "unix_time": 1.0,
            "profile": "full", "comparisons": [], "scenarios": [],
        }
        problems = validate_document(document)
        assert any("async_fanout" in problem for problem in problems)

    def test_intra_shard_keys_cover_every_shard(self):
        """The benchmark's key corpus must actually reach all content
        shards for the committed profiles, or the recorded speedup would
        silently measure partial parallelism."""
        from repro.bench.perf import PROFILES, _HotEvent
        from repro.core.sharded_engine import ShardedLocalBus
        from repro.core.type_registry import type_name

        root = type_name(_HotEvent)
        for profile in PROFILES.values():
            shards = profile["intra_shards"]
            # Mirrors the bench's placement="modn" pin (BENCH continuity).
            bus = ShardedLocalBus(
                shards=shards, partition="content", content_key="key", placement="modn"
            )
            hit = {
                bus.partition_index(root, _HotEvent(key=f"key-{index}"))
                for index in range(profile["intra_keys"])
            }
            assert hit == set(range(shards))

    def test_mt_fanout_event_types_cover_distinct_shards(self):
        """The greedy hierarchy selection must place each benchmark
        publisher on its own shard for the committed profiles."""
        from repro.bench.perf import PROFILES, _mt_types
        from repro.core.sharded_engine import ShardedLocalBus
        from repro.core.type_registry import type_name

        for profile in PROFILES.values():
            publishers = profile["mt_publishers"]
            # Mirrors the bench's placement="modn" pin (BENCH continuity).
            probe = ShardedLocalBus(shards=publishers, placement="modn")
            types = _mt_types(publishers)
            assert len(types) == publishers
            shards = {probe.shard_index(type_name(cls)) for cls in types}
            assert len(shards) == publishers

    def test_committed_trajectory_files_validate(self):
        """Every committed BENCH_*.json must validate: historical points
        against the baseline comparison/scenario sets they were generated
        under, the newest point against the full current schema."""
        import glob
        import os

        from repro.bench.perf import BASELINE_COMPARISON_NAMES, BASELINE_SCENARIO_NAMES

        root = os.path.join(os.path.dirname(__file__), os.pardir)
        paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
        assert paths, "no committed BENCH_*.json trajectory files found"
        newest = max(paths, key=lambda p: int(p.rsplit("_", 1)[1].split(".")[0]))
        for path in paths:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
            comparisons = COMPARISON_NAMES if path == newest else BASELINE_COMPARISON_NAMES
            scenarios = SCENARIO_NAMES if path == newest else BASELINE_SCENARIO_NAMES
            assert validate_document(
                document,
                required_comparisons=comparisons,
                required_scenarios=scenarios,
            ) == [], path
        with open(newest, encoding="utf-8") as handle:
            document = json.load(handle)
        by_name = {entry["name"]: entry for entry in document["comparisons"]}
        # Trajectory pins: the scanning parser stays >= 2x the legacy parser
        # (PR 2), filtered fan-out with v2 predicate push-down beats
        # post-dispatch filtering (PR 3), and per-shard concurrency beats the
        # locked single bus by >= 1.5x at 4 publisher threads (PR 4).
        assert by_name["xml_parse"]["speedup"] >= 2.0
        assert by_name["filtered_fanout"]["speedup"] > 1.0
        assert by_name["subscribe_churn"]["speedup"] > 1.0
        assert by_name["mt_fanout"]["speedup"] >= 1.5
        # PR 5: content-keyed intra-hierarchy sharding beats the 1-shard
        # baseline on the single hot hierarchy.
        assert by_name["intra_shard_fanout"]["speedup"] > 1.0
        # PR 6: reliable delivery under loss stays complete -- every rate in
        # the lossy_publish sweep delivers all published events with zero
        # terminal failures, and the lossy rates actually exercise retries.
        lossy = next(
            entry for entry in document["scenarios"] if entry["name"] == "lossy_publish"
        )
        for rate in lossy["rates"]:
            assert rate["delivered"] == rate["published"], rate
            assert rate["delivery_failures"] == 0, rate
        assert sum(rate["retries"] for rate in lossy["rates"][1:]) > 0

    def test_schema_covers_the_lossy_scenario(self):
        """The PR-6 scenario (reliable publish over lossy links) is part of
        the contract: a document missing it must fail validation."""
        assert "lossy_publish" in SCENARIO_NAMES
        document = {
            "schema": SCHEMA, "version": "x", "unix_time": 1.0,
            "profile": "full", "comparisons": [], "scenarios": [],
        }
        problems = validate_document(document)
        assert any("lossy_publish" in problem for problem in problems)


class TestPerfCli:
    def test_bench_subcommand_writes_json(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "BENCH_cli.json"
        assert main(["bench", "--profile", "smoke", "--json", str(path)]) == 0
        output = capsys.readouterr().out
        assert "perf suite (smoke)" in output
        with open(path, encoding="utf-8") as handle:
            assert validate_document(json.load(handle)) == []


class TestBoundedIdSet:
    def test_acts_as_a_set(self):
        seen = BoundedIdSet(capacity=10)
        assert "a" not in seen
        seen.add("a")
        assert "a" in seen and len(seen) == 1
        seen.add("a")
        assert len(seen) == 1

    def test_evicts_oldest_beyond_capacity(self):
        seen = BoundedIdSet(capacity=3)
        for item in ("a", "b", "c", "d"):
            seen.add(item)
        assert len(seen) == 3
        assert "a" not in seen
        assert all(item in seen for item in ("b", "c", "d"))

    def test_refreshing_an_id_protects_it_from_eviction(self):
        seen = BoundedIdSet(capacity=3)
        for item in ("a", "b", "c"):
            seen.add(item)
        seen.add("a")  # most recently seen again
        seen.add("d")  # evicts "b", not "a"
        assert "a" in seen and "b" not in seen

    def test_seen_reports_duplicates_and_refreshes_recency(self):
        """The engine's duplicate check is one seen() call: it must both
        report the hit and protect the id from eviction (LRU, not FIFO)."""
        seen = BoundedIdSet(capacity=3)
        assert seen.seen("a") is False
        assert seen.seen("b") is False
        assert seen.seen("c") is False
        assert seen.seen("a") is True  # duplicate hit refreshes "a"
        assert seen.seen("d") is False  # evicts "b", the oldest
        assert seen.seen("a") is True
        assert seen.seen("b") is False  # "b" was evicted, not "a"

    def test_nonpositive_capacity_means_unbounded(self):
        seen = BoundedIdSet(capacity=0)
        for index in range(1000):
            seen.add(f"id-{index}")
        assert len(seen) == 1000

    def test_config_cap_is_wired_into_the_engine_default(self):
        assert TPSConfig().duplicate_cache_size > 0


class TestDispatchSnapshot:
    def _subscription(self, sink):
        return Subscription(
            callback=as_callback(sink.append),
            exception_handler=as_exception_handler(lambda error: None),
        )

    def test_dispatch_uses_snapshot_rebuilt_on_change(self):
        manager = TPSSubscriberManager()
        received: list = []
        manager.add(self._subscription(received))
        assert manager.dispatch("e1") == 1
        snapshot = manager._handlers
        assert manager.dispatch("e2") == 1
        assert manager._handlers is snapshot  # unchanged between events
        manager.add(self._subscription(received))
        assert manager._handlers is not snapshot  # rebuilt on mutation
        assert manager.dispatch("e3") == 2
        assert received == ["e1", "e2", "e3", "e3"]

    def test_remove_updates_snapshot(self):
        manager = TPSSubscriberManager()
        received: list = []
        subscription = self._subscription(received)
        manager.add(subscription)
        assert manager.remove(subscription.callback) == 1
        assert manager.dispatch("event") == 0
        assert manager.empty and received == []
