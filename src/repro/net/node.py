"""Simulated network nodes and their network interfaces.

A :class:`Node` is the substrate-level identity of a machine: it has a network
address, one or more :class:`NetworkInterface` objects (TCP, HTTP,
multicast...), an optional firewall, and a receive handler that the JXTA
endpoint service registers.  Nodes never touch the scheduler directly; they
hand packets to the :class:`~repro.net.network.Network`, which charges
latency, bandwidth and loss and schedules delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.net.firewall import Firewall
from repro.net.metrics import MetricsRegistry
from repro.net.packet import Packet
from repro.net.transport import Transport, TransportKind, transport_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network

PacketHandler = Callable[[Packet], None]


@dataclass
class NetworkInterface:
    """One attachment point of a node to the network.

    A node with both a TCP and an HTTP interface can talk directly to peers
    sharing either; a node with only HTTP behind a firewall must be reached
    through a relay.
    """

    transport: Transport
    enabled: bool = True

    @property
    def kind(self) -> TransportKind:
        """The transport kind this interface speaks."""
        return self.transport.kind


class Node:
    """A machine attached to the simulated network.

    Parameters
    ----------
    address:
        Unique string address (hostname) of the node.
    transports:
        Transport kinds the node exposes.  Defaults to TCP + HTTP + multicast,
        matching a LAN workstation of the paper's testbed.
    firewall:
        Optional firewall filtering this node's traffic.
    """

    def __init__(
        self,
        address: str,
        *,
        transports: Optional[List[TransportKind | str]] = None,
        firewall: Optional[Firewall] = None,
    ) -> None:
        if not address:
            raise ValueError("a node needs a non-empty address")
        self.address = address
        kinds = transports if transports is not None else [
            TransportKind.TCP,
            TransportKind.HTTP,
            TransportKind.MULTICAST,
        ]
        self.interfaces: Dict[TransportKind, NetworkInterface] = {}
        for kind in kinds:
            transport = transport_for(kind)
            self.interfaces[transport.kind] = NetworkInterface(transport=transport)
        self.firewall = firewall or Firewall.open()
        self.metrics = MetricsRegistry(name=f"node:{address}")
        self.network: Optional["Network"] = None
        # Immutable snapshot (RL003): deliver() iterates this without any
        # synchronisation, so registration rebinds a fresh tuple instead of
        # mutating in place.
        self._handlers: Tuple[PacketHandler, ...] = ()
        self.online = True

    # ----------------------------------------------------------- interfaces

    def supports(self, kind: TransportKind | str) -> bool:
        """Whether the node has an enabled interface of the given kind."""
        if isinstance(kind, str):
            kind = TransportKind(kind)
        interface = self.interfaces.get(kind)
        return interface is not None and interface.enabled

    def enable_interface(self, kind: TransportKind | str, enabled: bool = True) -> None:
        """Enable or disable one of the node's interfaces."""
        if isinstance(kind, str):
            kind = TransportKind(kind)
        if kind not in self.interfaces:
            self.interfaces[kind] = NetworkInterface(transport=transport_for(kind), enabled=enabled)
        else:
            self.interfaces[kind].enabled = enabled

    def shared_transports(self, other: "Node") -> List[TransportKind]:
        """Transport kinds both nodes expose, preferring TCP over HTTP over multicast."""
        order = [TransportKind.TCP, TransportKind.HTTP, TransportKind.MULTICAST]
        return [k for k in order if self.supports(k) and other.supports(k)]

    # ------------------------------------------------------------- lifecycle

    def go_offline(self) -> None:
        """Simulate the machine crashing or being unplugged."""
        self.online = False

    def go_online(self) -> None:
        """Bring the machine back; its address (UUID at the JXTA layer) is unchanged."""
        self.online = True

    # ------------------------------------------------------------- handlers

    def add_handler(self, handler: PacketHandler) -> None:
        """Register a callback invoked for every delivered packet."""
        self._handlers = self._handlers + (handler,)

    def remove_handler(self, handler: PacketHandler) -> None:
        """Unregister a previously added callback (missing handlers are ignored)."""
        self._handlers = tuple(h for h in self._handlers if h != handler)

    # ----------------------------------------------------------------- I/O

    def send(self, packet: Packet) -> None:
        """Hand a packet to the network for delivery.

        Raises :class:`~repro.net.network.NetworkError` if the node is not
        attached to a network.
        """
        if self.network is None:
            from repro.net.network import NetworkError

            raise NetworkError(f"node {self.address!r} is not attached to a network")
        self.metrics.counter("packets_sent").increment()
        self.metrics.counter("bytes_sent").increment(packet.size)
        self.network.transmit(self, packet)

    def deliver(self, packet: Packet) -> None:
        """Called by the network when a packet arrives at this node."""
        if not self.online:
            return
        self.metrics.counter("packets_received").increment()
        self.metrics.counter("bytes_received").increment(packet.size)
        for handler in self._handlers:
            handler(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = ",".join(sorted(k.value for k, i in self.interfaces.items() if i.enabled))
        return f"Node({self.address!r}, transports=[{kinds}])"


__all__ = ["NetworkInterface", "Node", "PacketHandler"]
