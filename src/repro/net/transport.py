"""Transport models: TCP, HTTP relays and IP multicast.

JXTA peers may carry several network interfaces (the paper's footnote lists
TCP, IP-multicast, HTTP, Bluetooth, BEEP...).  Two peers can talk directly
only if they share a transport that is not blocked by a firewall; otherwise
the Endpoint Routing Protocol relays the message through a rendez-vous/router
peer, typically over HTTP (Figure 6 of the paper).

Each transport model contributes a fixed per-packet overhead (connection and
framing costs) and a reliability flag.  Multicast is unreliable and reaches
every node attached to the same network segment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TransportKind(str, enum.Enum):
    """The transports the simulated peers may expose."""

    TCP = "tcp"
    HTTP = "http"
    MULTICAST = "multicast"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Transport:
    """Static properties of one transport kind.

    Attributes
    ----------
    kind:
        Which transport this describes.
    per_packet_overhead:
        Extra one-way delay (seconds) added to every packet sent over this
        transport, modelling connection setup amortisation and framing.
    reliable:
        Whether the transport retransmits lost packets.  The simulated network
        only applies random loss to unreliable transports.
    point_to_point:
        Whether the transport addresses a single destination (TCP/HTTP) or the
        whole segment (multicast).
    """

    kind: TransportKind
    per_packet_overhead: float
    reliable: bool
    point_to_point: bool

    @property
    def name(self) -> str:
        """The transport's wire name (``"tcp"``, ``"http"``, ``"multicast"``)."""
        return self.kind.value


#: Plain TCP between two peers on the same LAN.
TcpTransport = Transport(
    kind=TransportKind.TCP,
    per_packet_overhead=0.0004,
    reliable=True,
    point_to_point=True,
)

#: HTTP used for firewall traversal and relaying; noticeably more per-packet
#: overhead than raw TCP (request/response framing, relay hop).
HttpTransport = Transport(
    kind=TransportKind.HTTP,
    per_packet_overhead=0.0035,
    reliable=True,
    point_to_point=True,
)

#: IP multicast used by discovery on the local segment; unreliable.
MulticastTransport = Transport(
    kind=TransportKind.MULTICAST,
    per_packet_overhead=0.0002,
    reliable=False,
    point_to_point=False,
)

_BY_KIND = {
    TransportKind.TCP: TcpTransport,
    TransportKind.HTTP: HttpTransport,
    TransportKind.MULTICAST: MulticastTransport,
}


def transport_for(kind: TransportKind | str) -> Transport:
    """Look up the :class:`Transport` description for a kind or its wire name."""
    if isinstance(kind, str):
        kind = TransportKind(kind)
    return _BY_KIND[kind]


__all__ = [
    "HttpTransport",
    "MulticastTransport",
    "TcpTransport",
    "Transport",
    "TransportKind",
    "transport_for",
]
