"""The ``"SHARDED"`` binding: an N-shard in-process bus.

The ROADMAP's sharding direction, taken through the public binding registry
(no special case anywhere in :mod:`repro.core.engine`): a
:class:`ShardedLocalBus` partitions engines across N independent
:class:`~repro.core.local_engine.LocalBus` shards by a stable hash of the
engine's *hierarchy root* name.  TPS routing is entirely intra-hierarchy --
an event published on one hierarchy can only ever reach engines of the same
hierarchy (paper, Section 4.2) -- so every engine of a hierarchy lands on
the same shard and delivery semantics are identical to a single bus, while
unrelated hierarchies stop sharing routing tables (and, once a concurrent
bus lands, will stop sharing a lock: each shard keeps the immutable
route-row design that makes atomic swaps possible).

:class:`~repro.core.local_engine.LocalTPSEngine` runs over the sharded bus
unchanged -- the bus is a drop-in facade with the same
``attach``/``detach``/``publish``/``engines_for`` surface -- which is the
point of the exercise: a third binding built purely from public pieces.

Locking model: the shard tuple is immutable, so the facade itself needs no
lock -- every call delegates to the owning shard, and each shard is a
:class:`~repro.core.local_engine.LocalBus` that is thread-safe on its own
(per-shard lifecycle lock, lock-free snapshot publish).  Two publishers on
*different* hierarchies therefore share no lock at all; the parallel
cross-shard path (:meth:`ShardedLocalBus.publish_all`, backing
``tps.publish_many``) leans on exactly that independence, fanning per-shard
batches out to a lazily created executor while keeping each hierarchy's
events in publish order (one hierarchy always lands on one shard, and a
shard's batch runs serially).
"""

from __future__ import annotations

import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.core.bindings import BindingRequest, register_binding
from repro.core.exceptions import PSException
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.type_registry import type_name

#: Shard count of the process-wide default sharded bus.
DEFAULT_SHARD_COUNT = 8


class ShardedLocalBus:
    """N independent :class:`LocalBus` shards, partitioned by hierarchy root.

    Presents the exact ``LocalBus`` surface
    (``attach``/``detach``/``publish``/``engines_for``), delegating each call
    to the shard owning the engine's hierarchy.  The partition key is the
    advertised (root type) name hashed with CRC-32, so placement is stable
    across processes and runs -- Python's randomised ``hash()`` would not be.
    """

    def __init__(self, shards: int = DEFAULT_SHARD_COUNT) -> None:
        if shards < 1:
            raise PSException(f"a sharded bus needs at least 1 shard, got {shards}")
        self.shards: Tuple[LocalBus, ...] = tuple(LocalBus() for _ in range(shards))
        #: Executor of the cross-shard batch path, created on first use (a
        #: bus that never sees :meth:`publish_all` never starts a thread)
        #: and guarded by ``_executor_lock`` so two racing batches cannot
        #: each build one.
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        #: Thread-local re-entrancy marker: set while a thread runs a shard
        #: group, so a nested ``publish_all`` (e.g. from a subscriber
        #: callback) runs inline instead of submitting to -- and then
        #: waiting on -- the very pool it is occupying, which would
        #: deadlock once every worker is a waiter.
        self._local = threading.local()

    def shard_index(self, root_name: str) -> int:
        """The shard owning the hierarchy advertised as ``root_name``."""
        return zlib.crc32(root_name.encode("utf-8")) % len(self.shards)

    def shard_for(self, root_name: str) -> LocalBus:
        """The :class:`LocalBus` shard owning ``root_name``'s hierarchy."""
        return self.shards[self.shard_index(root_name)]

    # ------------------------------------------------- LocalBus facade

    def attach(self, engine: "LocalTPSEngine") -> None:
        """Attach an engine to its hierarchy's shard."""
        self.shard_for(engine.registry.advertised_name).attach(engine)

    def detach(self, engine: "LocalTPSEngine") -> None:
        """Detach an engine from its hierarchy's shard."""
        self.shard_for(engine.registry.advertised_name).detach(engine)

    def engines_for(self, root: Type[Any]) -> Tuple["LocalTPSEngine", ...]:
        """Every engine attached to the hierarchy rooted at ``root``."""
        return self.shard_for(type_name(root)).engines_for(root)

    def publish(self, publisher: "LocalTPSEngine", event: Any) -> int:
        """Deliver through the publisher's shard (same semantics as LocalBus)."""
        return self.shard_for(publisher.registry.advertised_name).publish(
            publisher, event
        )

    # ------------------------------------------------- cross-shard batches

    def publish_all(
        self, jobs: Iterable[Tuple["LocalTPSEngine", Any]]
    ) -> List[int]:
        """Publish a batch of ``(publisher, event)`` jobs, shards in parallel.

        Jobs are grouped by the shard owning each publisher's hierarchy;
        every group runs *serially in job order* (so per-hierarchy ordering
        matches a plain publish loop), while distinct groups run concurrently
        -- the calling thread takes one group itself and the rest go to the
        bus executor: the payoff of sharding by hierarchy is that two
        hierarchies' subscribers block, compute and record independently.
        Returns the per-job delivery counts in job order.  A single-shard
        batch runs inline on the calling thread: no executor, no handoff,
        identical cost to looping ``publish``.  A *nested* ``publish_all``
        (reached from a subscriber callback already running on a pool
        worker) also runs fully inline -- workers never wait on the pool
        they occupy, so re-entrant batches cannot deadlock it.
        """
        ordered = list(jobs)
        results: List[int] = [0] * len(ordered)
        groups: Dict[int, List[int]] = {}
        for position, (publisher, _) in enumerate(ordered):
            index = self.shard_index(publisher.registry.advertised_name)
            groups.setdefault(index, []).append(position)

        def run_group(index: int, positions: Sequence[int]) -> None:
            previous = getattr(self._local, "in_worker", False)
            self._local.in_worker = True
            try:
                shard = self.shards[index]
                for position in positions:
                    publisher, event = ordered[position]
                    results[position] = shard.publish(publisher, event)
            finally:
                self._local.in_worker = previous

        if len(groups) <= 1 or getattr(self._local, "in_worker", False):
            for index, positions in groups.items():
                run_group(index, positions)
            return results
        # Executor creation and the submits share one critical section so a
        # concurrent shutdown() cannot retire the executor between them (a
        # shutdown arriving after the submits merely waits for the batch).
        grouped = list(groups.items())
        with self._executor_lock:
            executor = self._executor
            if executor is None:
                executor = self._executor = ThreadPoolExecutor(
                    max_workers=len(self.shards),
                    thread_name_prefix="repro-shard",
                )
            futures = [
                executor.submit(run_group, index, positions)
                for index, positions in grouped[1:]
            ]
        # The caller works one group instead of idling in result(); it is
        # also the only thread that ever waits on the pool.
        caller_error: Optional[BaseException] = None
        try:
            run_group(*grouped[0])
        except BaseException as error:  # noqa: BLE001 - re-raised below
            caller_error = error
        # Await every group before raising: a failing shard must not leave
        # the other shards delivering in the background (or their exceptions
        # unretrieved) while the caller already unwound.
        errors: List[BaseException] = []
        for future in futures:
            try:
                future.result()
            except BaseException as error:  # noqa: BLE001 - re-raised below
                errors.append(error)
        if caller_error is not None:
            raise caller_error
        if errors:
            raise errors[0]
        return results

    def shutdown(self) -> None:
        """Stop the batch executor, if one was ever started (idempotent).

        Only the executor is affected: the shards, their engines and the
        plain ``publish`` path keep working, and a later ``publish_all``
        lazily builds a fresh executor.  A batch already submitted when the
        shutdown arrives runs to completion (``wait=True``); the executor
        swap shares the lock with ``publish_all``'s submits, so a batch can
        never be caught between obtaining the executor and submitting to it.
        """
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        attached = sum(len(engines) for shard in self.shards for engines in shard._engines.values())
        return f"ShardedLocalBus(shards={len(self.shards)}, engines={attached})"


#: Default process-wide sharded bus, used when the engine supplies no bus.
DEFAULT_SHARDED_BUS = ShardedLocalBus()


def _sharded_binding(request: BindingRequest) -> LocalTPSEngine:
    """The ``"SHARDED"`` binding factory.

    Uses the engine's ``local_bus`` when it already is a
    :class:`ShardedLocalBus`, falls back to the process-wide default when no
    bus was given, and rejects a plain ``LocalBus`` (silently unsharding
    would betray the binding's name).
    """
    bus = request.local_bus
    if bus is None:
        bus = DEFAULT_SHARDED_BUS
    elif not isinstance(bus, ShardedLocalBus):
        raise PSException(
            "the SHARDED binding needs a ShardedLocalBus (or no bus at all); "
            f"got {type(bus).__name__}: construct the engine with "
            "TPSEngine(EventType, local_bus=ShardedLocalBus(shards=N))"
        )
    return LocalTPSEngine(
        request.event_type,
        bus=bus,
        criteria=request.criteria,
        codec=request.codec,
    )


register_binding(
    "SHARDED", _sharded_binding, capabilities=("in-process", "sharded"), replace=True
)


__all__ = [
    "DEFAULT_SHARDED_BUS",
    "DEFAULT_SHARD_COUNT",
    "ShardedLocalBus",
]
