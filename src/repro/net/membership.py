"""Peer membership: a heartbeat failure detector over the simulated network.

The composite ``SHARDED+JXTA`` binding used to assume a static peer mesh:
once a pipe resolved to a peer, the wire layer would retry towards it until
its capped backoff gave up -- even when the peer was long gone.  This module
gives every peer an explicit, testable view of *who is still there*, in the
style of classic gossip/heartbeat failure detectors:

* every :class:`MembershipMonitor` sends a small heartbeat message to each
  watched peer on a fixed period, jittered through the peer's seeded
  :class:`~repro.net.cost.NoiseSource` (runs stay bit-for-bit reproducible,
  but two monitors never phase-lock);
* receiving a heartbeat marks the sender ``ALIVE`` (auto-registering unknown
  senders -- monitoring is mutual by construction) and refreshes its network
  address via the endpoint address book;
* a peer not heard from for ``suspect_timeout`` seconds becomes ``SUSPECT``
  (it may just be behind a lossy link -- the PR 6 ``FaultPlan`` drops
  heartbeats like any other packet, which is exactly how the chaos tests
  drive these transitions);
* a peer still silent ``confirm_timeout`` seconds later is **confirmed**
  ``DEAD``.  Listeners get every transition (``"join"``, ``"suspect"``,
  ``"confirm"``, ``"recover"``), which is the hook
  :mod:`repro.core.composite_engine` uses to close a departed peer's wire
  leg and report queued deliveries through ``delivery_failure_handler``
  instead of retrying forever;
* a heartbeat from a ``SUSPECT``/``DEAD`` peer flips it back to ``ALIVE``
  (``"recover"``) -- suspicion is a verdict about *communication*, and the
  detector must heal when the network does.

All timing is virtual (:class:`~repro.net.simclock.Simulator`); all
randomness is seeded.  Metrics land on the owning peer's registry:
``membership_heartbeats_sent/received``, ``membership_joined/suspected/
confirmed_dead/recovered`` counters and the ``membership_alive`` gauge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.jxta.ids import PeerID
from repro.jxta.message import Message

#: Member states, in escalation order.
ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"

#: Endpoint service/param heartbeats travel on.
MEMBERSHIP_SERVICE = "repro.membership"
HEARTBEAT_PARAM = "heartbeat"

#: Heartbeat message elements: the sender's peer URN and network address.
MEMBER_PEER_ELEMENT = "MemberPeer"
MEMBER_ADDR_ELEMENT = "MemberAddr"

#: Listener signature: ``listener(event, peer_urn)`` with event one of
#: ``"join"`` / ``"suspect"`` / ``"confirm"`` / ``"recover"``.
MembershipListener = Callable[[str, str], None]


@dataclass
class MembershipConfig:
    """Failure-detector timing (all in virtual seconds, all seeded).

    ``suspect_timeout`` and ``confirm_timeout`` are measured from the last
    heartbeat heard, respectively from the moment of suspicion; both should
    comfortably exceed ``heartbeat_interval`` or a single dropped packet
    convicts an honest peer.
    """

    heartbeat_interval: float = 0.5
    suspect_timeout: float = 2.0
    confirm_timeout: float = 4.0
    #: Relative uniform jitter applied to each heartbeat period through the
    #: peer's seeded noise source (0 disables).
    jitter: float = 0.1

    def validate(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {self.heartbeat_interval!r}"
            )
        if self.suspect_timeout <= self.heartbeat_interval:
            raise ValueError(
                "suspect_timeout must exceed heartbeat_interval "
                f"({self.suspect_timeout!r} <= {self.heartbeat_interval!r})"
            )
        if self.confirm_timeout <= 0:
            raise ValueError(
                f"confirm_timeout must be positive, got {self.confirm_timeout!r}"
            )


@dataclass
class MemberState:
    """One watched peer as this monitor currently sees it."""

    urn: str
    state: str
    last_heard: float
    suspected_at: Optional[float] = None
    #: Bookkeeping for tests/debugging: heartbeats received from this peer.
    heartbeats: int = field(default=0)


class MembershipMonitor:
    """One peer's failure detector: heartbeats out, state machine in.

    Single-threaded by construction -- everything (periodic ticks, incoming
    heartbeats, listener callbacks) runs on the simulator's event loop, the
    same discipline every other JXTA service in this repo follows, so there
    is no locking and no callback reentrancy to reason about.
    """

    def __init__(
        self,
        peer: Any,
        config: Optional[MembershipConfig] = None,
        *,
        clock: Optional[Callable[[], float]] = None,
        noise: Optional[Any] = None,
    ) -> None:
        """``clock`` and ``noise`` follow the repo's uniform injection
        pattern (RL004): they default to the peer's virtual clock and seeded
        :class:`~repro.net.cost.NoiseSource`, and tests can substitute their
        own without monkey-patching the peer."""
        self.peer = peer
        self.config = config or MembershipConfig()
        self.config.validate()
        self._clock = clock if clock is not None else (lambda: peer.now)
        self._noise = noise if noise is not None else peer.noise
        self._members: Dict[str, MemberState] = {}
        self._listeners: List[MembershipListener] = []
        self._stopped = False
        peer.endpoint.register_listener(
            MEMBERSHIP_SERVICE, HEARTBEAT_PARAM, self._on_heartbeat
        )
        interval = self.config.heartbeat_interval
        jitter = None
        if self.config.jitter > 0:
            spread = self.config.jitter * interval
            jitter = lambda: self._noise.uniform(-spread, spread)  # noqa: E731
        self._task = peer.simulator.schedule_periodic(
            interval,
            self._tick,
            label=f"membership:{peer.name}",
            jitter=jitter,
        )

    # ------------------------------------------------------------- watching

    def watch(self, target: Any, address: Optional[str] = None) -> None:
        """Start monitoring a peer (a :class:`Peer`, :class:`PeerID` or URN).

        Idempotent; the monitor's own peer is never watched.  New members
        start ``ALIVE`` (they get a full ``suspect_timeout`` of grace) and
        emit ``"join"``.
        """
        urn = self._to_urn(target)
        if urn == self.peer.peer_id.to_urn() or urn in self._members:
            return
        if address is None and hasattr(target, "node"):
            address = target.node.address
        if address is not None:
            self.peer.endpoint.learn_address(urn, address)
        self._members[urn] = MemberState(urn=urn, state=ALIVE, last_heard=self._clock())
        self.peer.metrics.counter("membership_joined").increment()
        self._update_alive_gauge()
        self._emit("join", urn)

    def forget(self, target: Any) -> None:
        """Stop monitoring a peer entirely (no event is emitted)."""
        self._members.pop(self._to_urn(target), None)
        self._update_alive_gauge()

    # ------------------------------------------------------------ inspection

    def members(self) -> Dict[str, str]:
        """Current view: peer URN -> state."""
        return {urn: member.state for urn, member in self._members.items()}

    def state_of(self, target: Any) -> Optional[str]:
        """The state of one peer, or None when unwatched."""
        member = self._members.get(self._to_urn(target))
        return member.state if member else None

    def alive(self) -> List[str]:
        """URNs currently considered ``ALIVE``."""
        return [urn for urn, m in self._members.items() if m.state == ALIVE]

    def suspects(self) -> List[str]:
        """URNs currently ``SUSPECT`` (not yet confirmed dead)."""
        return [urn for urn, m in self._members.items() if m.state == SUSPECT]

    # ------------------------------------------------------------- listeners

    def add_listener(self, listener: MembershipListener) -> None:
        """Subscribe to membership transitions."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: MembershipListener) -> None:
        """Unsubscribe (missing listeners are ignored)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _emit(self, event: str, urn: str) -> None:
        for listener in tuple(self._listeners):
            try:
                listener(event, urn)
            except Exception:
                # A misbehaving listener must not stop the detector (or the
                # remaining listeners) -- same containment rule as the
                # endpoint dispatch loop.
                self.peer.metrics.counter("membership_listener_errors").increment()

    # ------------------------------------------------------------ the clock

    def _tick(self) -> None:
        if self._stopped:
            return
        now = self._clock()
        for member in list(self._members.values()):
            # DEAD members keep receiving heartbeats: if both sides of a
            # healed partition had confirmed each other dead and both went
            # silent, neither could ever observe the recovery.  The wire
            # layer stops *retrying deliveries* to a dead peer; the detector
            # keeps *probing* it -- that asymmetry is the rejoin path.
            self._send_heartbeat(member.urn)
            if member.state == ALIVE:
                if now - member.last_heard >= self.config.suspect_timeout:
                    member.state = SUSPECT
                    member.suspected_at = now
                    self.peer.metrics.counter("membership_suspected").increment()
                    self._update_alive_gauge()
                    self._emit("suspect", member.urn)
            elif member.state == SUSPECT:
                assert member.suspected_at is not None
                if now - member.suspected_at >= self.config.confirm_timeout:
                    member.state = DEAD
                    self.peer.metrics.counter("membership_confirmed_dead").increment()
                    self._emit("confirm", member.urn)

    def _send_heartbeat(self, urn: str) -> None:
        message = Message()
        message.add(MEMBER_PEER_ELEMENT, self.peer.peer_id.to_urn())
        message.add(MEMBER_ADDR_ELEMENT, self.peer.node.address)
        self.peer.metrics.counter("membership_heartbeats_sent").increment()
        # A False return (no route right now) is not itself a verdict: the
        # *absence of return traffic* is what drives suspicion.
        self.peer.endpoint.send(
            PeerID.from_urn(urn), message, MEMBERSHIP_SERVICE, HEARTBEAT_PARAM
        )

    # ------------------------------------------------------------- receiving

    def _on_heartbeat(self, envelope: Any, message: Message) -> None:
        if self._stopped:
            return
        urn = message.get_text(MEMBER_PEER_ELEMENT) or envelope.src_peer
        if urn == self.peer.peer_id.to_urn():
            return
        address = message.get_text(MEMBER_ADDR_ELEMENT) or envelope.src_address
        self.peer.metrics.counter("membership_heartbeats_received").increment()
        member = self._members.get(urn)
        if member is None:
            # Mutual discovery: whoever heartbeats us gets monitored back.
            self.watch(urn, address)
            member = self._members.get(urn)
            if member is None:  # it was ourselves; _to_urn filtered it
                return
            member.heartbeats += 1
            return
        member.heartbeats += 1
        member.last_heard = self._clock()
        self.peer.endpoint.learn_address(urn, address)
        if member.state != ALIVE:
            member.state = ALIVE
            member.suspected_at = None
            self.peer.metrics.counter("membership_recovered").increment()
            self._update_alive_gauge()
            self._emit("recover", urn)

    # -------------------------------------------------------------- plumbing

    def _update_alive_gauge(self) -> None:
        self.peer.metrics.gauge("membership_alive").set(
            sum(1 for m in self._members.values() if m.state == ALIVE)
        )

    def _to_urn(self, target: Any) -> str:
        if isinstance(target, str):
            return target
        if isinstance(target, PeerID):
            return target.to_urn()
        peer_id = getattr(target, "peer_id", None)
        if isinstance(peer_id, PeerID):
            return peer_id.to_urn()
        raise TypeError(f"cannot derive a peer URN from {target!r}")

    def stop(self) -> None:
        """Stop heartbeating and listening.  Idempotent."""
        if self._stopped:
            return
        self._stopped = True
        self._task.stop()
        self.peer.endpoint.unregister_listener(MEMBERSHIP_SERVICE, HEARTBEAT_PARAM)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        states = self.members()
        return (
            f"MembershipMonitor({self.peer.name!r}, members={len(states)}, "
            f"alive={sum(1 for s in states.values() if s == ALIVE)})"
        )


__all__ = [
    "ALIVE",
    "DEAD",
    "HEARTBEAT_PARAM",
    "MEMBERSHIP_SERVICE",
    "MEMBER_ADDR_ELEMENT",
    "MEMBER_PEER_ELEMENT",
    "MemberState",
    "MembershipConfig",
    "MembershipListener",
    "MembershipMonitor",
    "SUSPECT",
]
