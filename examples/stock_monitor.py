#!/usr/bin/env python3
"""Content-based filtering and multi-callback subscriptions on TPS.

The paper notes that because TPS delivers *typed, encapsulated* objects, the
subscriber can trivially layer content-based filtering on top ("one can
easily implement content-based publish/subscribe (hence subject-based) using
TPS"), and that the list form of ``subscribe`` exists so the same events can
be handled "in different ways [...] the complete description of the events in
a console and [...] a sketch of them in a GUI at the same time".

This example monitors stock quotes:

* a *watchlist* subscriber uses a :class:`Criteria` with an event predicate,
  so only quotes for the symbols it cares about are ever delivered;
* a *dashboard* subscriber registers two callbacks at once -- a "console"
  view printing every quote and an "alert" view that only reacts to large
  moves -- plus an exception handler that keeps one failing callback from
  disturbing the other.

Run it with::

    python examples/stock_monitor.py
"""

from __future__ import annotations

from repro import tps_network
from repro.core import CollectingExceptionHandler, Criteria, TPSEngine


class StockQuote:
    """A stock quote event."""

    def __init__(self, symbol: str, price: float, change_percent: float) -> None:
        self.symbol = symbol
        self.price = price
        self.change_percent = change_percent

    def __str__(self) -> str:
        return f"{self.symbol} @ {self.price:.2f} ({self.change_percent:+.1f}%)"


def main() -> None:
    net = tps_network(peers=3, seed=23)
    exchange, watcher, dashboard = net.peer(0), net.peer(1), net.peer(2)

    publish_interface = TPSEngine(StockQuote, peer=exchange).new_interface("JXTA")

    # --- content-based filtering via Criteria ---------------------------------
    watchlist = {"EPFL", "ACME"}
    watch_interface = TPSEngine(StockQuote, peer=watcher).new_interface(
        "JXTA", Criteria(event_predicate=lambda quote: quote.symbol in watchlist)
    )
    watched: list[str] = []
    watch_interface.subscribe(lambda quote: watched.append(str(quote)))

    # --- one subscription, several callbacks (paper's subscribe overload) -----
    dash_interface = TPSEngine(StockQuote, peer=dashboard).new_interface("JXTA")
    console_lines: list[str] = []
    alerts: list[str] = []

    def console_view(quote: StockQuote) -> None:
        console_lines.append(f"console: {quote}")

    def alert_view(quote: StockQuote) -> None:
        if abs(quote.change_percent) < 5.0:
            raise ValueError("not interesting enough")  # routed to the handler
        alerts.append(f"ALERT: {quote}")

    errors = CollectingExceptionHandler()
    dash_interface.subscribe([console_view, alert_view], [errors, errors])

    net.settle()

    quotes = [
        StockQuote("EPFL", 120.0, +0.8),
        StockQuote("ACME", 42.0, -6.5),
        StockQuote("GLOBEX", 310.0, +2.1),
        StockQuote("ACME", 39.0, -7.1),
        StockQuote("INITECH", 11.0, +12.0),
    ]
    for quote in quotes:
        publish_interface.publish(quote)
        net.settle(rounds=3)
    net.settle()

    print(f"--- watchlist subscriber (filtered to {sorted(watchlist)}) ---")
    for line in watched:
        print(f"  {line}")
    print(f"--- dashboard console view ({len(console_lines)} quotes) ---")
    for line in console_lines:
        print(f"  {line}")
    print(f"--- dashboard alerts ({len(alerts)}) ---")
    for line in alerts:
        print(f"  {line}")
    print(f"--- callback errors routed to the exception handler: {len(errors.errors)} ---")


if __name__ == "__main__":
    main()
