"""Exceptions of the TPS layer.

The paper's API methods "could throw a publish/subscribe exception
(PSException)" and typed callbacks may throw a ``CallBackException`` which is
routed to the subscription's exception handler rather than propagated to the
middleware.
"""

from __future__ import annotations


class PSException(RuntimeError):
    """Raised by the publish/subscribe operations of the TPS API.

    Typical causes: publishing an object that is not an instance of the
    interface's event type, using an interface before its initialisation
    phase completed, or subscribing with a malformed callback.
    """


class CallBackException(RuntimeError):
    """May be raised by application callbacks while handling an event.

    The TPS layer catches it (and any other exception raised by a callback)
    and hands it to the :class:`~repro.core.callbacks.TPSExceptionHandler`
    registered with the subscription, so one misbehaving subscriber cannot
    break event dispatch for the others.
    """


class NotInitializedError(PSException):
    """Raised when publishing before the initialisation phase completed.

    The TPS initialisation phase (searching for -- or creating -- the type's
    advertisement and looking up the wire service) happens asynchronously in
    virtual time; run the simulation (``network.settle()``) before publishing.
    """


class TypeMismatchError(PSException):
    """Raised when an object of the wrong type is published on a typed interface."""


class DeliveryFailedError(PSException):
    """A reliable publish terminally failed for at least one target.

    Raised *asynchronously*: the wire layer retries with backoff and only
    gives up after ``max_delivery_attempts``, so the failure is routed to the
    engine's ``delivery_failure_handler`` (or, absent one, to every
    subscription's exception handler) instead of the original ``publish()``
    call, which returned long ago in virtual time.  Carries the wire-level
    :class:`~repro.jxta.wire.DeliveryFailure` describing the message, target
    and attempt count.
    """

    def __init__(self, failure) -> None:
        super().__init__(
            f"delivery of {failure.wire_message_id} to {failure.target_urn} "
            f"failed after {failure.attempts} attempts"
        )
        self.failure = failure


__all__ = [
    "CallBackException",
    "DeliveryFailedError",
    "NotInitializedError",
    "PSException",
    "TypeMismatchError",
]
