"""Peer Membership Protocol (PMP).

"The PMP is used to obtain information about group membership requirements
(credentials, password requirements, ...).  Once a peer has those
requirements, it can apply for membership as well as it can leave and join
the group.  This protocol is also used to update and cancel the membership,
or create a secure environment using different credential authentification
protocols."  (paper, Section 2.2, Figure 4)

The flow mirrors JXTA's: ``apply`` returns an :class:`Authenticator`
describing what the group requires; the application completes it (e.g. fills
in the password) and passes it to ``join``, which returns a
:class:`Credential`.  ``resign`` cancels the membership, ``renew`` refreshes
an expiring credential.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

from repro.jxta.errors import MembershipError
from repro.jxta.ids import PeerGroupID, PeerID

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.peergroup import PeerGroup

_credential_counter = itertools.count(1)

#: Default credential validity (seconds of virtual time).
DEFAULT_CREDENTIAL_LIFETIME = 24 * 3600.0


@dataclass
class Authenticator:
    """The membership application form returned by :meth:`MembershipService.apply`.

    ``requires_password`` tells the applicant whether the group demands a
    password; the applicant fills ``password`` before calling ``join``.
    """

    group_id: PeerGroupID
    peer_id: PeerID
    identity: str
    requires_password: bool
    password: Optional[str] = None

    def completed(self) -> bool:
        """Whether the authenticator carries everything the group requires."""
        return not self.requires_password or self.password is not None


@dataclass
class Credential:
    """Proof of membership in a group, issued by :meth:`MembershipService.join`."""

    group_id: PeerGroupID
    peer_id: PeerID
    identity: str
    issued_at: float
    expires_at: float
    serial: int = field(default_factory=lambda: next(_credential_counter))
    signature: str = ""

    def valid(self, now: float) -> bool:
        """Whether the credential has not expired at virtual time ``now``."""
        return now < self.expires_at


class MembershipService:
    """Per-group membership management."""

    SERVICE_NAME = "jxta.service.membership"

    def __init__(self, group: "PeerGroup") -> None:
        self.group = group
        self.peer = group.peer
        self._current: Optional[Credential] = None
        #: Credentials issued for remote members (when this peer created the group).
        self._members: Dict[str, Credential] = {}

    # ------------------------------------------------------------ properties

    @property
    def current_credential(self) -> Optional[Credential]:
        """The local peer's credential for this group, if joined."""
        return self._current

    def is_member(self) -> bool:
        """Whether the local peer currently holds a valid credential."""
        return self._current is not None and self._current.valid(self.peer.now)

    def member_count(self) -> int:
        """Number of credentials this peer has issued (as group authority)."""
        return len(self._members)

    # ---------------------------------------------------------------- apply

    def apply(self, identity: Optional[str] = None) -> Authenticator:
        """Ask for the group's membership requirements.

        Returns an :class:`Authenticator` that must be completed (password
        filled in when required) and passed to :meth:`join`.
        """
        requires_password = self.group.advertisement.membership_password is not None
        return Authenticator(
            group_id=self.group.group_id,
            peer_id=self.peer.peer_id,
            identity=identity or self.peer.name,
            requires_password=requires_password,
        )

    def join(self, authenticator: Authenticator) -> Credential:
        """Complete the membership application and obtain a credential.

        Raises :class:`MembershipError` when the authenticator targets another
        group, is incomplete, or carries the wrong password.
        """
        if authenticator.group_id != self.group.group_id:
            raise MembershipError(
                "authenticator was issued for a different group "
                f"({authenticator.group_id!r} != {self.group.group_id!r})"
            )
        if not authenticator.completed():
            raise MembershipError("authenticator is incomplete (missing password)")
        expected = self.group.advertisement.membership_password
        if expected is not None and authenticator.password != expected:
            raise MembershipError("wrong group password")
        now = self.peer.now
        credential = Credential(
            group_id=self.group.group_id,
            peer_id=authenticator.peer_id,
            identity=authenticator.identity,
            issued_at=now,
            expires_at=now + DEFAULT_CREDENTIAL_LIFETIME,
            signature=self._sign(authenticator),
        )
        if authenticator.peer_id == self.peer.peer_id:
            self._current = credential
        self._members[authenticator.peer_id.to_urn()] = credential
        self.peer.metrics.counter("membership_joins").increment()
        return credential

    def renew(self) -> Credential:
        """Refresh the local credential's expiry (``update the membership``)."""
        if self._current is None:
            raise MembershipError("cannot renew: not a member of the group")
        now = self.peer.now
        self._current.issued_at = now
        self._current.expires_at = now + DEFAULT_CREDENTIAL_LIFETIME
        self.peer.metrics.counter("membership_renewals").increment()
        return self._current

    def resign(self) -> None:
        """Leave the group (``cancel the membership``)."""
        if self._current is None:
            raise MembershipError("cannot resign: not a member of the group")
        self._members.pop(self._current.peer_id.to_urn(), None)
        self._current = None
        self.peer.metrics.counter("membership_resignations").increment()

    def validate(self, credential: Credential) -> bool:
        """Check a presented credential (right group, unexpired, signature intact)."""
        if credential.group_id != self.group.group_id:
            return False
        if not credential.valid(self.peer.now):
            return False
        return bool(credential.signature)

    def _sign(self, authenticator: Authenticator) -> str:
        digest = hashlib.sha256(
            "|".join(
                (
                    authenticator.group_id.to_urn(),
                    authenticator.peer_id.to_urn(),
                    authenticator.identity,
                    authenticator.password or "",
                )
            ).encode("utf-8")
        )
        return digest.hexdigest()


__all__ = [
    "Authenticator",
    "Credential",
    "DEFAULT_CREDENTIAL_LIFETIME",
    "MembershipService",
]
