"""Micro-benchmark helpers: the real (wall-clock) cost of the TPS layer's work.

The paper attributes the (small) gap between SR-TPS and SR-JXTA to the extra
work the TPS layer performs per message: typed serialisation, type-registry
lookups, subtype matching, duplicate filtering and callback dispatch.  The
simulated figures charge calibrated virtual-time costs for that work; the
micro-benchmarks in ``benchmarks/test_micro_overheads.py`` measure the
*actual* Python cost of each step with pytest-benchmark, documenting where
the layer's overhead comes from (experiment E5 in DESIGN.md).

This module provides ready-made fixtures for those benchmarks so they stay
one-liners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List

from repro.apps.skirental.types import PremiumSkiRental, RentalOffer, SkiRental
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.type_registry import TypeRegistry
from repro.jxta.message import Message
from repro.serialization.object_codec import ObjectCodec


def sample_offer(index: int = 0) -> SkiRental:
    """A representative event instance."""
    return SkiRental(
        shop=f"shop-{index}", price=100.0 + index, brand="Salomon", number_of_days=7
    )


def sample_registry() -> TypeRegistry:
    """A type registry covering the ski-rental hierarchy."""
    registry = TypeRegistry(SkiRental)
    registry.register(PremiumSkiRental)
    return registry


@dataclass
class EncodedEvent:
    """An event together with its serialised form (for decode benchmarks)."""

    event: SkiRental
    payload: bytes
    registry: TypeRegistry


def sample_encoded_event(index: int = 0) -> EncodedEvent:
    """An event plus its encoded payload, ready for decode benchmarks."""
    registry = sample_registry()
    event = sample_offer(index)
    return EncodedEvent(event=event, payload=registry.encode(event), registry=registry)


def sample_wire_message(size: int = 1910) -> Message:
    """A message padded to the paper's 1910-byte size (serialisation benchmarks)."""
    registry = sample_registry()
    message = Message()
    message.add("TPSType", "SkiRental")
    message.add("TPSMsgId", "bench/1")
    message.add("TPSEvent", registry.encode(sample_offer()))
    message.pad_to(size)
    return message


def local_pair(subscribers: int = 1) -> tuple[LocalTPSEngine, List[LocalTPSEngine]]:
    """A publisher plus N subscribers on a private in-process bus."""
    bus = LocalBus()
    publisher = LocalTPSEngine(SkiRental, bus=bus)
    receivers: List[LocalTPSEngine] = []
    for _ in range(subscribers):
        engine = LocalTPSEngine(SkiRental, bus=bus)
        engine.subscribe(lambda event: None)
        receivers.append(engine)
    return publisher, receivers


def dispatch_cost_workload(events: int = 100) -> Callable[[], int]:
    """A closure publishing ``events`` events through the local binding.

    Measures the pure Python cost of the TPS semantics (type check, codec
    round-trip, subtype matching, callback dispatch) without any simulated
    substrate.
    """
    publisher, _receivers = local_pair(subscribers=1)
    offers = [sample_offer(i) for i in range(events)]

    def run() -> int:
        for offer in offers:
            publisher.publish(offer)
        return events

    return run


__all__ = [
    "EncodedEvent",
    "dispatch_cost_workload",
    "local_pair",
    "sample_encoded_event",
    "sample_offer",
    "sample_registry",
    "sample_wire_message",
]
