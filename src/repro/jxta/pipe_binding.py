"""Pipe Binding Protocol (PBP).

"The PBP is responsible for keeping the different peers of a pipe bound
together.  Even if the peers are moving in the network (i.e., if their IP
addresses do not remain the same), they can continue to use the same pipes to
send/receive messages. [...] instead of counting upon a fixed IP address, the
protocol relies on a fixed Universal Unique IDentifier (UUID) for each peer."
(paper, Section 2.2, Figure 5)

The binding service keeps two tables:

* *local bindings*: pipe ID -> the input pipes this peer has opened;
* *remote bindings*: pipe ID -> the peers known to have opened input pipes.

When an input pipe is created the binding is announced (propagated) so
existing output pipes learn about it; when an output pipe is created a
binding query is propagated and peers with local bindings respond.  Because
the tables are keyed by :class:`PeerID` (not by network address), a peer that
crashes and comes back at a new address keeps receiving messages -- the
endpoint simply refreshes the address from new traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.jxta.advertisement import PipeAdvertisement
from repro.jxta.endpoint import EndpointEnvelope
from repro.jxta.ids import PeerID, PipeID
from repro.jxta.message import Message
from repro.jxta.pipes import InputPipe, OutputPipe, PipeMessageListener
from repro.jxta.resolver import ResolverQuery, ResolverResponse
from repro.serialization.xml_codec import XmlElement, XmlParseError, parse_xml, to_xml

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.peergroup import PeerGroup


class PipeBindingService:
    """Per-group pipe creation, binding resolution and plain-pipe data delivery."""

    SERVICE_NAME = "jxta.service.pipe"
    DATA_SERVICE_NAME = "jxta.service.pipedata"
    HANDLER_NAME = "urn:jxta:pbp"

    def __init__(self, group: "PeerGroup") -> None:
        self.group = group
        self.peer = group.peer
        #: pipe URN -> input pipes opened locally.
        self._local: Dict[str, List[InputPipe]] = {}
        #: pipe URN -> {peer URN -> last known address} for remote bindings.
        self._remote: Dict[str, Dict[str, str]] = {}
        group.resolver.register_handler(self.HANDLER_NAME, self)

    # --------------------------------------------------------- pipe creation

    def create_input_pipe(
        self,
        advertisement: PipeAdvertisement,
        listener: Optional[PipeMessageListener] = None,
        *,
        processing_cost: float = 0.0,
        announce: bool = True,
    ) -> InputPipe:
        """Open an input pipe for ``advertisement`` and announce the binding."""
        pipe = InputPipe(
            advertisement,
            self,
            listener=listener,
            processing_cost=processing_cost,
        )
        urn = advertisement.pipe_id.to_urn()
        if urn not in self._local:
            self._local[urn] = []
            # First local input pipe for this pipe: listen for data envelopes.
            self.peer.endpoint.register_listener(
                self.DATA_SERVICE_NAME, urn, self._on_data_envelope
            )
        self._local[urn].append(pipe)
        self.peer.metrics.counter("pipes_input_created").increment()
        if announce:
            self._announce(advertisement.pipe_id, bind=True)
        return pipe

    def create_output_pipe(
        self, advertisement: PipeAdvertisement, *, resolve: bool = True
    ) -> OutputPipe:
        """Open an output pipe and (by default) issue a binding resolution query."""
        pipe = OutputPipe(advertisement, self)
        self.peer.metrics.counter("pipes_output_created").increment()
        if resolve:
            self.resolve(advertisement.pipe_id)
        return pipe

    def unbind(self, pipe: InputPipe) -> None:
        """Remove a local binding (called by :meth:`InputPipe.close`)."""
        urn = pipe.pipe_id.to_urn()
        pipes = self._local.get(urn, [])
        if pipe in pipes:
            pipes.remove(pipe)
        if not pipes and urn in self._local:
            del self._local[urn]
            self.peer.endpoint.unregister_listener(self.DATA_SERVICE_NAME, urn)
            self._announce(pipe.pipe_id, bind=False)

    # ------------------------------------------------------------ resolution

    def resolve(self, pipe_id: PipeID) -> str:
        """Propagate a binding query for ``pipe_id``; returns the query id."""
        query = XmlElement("PipeResolve")
        query.add("Pipe", pipe_id.to_urn())
        query.add("Peer", self.peer.peer_id.to_urn())
        self.peer.metrics.counter("pbp_resolve_queries").increment()
        return self.group.resolver.send_query(
            self.HANDLER_NAME, to_xml(query, declaration=False)
        )

    def resolved_peers(self, pipe_id: PipeID) -> List[PeerID]:
        """Peers known to have an input pipe bound for ``pipe_id`` (excluding self)."""
        urn = pipe_id.to_urn()
        me = self.peer.peer_id.to_urn()
        return [
            PeerID.from_urn(peer_urn)
            for peer_urn in sorted(self._remote.get(urn, {}))
            if peer_urn != me
        ]

    def forget_peer(self, peer_id: PeerID | str) -> int:
        """Drop every remote binding of one peer; returns bindings removed.

        The membership layer calls this when a peer is *confirmed* dead, so
        ``resolved_peers`` stops offering it as a wire target immediately --
        the symmetric operation to a ``PipeUnbind`` announcement the dead
        peer can no longer send.  A peer that later rejoins re-announces (or
        answers the next ``PipeResolve``) and is re-recorded normally.
        """
        urn = peer_id.to_urn() if isinstance(peer_id, PeerID) else peer_id
        removed = 0
        for bindings in self._remote.values():
            if bindings.pop(urn, None) is not None:
                removed += 1
        if removed:
            self.peer.metrics.counter("pbp_bindings_forgotten").increment(removed)
        return removed

    def local_pipes(self, pipe_id: PipeID) -> List[InputPipe]:
        """Input pipes this peer has open for ``pipe_id``."""
        return list(self._local.get(pipe_id.to_urn(), []))

    def has_local_binding(self, pipe_id: PipeID) -> bool:
        """Whether this peer has at least one open input pipe for ``pipe_id``."""
        return bool(self._local.get(pipe_id.to_urn()))

    def _announce(self, pipe_id: PipeID, *, bind: bool) -> None:
        announcement = XmlElement("PipeBind" if bind else "PipeUnbind")
        announcement.add("Pipe", pipe_id.to_urn())
        announcement.add("Peer", self.peer.peer_id.to_urn())
        announcement.add("Address", self.peer.node.address)
        self.peer.metrics.counter("pbp_announcements").increment()
        self.group.resolver.send_query(
            self.HANDLER_NAME, to_xml(announcement, declaration=False)
        )

    # ------------------------------------------------------ resolver handler

    def process_query(self, query: ResolverQuery) -> Optional[str]:
        """Handle binding announcements and resolution queries.

        Malformed bodies are counted and dropped, not raised into the
        resolver dispatch loop.
        """
        try:
            element = parse_xml(query.body)
        except XmlParseError:
            self.peer.metrics.counter("pbp_malformed").increment()
            return None
        if element.name == "PipeBind":
            self._record_remote(
                element.child_text("Pipe"),
                element.child_text("Peer"),
                element.child_text("Address"),
            )
            return None
        if element.name == "PipeUnbind":
            pipe_urn = element.child_text("Pipe")
            peer_urn = element.child_text("Peer")
            self._remote.get(pipe_urn, {}).pop(peer_urn, None)
            return None
        if element.name == "PipeResolve":
            pipe_urn = element.child_text("Pipe")
            if not self._local.get(pipe_urn):
                return None
            response = XmlElement("PipeBound")
            response.add("Pipe", pipe_urn)
            response.add("Peer", self.peer.peer_id.to_urn())
            response.add("Address", self.peer.node.address)
            return to_xml(response, declaration=False)
        return None

    def process_response(self, response: ResolverResponse) -> None:
        """Record a ``PipeBound`` response to one of our resolution queries."""
        try:
            element = parse_xml(response.body)
        except XmlParseError:
            self.peer.metrics.counter("pbp_malformed").increment()
            return
        if element.name == "PipeBound":
            self._record_remote(
                element.child_text("Pipe"),
                element.child_text("Peer"),
                element.child_text("Address"),
            )

    def _record_remote(self, pipe_urn: str, peer_urn: str, address: str) -> None:
        if not pipe_urn or not peer_urn:
            return
        if peer_urn == self.peer.peer_id.to_urn():
            return
        self._remote.setdefault(pipe_urn, {})[peer_urn] = address
        if address:
            self.peer.endpoint.learn_address(peer_urn, address)
        self.peer.metrics.counter("pbp_bindings_learned").increment()

    # ------------------------------------------------------------ data plane

    def send_data(self, pipe_id: PipeID, message: Message, targets: List[PeerID]) -> int:
        """Send ``message`` to each target's input pipe(s); returns sends performed."""
        sent = 0
        for target in targets:
            if self.peer.endpoint.send(
                target, message, self.DATA_SERVICE_NAME, pipe_id.to_urn()
            ):
                sent += 1
        self.peer.metrics.counter("pipes_messages_sent").increment(sent if sent else 0)
        return sent

    def _on_data_envelope(self, envelope: EndpointEnvelope, message: Message) -> None:
        pipes = self._local.get(envelope.param, [])
        if not pipes:
            self.peer.metrics.counter("pipes_unbound_deliveries").increment()
            return
        source = envelope.source_peer_id
        self.peer.metrics.counter("pipes_messages_received").increment()
        for pipe in list(pipes):
            pipe.receive(message, source)


__all__ = ["PipeBindingService"]
