"""Programming-effort comparison (paper, Section 4.4).

"Writing the very same application with JXTA implies writing about 5000
lines of code more than using directly TPS.  [...] Otherwise (not having the
functionnalities of TPS), the API saves, at least, to code 900 lines."

The exact counts depend on the language and the code base, so this experiment
reproduces the *claim structure* rather than the absolute numbers:

* the application written on TPS (``tps_app.py``) is counted against the
  application written directly on JXTA (``jxta_app.py``) -- the minimal
  saving ("at least 900 lines" in the paper's Java);
* the full saving additionally counts the TPS layer itself
  (:mod:`repro.core`), i.e. everything a JXTA programmer would have to write
  and maintain to obtain the same functionality with the full API.

Lines are counted as non-blank, non-comment source lines (docstrings count as
comments), which is the fairest proxy for "code the programmer writes".
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List

import repro.apps.skirental.jxta_app as _jxta_app
import repro.apps.skirental.tps_app as _tps_app
import repro.apps.skirental.wire_app as _wire_app
import repro.core as _core_package


def count_code_lines(path: Path) -> int:
    """Count non-blank, non-comment, non-docstring source lines of a Python file."""
    source = path.read_text(encoding="utf-8")
    code_lines: set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type in (
                tokenize.COMMENT,
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENCODING,
                tokenize.ENDMARKER,
            ):
                continue
            if token.type == tokenize.STRING and _is_docstring_token(source, token):
                continue
            for line in range(token.start[0], token.end[0] + 1):
                code_lines.add(line)
    except tokenize.TokenError:
        # Fall back to a crude count for files the tokenizer rejects.
        return sum(1 for line in source.splitlines() if line.strip() and not line.strip().startswith("#"))
    return len(code_lines)


def _is_docstring_token(source: str, token: tokenize.TokenInfo) -> bool:
    """Heuristic: a STRING token that starts a logical line is a docstring."""
    line = source.splitlines()[token.start[0] - 1]
    prefix = line[: token.start[1]]
    return prefix.strip() == ""


def count_package_lines(package) -> Dict[str, int]:
    """Count code lines of every module in a package directory."""
    package_dir = Path(package.__file__).parent
    counts: Dict[str, int] = {}
    for path in sorted(package_dir.rglob("*.py")):
        counts[str(path.relative_to(package_dir))] = count_code_lines(path)
    return counts


@dataclass
class CodeSizeReport:
    """The programming-effort comparison, in source lines of code."""

    #: LoC of the application written on the TPS API.
    tps_application: int
    #: LoC of the same application written directly on JXTA.
    jxta_application: int
    #: LoC of the bare wire-only application (no SR functionality).
    wire_application: int
    #: LoC of the TPS layer itself (what a JXTA programmer would have to
    #: write to get the full API's functionality).
    tps_library: int
    per_module: Dict[str, int] = field(default_factory=dict)

    @property
    def minimal_saving(self) -> int:
        """Lines saved by using TPS for this one application (paper: >= 900)."""
        return self.jxta_application - self.tps_application

    @property
    def full_saving(self) -> int:
        """Lines saved including the reusable TPS layer (paper: ~5000)."""
        return (self.jxta_application + self.tps_library) - self.tps_application

    @property
    def application_ratio(self) -> float:
        """How many times larger the direct-JXTA application is."""
        return self.jxta_application / self.tps_application if self.tps_application else 0.0


def measure_code_size() -> CodeSizeReport:
    """Measure the repository's own code sizes for the Section 4.4 comparison."""
    tps_application = count_code_lines(Path(_tps_app.__file__))
    jxta_application = count_code_lines(Path(_jxta_app.__file__))
    wire_application = count_code_lines(Path(_wire_app.__file__))
    core_counts = count_package_lines(_core_package)
    report = CodeSizeReport(
        tps_application=tps_application,
        jxta_application=jxta_application,
        wire_application=wire_application,
        tps_library=sum(core_counts.values()),
        per_module={f"repro/core/{name}": lines for name, lines in core_counts.items()},
    )
    report.per_module["apps/skirental/tps_app.py"] = tps_application
    report.per_module["apps/skirental/jxta_app.py"] = jxta_application
    report.per_module["apps/skirental/wire_app.py"] = wire_application
    return report


__all__ = ["CodeSizeReport", "count_code_lines", "count_package_lines", "measure_code_size"]
