"""Subscription management: the "Interface Repository" block.

"This block stores all the call-back interfaces and exception handlers.  It
also starts and stops the subscriptions."  (paper, Section 3.4)

:class:`TPSSubscriberManager` is the interface repository;
:class:`TPSPipeReader` is the reader the paper attaches to each wire input
pipe "in order to receive the events" -- it hands raw wire messages to the
engine, which decodes, type-checks, de-duplicates and dispatches them to the
registered callbacks.

Locking model: every mutation (``add``/``discard``/``remove``) serialises on
the manager's private lock and ends by swapping in a freshly built, immutable
``_handlers`` tuple.  Dispatch -- whether through :meth:`dispatch` or inlined
in :meth:`repro.core.local_engine.LocalBus.publish` -- reads that tuple with
*no* lock: a single attribute load observes either the old or the new
snapshot, never a half-built one, so concurrent publishers are never slowed
by subscription churn and a subscription mutated mid-dispatch takes effect
from the next event on (the same isolation the seed's per-dispatch copy
provided, now also thread-safe).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Tuple, TYPE_CHECKING

from repro.core.interface import Subscription
from repro.core.subscriptions import CircuitBreaker
from repro.jxta.ids import PeerID
from repro.jxta.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.jxta_engine import JxtaTPSEngine


class TPSSubscriberManager:
    """Stores the (callback, exception handler) pairs of one TPS interface.

    Dispatch iterates an immutable snapshot that is rebuilt only when a
    subscription is added or removed, instead of copying the subscription
    list on every single event (subscriptions change rarely; events are the
    hot path).  The snapshot holds the *bound* ``handle`` methods of each
    callback/handler pair, resolved once at (un)subscribe time, so dispatch
    performs no attribute lookups per event.  A callback that mutates the
    subscriptions mid-dispatch sees the change from the *next* event on --
    the same isolation the seed's per-dispatch copy provided.

    Thread safety: mutations hold ``_lock``; dispatch reads the immutable
    ``_handlers`` tuple lock-free (see the module docstring).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscriptions: List[Subscription] = []
        #: Active breaker policy; when set, every current and future
        #: subscription gets its own :class:`CircuitBreaker` built from it.
        self._breaker_policy: Optional[Tuple[int, float, Any, Any]] = None
        #: (callback.handle, exception_handler.handle, predicate, breaker)
        #: rows, in order.  The predicate slot carries each subscription's
        #: pushed-down event filter (None for unfiltered subscriptions), so
        #: dispatch can skip filtered-out events before the callback frame is
        #: ever opened; the breaker slot carries the subscription's
        #: crash-containment breaker (None when no policy is configured).
        self._handlers: Tuple[
            Tuple[Callable[[Any], Any], Callable[[Any], Any], Any, Any], ...
        ] = ()

    # ------------------------------------------------------------ mutation

    def _rebuild_handlers(self) -> None:
        """Swap in a fresh dispatch snapshot; caller must hold ``_lock``."""
        self._handlers = tuple(
            (
                subscription.callback.handle,
                subscription.exception_handler.handle,
                subscription.predicate,
                subscription.breaker,
            )
            for subscription in self._subscriptions
        )

    def set_breaker_policy(
        self,
        threshold: int,
        cooldown: float,
        *,
        clock: Optional[Callable[[], float]] = None,
        listener: Optional[Callable[[str, CircuitBreaker], None]] = None,
    ) -> None:
        """Attach a :class:`CircuitBreaker` to every current and future subscription.

        ``threshold`` consecutive callback failures quarantine that
        subscription for ``cooldown`` seconds of the supplied ``clock``
        (engines pass the virtual clock; the default is wall time).  A
        non-positive ``threshold`` clears the policy for *future*
        subscriptions (existing breakers keep operating).
        """
        with self._lock:
            if threshold <= 0:
                self._breaker_policy = None
                return
            self._breaker_policy = (threshold, cooldown, clock, listener)
            for subscription in self._subscriptions:
                if subscription.breaker is None:
                    subscription.breaker = self._make_breaker()
            self._rebuild_handlers()

    def _make_breaker(self) -> CircuitBreaker:
        """Build a breaker from the active policy; caller must hold ``_lock``."""
        threshold, cooldown, clock, listener = self._breaker_policy
        return CircuitBreaker(threshold, cooldown, clock=clock, listener=listener)

    def add(self, subscription: Subscription) -> None:
        """Register one subscription."""
        with self._lock:
            if self._breaker_policy is not None and subscription.breaker is None:
                subscription.breaker = self._make_breaker()
            self._subscriptions.append(subscription)
            self._rebuild_handlers()

    def discard(self, subscription: Subscription) -> int:
        """Remove one exact subscription object (identity, not matching).

        This is the handle-cancellation path: O(n) identity scan, no
        ``Subscription.matches`` calls.  Returns 0 or 1.
        """
        with self._lock:
            before = len(self._subscriptions)
            self._subscriptions = [
                existing for existing in self._subscriptions if existing is not subscription
            ]
            removed = before - len(self._subscriptions)
            if removed:
                self._rebuild_handlers()
            return removed

    def remove(self, callback: Optional[Any] = None, handler: Optional[Any] = None) -> int:
        """Remove matching subscriptions; with no arguments remove everything.

        Returns the number of subscriptions removed.
        """
        with self._lock:
            if callback is None:
                removed = len(self._subscriptions)
                self._subscriptions.clear()
                self._handlers = ()
                return removed
            keep: List[Subscription] = []
            removed = 0
            for subscription in self._subscriptions:
                if subscription.matches(callback, handler):
                    removed += 1
                else:
                    keep.append(subscription)
            self._subscriptions = keep
            self._rebuild_handlers()
            return removed

    # ------------------------------------------------------------- queries

    def subscriptions(self) -> List[Subscription]:
        """A snapshot of the registered subscriptions."""
        return list(self._subscriptions)

    def __len__(self) -> int:
        return len(self._subscriptions)

    @property
    def empty(self) -> bool:
        """Whether no subscription is registered."""
        return not self._subscriptions

    # ------------------------------------------------------------ dispatch

    def dispatch(self, event: Any) -> int:
        """Hand an event to every callback, routing errors to the paired handler.

        Returns the number of callbacks that processed the event without
        raising.
        """
        delivered = 0
        for handle, handle_error, predicate, breaker in self._handlers:
            # Predicate errors are routed to the paired handler like callback
            # errors: a broken pushed-down filter must not stop dispatch (and
            # counts against the breaker -- a persistently-raising predicate
            # burns every publish just like a raising callback).
            try:
                if predicate is not None and not predicate(event):
                    continue
                if breaker is not None and not breaker.allow():
                    continue
                handle(event)
                delivered += 1
                if breaker is not None:
                    breaker.record_success()
            except BaseException as error:  # noqa: BLE001 - routed to the handler
                if breaker is not None:
                    breaker.record_failure()
                try:
                    handle_error(error)
                except BaseException:  # noqa: BLE001  # repro-lint: disable=RL005 - a broken handler must not stop dispatch
                    pass
        return delivered


class TPSPipeReader:
    """The wire input pipe listener: feeds received messages to the engine."""

    def __init__(self, engine: "JxtaTPSEngine") -> None:
        self.engine = engine
        self.messages_seen = 0

    def __call__(self, message: Message, source: PeerID) -> None:
        """Wire pipe listener entry point."""
        self.messages_seen += 1
        self.engine._on_wire_message(message, source)


__all__ = ["TPSPipeReader", "TPSSubscriberManager"]
