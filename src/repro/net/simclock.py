"""Virtual clock and discrete-event scheduler.

The simulator is the heartbeat of the whole reproduction: peers, protocols and
the TPS layer never sleep or consult the wall clock; they schedule callbacks on
a :class:`Simulator` and the benchmark harness advances virtual time.  This
keeps every experiment deterministic and independent of the speed of the
machine the reproduction runs on, which is exactly what we need to reproduce
the *shape* of the paper's figures rather than accidental artefacts of the
host machine.

Time is measured in (floating point) seconds of virtual time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly (e.g. scheduling in the past)."""


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry: ordered by (time, sequence number)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, usable to cancel the event."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """The virtual time at which the event fires (or would have fired)."""
        return self._event.time

    @property
    def label(self) -> str:
        """Human-readable label given at scheduling time."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is harmless."""
        self._event.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, {state}, label={self.label!r})"


class SimClock:
    """A read-only view of virtual time.

    Components hold a reference to the clock so they can timestamp metrics and
    advertisements without being able to advance time themselves.
    """

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def _advance_to(self, t: float) -> None:
        if t < self._now:
            raise SimulationError(
                f"clock cannot move backwards (now={self._now}, requested={t})"
            )
        self._now = t


class Simulator:
    """Discrete-event scheduler driving the simulated network and peers.

    The simulator owns a :class:`SimClock` and a priority queue of events.
    Events scheduled for the same instant fire in FIFO order, which makes runs
    fully deterministic.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, lambda: print("half a second later"))
        sim.run()
    """

    def __init__(self) -> None:
        self._clock = SimClock()
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._processed = 0
        self._running = False

    # ------------------------------------------------------------------ time

    @property
    def clock(self) -> SimClock:
        """The simulator's clock (read-only view of time)."""
        return self._clock

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._clock.now

    @property
    def pending(self) -> int:
        """Number of events still waiting to fire (including cancelled ones)."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def processed(self) -> int:
        """Total number of events that have fired so far."""
        return self._processed

    # ------------------------------------------------------------- scheduling

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  Returns an :class:`EventHandle` that
        can be used to cancel the event before it fires.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at the absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (now={self.now}, at={time})"
            )
        event = _ScheduledEvent(time=time, seq=next(self._seq), callback=callback, label=label)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def call_soon(self, callback: Callable[[], None], *, label: str = "") -> EventHandle:
        """Schedule ``callback`` at the current instant (after already-queued events)."""
        return self.schedule(0.0, callback, label=label)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        label: str = "",
        jitter: Callable[[], float] | None = None,
    ) -> "PeriodicTask":
        """Schedule ``callback`` every ``interval`` seconds until cancelled.

        ``jitter``, if given, is called before each rescheduling and its return
        value is added to the interval.  It may be negative; the resulting
        delay is clamped to at least 1 % of the base interval so a pathological
        jitter can never wedge the simulation in a zero-delay loop.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive (got {interval})")
        task = PeriodicTask(self, interval, callback, label=label, jitter=jitter)
        task.start()
        return task

    # ---------------------------------------------------------------- running

    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._clock._advance_to(event.time)
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` events fired).

        Returns the number of events fired by this call.
        """
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                break
            if not self.step():
                break
            fired += 1
        return fired

    def run_until(self, time: float) -> int:
        """Run all events scheduled at or before ``time``; advance the clock to ``time``.

        Returns the number of events fired.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot run backwards (now={self.now}, requested={time})"
            )
        fired = 0
        while self._queue:
            head = self._next_live()
            if head is None or head.time > time:
                break
            self.step()
            fired += 1
        self._clock._advance_to(time)
        return fired

    def run_for(self, duration: float) -> int:
        """Run for ``duration`` seconds of virtual time from now."""
        return self.run_until(self.now + duration)

    def _next_live(self) -> Optional[_ScheduledEvent]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def drain(self, rounds: int = 64, quantum: float = 1.0) -> int:
        """Run until the system goes quiet, bounded by ``rounds`` quanta of time.

        ``drain`` is used by the test-bed helper to let discovery and
        subscription traffic settle before an experiment starts.  Periodic
        tasks never let the queue empty, so instead of waiting for emptiness we
        advance time in ``quantum``-second steps until either the queue is
        empty or ``rounds`` quanta have passed.
        """
        fired = 0
        for _ in range(rounds):
            if not self._queue:
                break
            fired += self.run_for(quantum)
        return fired


class PeriodicTask:
    """A recurring event created by :meth:`Simulator.schedule_periodic`."""

    def __init__(
        self,
        simulator: Simulator,
        interval: float,
        callback: Callable[[], None],
        *,
        label: str = "",
        jitter: Callable[[], float] | None = None,
    ) -> None:
        self._sim = simulator
        self._interval = interval
        self._callback = callback
        self._label = label
        self._jitter = jitter
        self._handle: EventHandle | None = None
        self._stopped = False
        self.fire_count = 0

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped

    @property
    def interval(self) -> float:
        """The base interval between firings, in seconds."""
        return self._interval

    def start(self) -> None:
        """(Re)arm the task.  Called automatically by ``schedule_periodic``."""
        if self._stopped:
            raise SimulationError("cannot restart a stopped periodic task")
        self._arm()

    def stop(self) -> None:
        """Stop firing.  Idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def _arm(self) -> None:
        delay = self._interval
        if self._jitter is not None:
            delay = max(self._interval * 0.01, delay + self._jitter())
        self._handle = self._sim.schedule(delay, self._fire, label=self._label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        try:
            self._callback()
        finally:
            if not self._stopped:
                self._arm()


def run_all(simulators: Iterable[Simulator]) -> None:
    """Run several independent simulators to completion (helper for tests)."""
    for sim in simulators:
        sim.run()


__all__ = [
    "EventHandle",
    "PeriodicTask",
    "SimClock",
    "SimulationError",
    "Simulator",
    "run_all",
]
