"""Runtime type information for Type-based Publish/Subscribe.

The paper's implementation is built on Generic Java (GJ), whose erasure
semantics force the programmer to pass an *instance* of the type parameter at
initialisation ("We must provide this instance because GJ does not provide
runtime information about (actual) type parameters").  Python's runtime types
give us strictly more information, so the reproduction keeps the type object
itself and derives everything from it:

* the *hierarchy root* of an event type -- in TPS one publish/subscribe
  engine covers one type hierarchy (paper, Section 4.2), so the JXTA
  advertisement is named after the root type and subtype filtering happens at
  the subscriber;
* the set of *conforming* types (Figure 7: a subscriber to type ``A``
  receives instances of ``A`` and of every subtype of ``A``);
* registration of the whole hierarchy with the
  :class:`~repro.serialization.object_codec.ObjectCodec`, so typed events can
  be reconstructed as real instances on the subscriber side (the "common Java
  type model" assumption of the paper becomes "both peers import the same
  Python classes").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Type

from repro.core.exceptions import PSException
from repro.serialization.object_codec import ObjectCodec


def type_name(cls: Type[Any]) -> str:
    """The fully qualified, stable name of an event type."""
    return f"{cls.__module__}.{cls.__qualname__}"


def hierarchy_root(cls: Type[Any]) -> Type[Any]:
    """The topmost user-defined ancestor of ``cls`` (excluding ``object``).

    TPS associates one engine -- and therefore one advertisement -- with one
    type *hierarchy*; publishing or subscribing anywhere in the hierarchy goes
    through the root's advertisement and events are filtered by subtype on
    delivery (Figure 7 of the paper).
    """
    root = cls
    current = cls
    while True:
        bases = [base for base in current.__bases__ if base is not object]
        if not bases:
            return root
        # Follow the first (primary) base; multiple inheritance across
        # unrelated hierarchies is rejected by validate_event_type.
        current = bases[0]
        root = current


def all_subtypes(cls: Type[Any]) -> List[Type[Any]]:
    """``cls`` plus every (transitively) known subclass, in deterministic order."""
    seen: Set[Type[Any]] = set()
    ordered: List[Type[Any]] = []

    def visit(current: Type[Any]) -> None:
        if current in seen:
            return
        seen.add(current)
        ordered.append(current)
        for sub in current.__subclasses__():
            visit(sub)

    visit(cls)
    return ordered


def validate_event_type(cls: Type[Any]) -> Type[Any]:
    """Check that ``cls`` is usable as a TPS event type.

    Event types must be classes (not instances) and must not be built-in
    primitives.  Multiple inheritance is allowed: the event's hierarchy (and
    therefore its advertisement) is determined by the *primary* (first) base
    chain, and any further bases are treated as mixins that do not affect
    matching.
    """
    if not isinstance(cls, type):
        raise PSException(f"event type must be a class, got {cls!r}")
    if cls.__module__ == "builtins":
        raise PSException(
            f"built-in type {cls.__name__!r} cannot be used as a TPS event type; "
            "define an application event class instead"
        )
    return cls


class TypeRegistry:
    """Tracks one engine's event type hierarchy and its wire names.

    The registry owns the :class:`ObjectCodec` used to serialise events, and
    registers the root type plus every currently known subclass with it.
    Types defined after the engine was created can be added explicitly with
    :meth:`register`.
    """

    def __init__(self, event_type: Type[Any], *, codec: Optional[ObjectCodec] = None) -> None:
        validate_event_type(event_type)
        self.event_type = event_type
        self.root = hierarchy_root(event_type)
        self.codec = codec or ObjectCodec(strict=True)
        self._registered: Set[Type[Any]] = set()
        self.refresh()

    # ------------------------------------------------------------- registry

    def refresh(self) -> None:
        """(Re)register the root type and every currently known subtype."""
        for cls in all_subtypes(self.root):
            self.register(cls)

    def register(self, cls: Type[Any]) -> Type[Any]:
        """Register one type of the hierarchy with the codec."""
        validate_event_type(cls)
        if hierarchy_root(cls) is not self.root:
            raise PSException(
                f"type {type_name(cls)} does not belong to the {type_name(self.root)} hierarchy"
            )
        self.codec.register(cls, type_name(cls))
        self._registered.add(cls)
        return cls

    def registered_types(self) -> List[Type[Any]]:
        """Every type registered so far, sorted by name."""
        return sorted(self._registered, key=type_name)

    # ------------------------------------------------------------- matching

    def conforms(self, event: Any) -> bool:
        """Whether ``event`` should be delivered to subscribers of ``event_type``.

        Figure 7 semantics: an event conforms when it is an instance of the
        interface's type (i.e. of the type or any of its subtypes).
        """
        return isinstance(event, self.event_type)

    def in_hierarchy(self, event: Any) -> bool:
        """Whether ``event`` belongs to the engine's hierarchy at all."""
        return isinstance(event, self.root)

    def check_publishable(self, event: Any) -> None:
        """Raise :class:`PSException` unless ``event`` can be published on this interface."""
        if event is None:
            raise PSException("cannot publish None")
        if isinstance(event, type):
            raise PSException("publish expects an instance, not a class")
        if not self.conforms(event):
            from repro.core.exceptions import TypeMismatchError

            raise TypeMismatchError(
                f"cannot publish {type_name(type(event))} on an interface of type "
                f"{type_name(self.event_type)}"
            )

    # -------------------------------------------------------------- codec

    def encode(self, event: Any) -> bytes:
        """Serialise an event (registering its concrete type on the fly if needed)."""
        cls = type(event)
        if cls not in self._registered and isinstance(event, self.root):
            self.register(cls)
        return self.codec.encode(event)

    def decode(self, payload: bytes) -> Any:
        """Reconstruct a typed event from its serialised form."""
        return self.codec.decode(payload)

    @property
    def advertised_name(self) -> str:
        """The name under which this hierarchy is advertised (the root type's name)."""
        return type_name(self.root)

    @property
    def interface_name(self) -> str:
        """The name of the interface's own type (may be deeper than the root)."""
        return type_name(self.event_type)


class Criteria:
    """Filtering criteria passed to ``TPSEngine.new_interface`` (paper, 4.3.2).

    The paper's second ``newInterface`` parameter "specifies a criteria we
    want for filtering advertisements (may be null)".  The reproduction keeps
    that meaning -- :meth:`matches_advertisement` filters which discovered
    advertisements the engine attaches to -- and additionally supports
    content-based event filtering (:meth:`matches_event`), which the paper
    points out is easy to layer on TPS because subscribers receive typed,
    encapsulated objects.

    Parameters
    ----------
    name_contains:
        Only attach to advertisements whose name contains this substring.
    advertisement_predicate:
        Arbitrary predicate over the peer-group advertisement.
    event_predicate:
        Arbitrary predicate over decoded events; events failing it are
        silently dropped before reaching callbacks.

    Criteria filter at the *interface* level: an event they reject is not
    recorded in ``objects_received`` and reaches none of the interface's
    callbacks.  The v2 fluent builder
    (``tps.subscription(cb).where(pred).start()``) adds *per-subscription*
    predicates, pushed down into the dispatch rows: the event still counts as
    received by the interface, but filtered subscriptions never see it.
    """

    def __init__(
        self,
        *,
        name_contains: Optional[str] = None,
        advertisement_predicate: Optional[Callable[[Any], bool]] = None,
        event_predicate: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        self.name_contains = name_contains
        self.advertisement_predicate = advertisement_predicate
        self.event_predicate = event_predicate

    def matches_advertisement(self, advertisement: Any) -> bool:
        """Whether the engine should attach to ``advertisement``."""
        if self.name_contains is not None:
            name = getattr(advertisement, "name", "")
            if self.name_contains not in name:
                return False
        if self.advertisement_predicate is not None:
            return bool(self.advertisement_predicate(advertisement))
        return True

    def matches_event(self, event: Any) -> bool:
        """Whether a decoded event should be delivered to subscribers."""
        if self.event_predicate is None:
            return True
        return bool(self.event_predicate(event))


__all__ = [
    "Criteria",
    "TypeRegistry",
    "all_subtypes",
    "hierarchy_root",
    "type_name",
    "validate_event_type",
]
