"""Serialisation codecs used by the JXTA substrate and the TPS layer.

Two codecs are provided, mirroring the two representations in the paper's
system:

* :mod:`repro.serialization.xml_codec` -- a small XML document model with a
  writer and a scanning recursive-descent parser (regex tokenizer and bulk
  span jumps; the legacy character-at-a-time parser stays reachable via
  ``parse_xml(..., fast=False)``).  JXTA advertisements are XML documents,
  and JXTA messages carry XML elements.
* :mod:`repro.serialization.object_codec` -- a compact, deterministic binary
  codec for application-defined event objects, standing in for the Java
  object serialisation the paper relies on (``SkiRental implements
  Serializable``).  Types must be registered (explicitly or implicitly via
  the TPS type registry), which is what lets the subscriber reconstruct a
  *typed* event and what makes type safety checkable.
"""

from __future__ import annotations

from repro.serialization.object_codec import (
    ObjectCodec,
    SerializationError,
    UnregisteredTypeError,
)
from repro.serialization.xml_codec import (
    XmlElement,
    XmlParseError,
    escape_element_text,
    escape_text,
    parse_xml,
    to_xml,
    unescape_text,
)

__all__ = [
    "ObjectCodec",
    "SerializationError",
    "UnregisteredTypeError",
    "XmlElement",
    "XmlParseError",
    "escape_element_text",
    "escape_text",
    "parse_xml",
    "to_xml",
    "unescape_text",
]
