"""Figure 20 -- subscriber throughput.

Paper setting: the publishers flood the single subscriber (10 000 events per
publisher); the number of events the subscriber receives is sampled every
second for 50 seconds, with one and with four publishers.

Shape to reproduce:

* with one publisher the subscriber saturates well below the publisher's send
  rate (the paper quotes ~7.8 events/s for JXTA-WIRE, ~6.1 for SR-JXTA and
  ~6.0 for SR-TPS);
* SR-JXTA and SR-TPS stay nearly identical;
* with four publishers the per-second receive rate drops by roughly a factor
  of three and the layers converge.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import run_subscriber_throughput
from repro.bench.scenario import JXTA_WIRE, SR_JXTA, SR_TPS, VARIANTS

DURATION = 50.0


@pytest.mark.parametrize("publishers", [1, 4])
@pytest.mark.parametrize("variant", VARIANTS)
def test_subscriber_throughput(once, variant, publishers):
    """One curve of Figure 20: a 50-second flood for one configuration."""
    series = once(
        run_subscriber_throughput, variant, publishers=publishers, duration=DURATION
    )
    assert len(series.per_second) == int(DURATION)
    assert series.mean_rate > 0


def test_figure20_shape(once):
    """The saturation levels and ordering of Figure 20 hold."""

    def run_all():
        results = {}
        for publishers in (1, 4):
            for variant in VARIANTS:
                results[(variant, publishers)] = run_subscriber_throughput(
                    variant, publishers=publishers, duration=DURATION
                )
        return results

    results = once(run_all)

    wire_1 = results[(JXTA_WIRE, 1)].mean_rate
    jxta_1 = results[(SR_JXTA, 1)].mean_rate
    tps_1 = results[(SR_TPS, 1)].mean_rate
    wire_4 = results[(JXTA_WIRE, 4)].mean_rate
    tps_4 = results[(SR_TPS, 4)].mean_rate

    # One publisher: the wire saturates highest, the SR layers lower and close
    # to each other (paper: 7.8 vs 6.1 vs 6.0 events/s).
    assert 6.0 < wire_1 < 10.0
    assert 4.5 < jxta_1 < 7.5
    assert 4.5 < tps_1 < 7.5
    assert wire_1 > jxta_1
    assert wire_1 > tps_1
    assert abs(jxta_1 - tps_1) < 0.5
    # The subscriber saturates: it receives fewer events than the publisher
    # sends (JXTA-WIRE publishes ~9-10 events/s -- Figure 19).
    assert wire_1 < 9.0
    # Four publishers: the receive rate drops by roughly a factor of 2-3.5.
    assert 1.8 < wire_1 / wire_4 < 3.8
    assert 1.8 < tps_1 / tps_4 < 3.8
    # The receive-rate series is noisy, as in the paper.
    assert results[(JXTA_WIRE, 1)].stdev_rate > 0.5
