"""The membership layer: heartbeat failure detection and its composite wiring.

Three layers under test:

* :class:`~repro.net.membership.MembershipMonitor` alone -- the ALIVE ->
  SUSPECT -> DEAD state machine driven by simulated partitions and
  ``FaultPlan`` packet loss, plus recovery when the network heals (the
  detector keeps probing confirmed-dead peers; that asymmetry is the rejoin
  path);
* the wire-layer reactions -- :meth:`WireService.fail_target` failing
  pending reliable deliveries through the ``DeliveryFailure`` path and
  :meth:`PipeBindingService.forget_peer` dropping a dead peer from the
  binding tables;
* the ``SHARDED+JXTA`` binding's integration -- ``membership=True`` runs
  one detector per peer, publishes watch resolved peers, and a *confirmed*
  departure closes the wire leg: queued deliveries surface through the PR 6
  ``delivery_failure_handler`` instead of burning the whole retry ladder.
"""

from __future__ import annotations

from typing import Any, List, Tuple

import pytest

from repro.apps.skirental.types import SkiRental
from repro.core import TPSConfig, TPSEngine
from repro.core.exceptions import PSException
from repro.jxta.platform import JxtaNetworkBuilder
from repro.net.faults import FaultPlan, LinkFaults
from repro.net.membership import (
    ALIVE,
    DEAD,
    SUSPECT,
    MembershipConfig,
    MembershipMonitor,
)


def _network(*names: str, seed: int = 20020713):
    builder = JxtaNetworkBuilder(seed=seed)
    builder.add_rendezvous("rdv-0")
    peers = [builder.add_peer(name) for name in names]
    builder.settle(rounds=6)
    return builder, peers


def _fast() -> MembershipConfig:
    return MembershipConfig(
        heartbeat_interval=0.2, suspect_timeout=0.5, confirm_timeout=0.5
    )


class TestMembershipConfig:
    def test_defaults_validate(self):
        MembershipConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"heartbeat_interval": 0.0},
            {"heartbeat_interval": -1.0},
            {"heartbeat_interval": 2.0, "suspect_timeout": 2.0},
            {"confirm_timeout": 0.0},
        ],
    )
    def test_bad_timing_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MembershipConfig(**kwargs).validate()


class TestFailureDetector:
    def test_mutual_heartbeats_keep_both_alive(self):
        builder, (alice, bob) = _network("alice", "bob")
        a = MembershipMonitor(alice, _fast())
        b = MembershipMonitor(bob, _fast())
        a.watch(bob)
        builder.simulator.run_until(builder.simulator.now + 3.0)
        assert a.state_of(bob) == ALIVE
        # Mutual discovery: bob never called watch, yet monitors alice now.
        assert b.state_of(alice) == ALIVE
        assert alice.metrics.gauge("membership_alive").value == 1
        a.stop()
        b.stop()

    def test_partition_escalates_suspect_then_dead_then_recovers(self):
        builder, (alice, bob) = _network("alice", "bob")
        a = MembershipMonitor(alice, _fast())
        b = MembershipMonitor(bob, _fast())
        a.watch(bob)
        events: List[Tuple[str, str]] = []
        a.add_listener(lambda event, urn: events.append((event, urn)))
        builder.simulator.run_until(builder.simulator.now + 1.0)
        assert a.state_of(bob) == ALIVE
        # Cut bob off entirely (unicast can relay through the rendezvous, so
        # both links must go).
        builder.network.partition("bob", "alice")
        builder.network.partition("bob", "rdv-0")
        builder.simulator.run_until(builder.simulator.now + 0.7)
        assert a.state_of(bob) == SUSPECT
        builder.simulator.run_until(builder.simulator.now + 1.0)
        assert a.state_of(bob) == DEAD
        assert alice.metrics.counter("membership_confirmed_dead").value == 1
        # Heal: the detector kept probing, so bob comes back by itself.
        builder.network.heal("bob", "alice")
        builder.network.heal("bob", "rdv-0")
        builder.simulator.run_until(builder.simulator.now + 1.5)
        assert a.state_of(bob) == ALIVE
        bob_urn = bob.peer_id.to_urn()
        assert [event for event, urn in events if urn == bob_urn] == [
            "suspect",
            "confirm",
            "recover",
        ]
        a.stop()
        b.stop()

    def test_fault_plan_loss_gives_asymmetric_verdicts(self):
        # Drop everything *from* bob: alice convicts bob, bob still hears
        # alice -- suspicion is a verdict about communication, per direction.
        builder, (alice, bob) = _network("alice", "bob")
        a = MembershipMonitor(alice, _fast())
        b = MembershipMonitor(bob, _fast())
        a.watch(bob)
        builder.simulator.run_until(builder.simulator.now + 1.0)
        plan = FaultPlan()
        plan.set_link("bob", "alice", LinkFaults(drop=1.0))
        plan.set_link("bob", "rdv-0", LinkFaults(drop=1.0))
        builder.network.fault_plan = plan
        builder.simulator.run_until(builder.simulator.now + 2.5)
        assert a.state_of(bob) == DEAD
        assert b.state_of(alice) == ALIVE
        a.stop()
        b.stop()

    def test_watch_is_idempotent_and_skips_self(self):
        builder, (alice, bob) = _network("alice", "bob")
        a = MembershipMonitor(alice, _fast())
        a.watch(bob)
        a.watch(bob)
        a.watch(bob.peer_id)
        a.watch(alice)  # never watches itself
        assert list(a.members()) == [bob.peer_id.to_urn()]
        assert alice.metrics.counter("membership_joined").value == 1
        a.forget(bob)
        assert a.members() == {}
        a.stop()

    def test_listener_errors_are_contained(self):
        builder, (alice, bob) = _network("alice", "bob")
        a = MembershipMonitor(alice, _fast())

        def explode(event: str, urn: str) -> None:
            raise RuntimeError("listener boom")

        seen: List[str] = []
        a.add_listener(explode)
        a.add_listener(lambda event, urn: seen.append(event))
        a.watch(bob)
        assert seen == ["join"]
        assert alice.metrics.counter("membership_listener_errors").value == 1
        a.stop()

    def test_stop_is_idempotent(self):
        builder, (alice,) = _network("alice")
        a = MembershipMonitor(alice, _fast())
        a.stop()
        a.stop()
        sent = alice.metrics.counter("membership_heartbeats_sent").value
        builder.simulator.run_until(builder.simulator.now + 2.0)
        assert alice.metrics.counter("membership_heartbeats_sent").value == sent


MEMBERSHIP_PARAMS = dict(
    membership=True,
    heartbeat_interval=0.2,
    suspect_timeout=0.5,
    confirm_timeout=0.5,
)


def _composite_pair(builder, pub_peer, sub_peer, **extra):
    params = dict(MEMBERSHIP_PARAMS, **extra)
    pub_engine = TPSEngine(
        SkiRental,
        peer=pub_peer,
        config=TPSConfig(
            search_timeout=2.0, create_if_missing=True, reliable_delivery=True
        ),
    )
    publisher = pub_engine.new_interface("SHARDED+JXTA", **params)
    builder.settle(rounds=10)
    sub_engine = TPSEngine(
        SkiRental,
        peer=sub_peer,
        config=TPSConfig(
            search_timeout=6.0, create_if_missing=False, reliable_delivery=True
        ),
    )
    subscriber = sub_engine.new_interface("SHARDED+JXTA", **params)
    builder.settle(rounds=10)
    return pub_engine, publisher, sub_engine, subscriber


@pytest.mark.slow
class TestCompositeMembership:
    def test_departed_peer_reported_through_delivery_failure_handler(self):
        builder, (pub, sub) = _network("pub", "sub")
        pub_engine, publisher, sub_engine, subscriber = _composite_pair(
            builder, pub, sub
        )
        inbox: List[Any] = []
        subscriber.subscribe(inbox.append)
        builder.settle(rounds=10)
        publisher.publish(SkiRental("shop", 10.0, "Salomon", 7))
        builder.simulator.run_until(builder.simulator.now + 3.0)
        assert [e.shop for e in inbox] == ["shop"]
        # Publishing put the resolved subscriber under watch.
        monitor = publisher.membership
        assert monitor is not None
        assert monitor.state_of(sub.peer_id) == ALIVE

        failures: List[Any] = []
        publisher.wire.delivery_failure_handler = failures.append
        builder.network.partition("sub", "pub")
        builder.network.partition("sub", "rdv-0")
        publisher.publish(SkiRental("lost", 20.0, "Atomic", 5))
        builder.simulator.run_until(builder.simulator.now + 5.0)
        # Confirmed dead; the pending reliable delivery was failed through
        # the application handler instead of retrying forever.
        assert monitor.state_of(sub.peer_id) == DEAD
        assert len(failures) == 1
        assert pub.metrics.counter("wire_peer_departed").value >= 1
        # ... and the peer left the binding tables.
        assert pub.metrics.counter("pbp_bindings_forgotten").value >= 1

        # Rejoin: heal, recover, and delivery works again.
        builder.network.heal("sub", "pub")
        builder.network.heal("sub", "rdv-0")
        builder.simulator.run_until(builder.simulator.now + 3.0)
        assert monitor.state_of(sub.peer_id) == ALIVE
        publisher.publish(SkiRental("back", 40.0, "Volkl", 2))
        builder.simulator.run_until(builder.simulator.now + 3.0)
        assert [e.shop for e in inbox] == ["shop", "back"]
        pub_engine.close()
        sub_engine.close()

    def test_monitor_is_shared_per_peer_first_config_wins(self):
        builder, (pub, sub) = _network("pub", "sub")
        pub_engine, publisher, sub_engine, subscriber = _composite_pair(
            builder, pub, sub
        )
        second = TPSEngine(
            SkiRental,
            peer=pub,
            config=TPSConfig(search_timeout=2.0, create_if_missing=True),
        ).new_interface(
            "SHARDED+JXTA", membership=True, heartbeat_interval=9.0, suspect_timeout=99.0
        )
        # Same peer -> same monitor; the second engine's timing was ignored.
        assert second.membership is publisher.membership
        assert publisher.membership.config.heartbeat_interval == 0.2
        pub_engine.close()
        sub_engine.close()

    def test_membership_off_by_default(self):
        builder, (pub, sub) = _network("pub", "sub")
        engine = TPSEngine(
            SkiRental,
            peer=pub,
            config=TPSConfig(search_timeout=2.0, create_if_missing=True),
        )
        interface = engine.new_interface("SHARDED+JXTA")
        assert interface.membership is None
        engine.close()


class TestCompositeMembershipParams:
    def test_timing_without_membership_rejected(self):
        builder, (pub,) = _network("solo")
        engine = TPSEngine(
            SkiRental,
            peer=pub,
            config=TPSConfig(search_timeout=2.0, create_if_missing=True),
        )
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("SHARDED+JXTA", heartbeat_interval=0.3)
        assert "membership" in str(excinfo.value)

    def test_ill_typed_membership_params_name_the_key(self):
        builder, (pub,) = _network("solo")
        engine = TPSEngine(
            SkiRental,
            peer=pub,
            config=TPSConfig(search_timeout=2.0, create_if_missing=True),
        )
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("SHARDED+JXTA", membership="yes")
        assert "membership" in str(excinfo.value)
        with pytest.raises(PSException) as excinfo:
            engine.new_interface(
                "SHARDED+JXTA", membership=True, heartbeat_interval=-1.0
            )
        assert "heartbeat_interval" in str(excinfo.value)

    def test_inconsistent_timing_combo_rejected(self):
        builder, (pub,) = _network("solo")
        engine = TPSEngine(
            SkiRental,
            peer=pub,
            config=TPSConfig(search_timeout=2.0, create_if_missing=True),
        )
        with pytest.raises(PSException) as excinfo:
            engine.new_interface(
                "SHARDED+JXTA",
                membership=True,
                heartbeat_interval=2.0,
                suspect_timeout=1.0,
            )
        assert "suspect_timeout" in str(excinfo.value)
