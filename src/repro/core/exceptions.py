"""Exceptions of the TPS layer.

The paper's API methods "could throw a publish/subscribe exception
(PSException)" and typed callbacks may throw a ``CallBackException`` which is
routed to the subscription's exception handler rather than propagated to the
middleware.
"""

from __future__ import annotations


class PSException(RuntimeError):
    """Raised by the publish/subscribe operations of the TPS API.

    Typical causes: publishing an object that is not an instance of the
    interface's event type, using an interface before its initialisation
    phase completed, or subscribing with a malformed callback.
    """


class CallBackException(RuntimeError):
    """May be raised by application callbacks while handling an event.

    The TPS layer catches it (and any other exception raised by a callback)
    and hands it to the :class:`~repro.core.callbacks.TPSExceptionHandler`
    registered with the subscription, so one misbehaving subscriber cannot
    break event dispatch for the others.
    """


class NotInitializedError(PSException):
    """Raised when publishing before the initialisation phase completed.

    The TPS initialisation phase (searching for -- or creating -- the type's
    advertisement and looking up the wire service) happens asynchronously in
    virtual time; run the simulation (``network.settle()``) before publishing.
    """


class TypeMismatchError(PSException):
    """Raised when an object of the wrong type is published on a typed interface."""


__all__ = [
    "CallBackException",
    "NotInitializedError",
    "PSException",
    "TypeMismatchError",
]
