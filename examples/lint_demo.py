#!/usr/bin/env python3
"""Lint demo: the concurrency rules catching a buggy engine patch.

The snippet below is the kind of change the ``repro.analysis`` lint engine
exists to reject: it takes the subscriber manager's lock with a bare
``acquire()`` (RL001), calls the subscriber callback while still holding it
(RL002), mutates the ``_handlers`` snapshot in place (RL003), reads the
wall clock on a simulated path (RL004), and swallows callback errors with a
broad silent catch (RL005) -- five invariants, one plausible-looking diff.

The demo lints the snippet in memory (no file is written), prints each
finding with its ``file:line``, rule id and fix hint, then shows the fixed
version passing clean.  The same checks run over the real tree in tier-1
(``tests/test_lint_gate.py``) and on demand via::

    PYTHONPATH=src python -m repro lint --json src/repro

Run it with::

    python examples/lint_demo.py
"""

from __future__ import annotations

from repro.analysis import DEFAULT_PROFILE, LintEngine, count_by_rule

BUGGY_PATCH = '''\
import time

class Dispatcher:
    def subscribe(self, handler):
        self._lock.acquire()
        try:
            self._handlers.append(handler)
        finally:
            self._lock.release()

    def dispatch(self, event):
        with self._lock:
            for handler in self._handlers:
                try:
                    handler.callback.handle(event)
                except Exception:
                    pass
        self.last_dispatch = time.monotonic()
'''

FIXED_PATCH = '''\
class Dispatcher:
    def __init__(self, clock):
        self._clock = clock  # injected: the simclock on simulated paths

    def subscribe(self, handler):
        with self._lock:
            self._handlers = self._handlers + (handler,)

    def dispatch(self, event):
        for handler in self._handlers:  # lock-free snapshot read
            try:
                handler.callback.handle(event)
            except Exception as error:
                handler.exception_handler.handle(error)
        self.last_dispatch = self._clock()
'''


def main() -> None:
    engine = LintEngine(DEFAULT_PROFILE)

    print("linting the buggy patch (as if it were repro/core/dispatcher.py):\n")
    run = engine.lint_source(
        BUGGY_PATCH, path="repro/core/dispatcher.py", module="repro.core.dispatcher"
    )
    for finding in run.findings:
        print(finding.format())
    counts = count_by_rule(run.findings)
    print(f"\ncaught {len(run.findings)} violation(s): "
          + ", ".join(f"{rule} x{count}" for rule, count in counts.items()))
    print(f"distinct rules fired: {len(counts)} of {len(engine.rule_ids)}")

    print("\nlinting the idiomatic fix:\n")
    fixed = engine.lint_source(
        FIXED_PATCH, path="repro/core/dispatcher.py", module="repro.core.dispatcher"
    )
    print(f"findings on the fixed version: {len(fixed.findings)}")


if __name__ == "__main__":
    main()
