"""Tests for the endpoint service: unicast, propagation, relaying (ERP)."""

from __future__ import annotations

import pytest

from repro.jxta.endpoint import EndpointEnvelope
from repro.jxta.message import Message
from repro.net.firewall import Firewall
from repro.net.network import LinkSpec
from repro.net.transport import TransportKind


def _message(text="payload"):
    message = Message()
    message.add("body", text)
    return message


def _register(peer, service="test.service", param=""):
    received = []
    peer.endpoint.register_listener(
        service, param, lambda envelope, message: received.append((envelope, message))
    )
    return received


class TestEnvelope:
    def test_round_trip(self):
        envelope = EndpointEnvelope(
            src_peer="urn:src",
            src_address="host-a",
            dst_peer="urn:dst",
            service="svc",
            param="p",
            envelope_id="id-1",
            ttl=3,
            propagate=False,
            hops=["urn:relay"],
            body=_message().to_bytes(),
        )
        restored = EndpointEnvelope.from_bytes(envelope.to_bytes())
        assert restored.src_peer == "urn:src"
        assert restored.dst_peer == "urn:dst"
        assert restored.hops == ["urn:relay"]
        assert restored.message().get_text("body") == "payload"


class TestUnicast:
    def test_direct_send_and_dispatch(self, two_peers):
        alpha, beta, builder = two_peers
        received = _register(beta)
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        assert alpha.endpoint.send(beta.peer_id, _message("hi"), "test.service")
        builder.settle(rounds=2)
        assert len(received) == 1
        envelope, message = received[0]
        assert message.get_text("body") == "hi"
        assert envelope.source_peer_id == alpha.peer_id

    def test_loopback_send(self, two_peers):
        alpha, _beta, builder = two_peers
        received = _register(alpha)
        assert alpha.endpoint.send(alpha.peer_id, _message("self"), "test.service")
        assert len(received) == 1  # loopback delivery is synchronous

    def test_listener_param_specificity(self, two_peers):
        alpha, beta, builder = two_peers
        specific = []
        fallback = []
        beta.endpoint.register_listener("svc", "pipe-1", lambda e, m: specific.append(m))
        beta.endpoint.register_listener("svc", "", lambda e, m: fallback.append(m))
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        alpha.endpoint.send(beta.peer_id, _message(), "svc", "pipe-1")
        alpha.endpoint.send(beta.peer_id, _message(), "svc", "pipe-other")
        builder.settle(rounds=2)
        assert len(specific) == 1
        assert len(fallback) == 1

    def test_unknown_destination_without_router_fails(self, two_peers):
        alpha, beta, _builder = two_peers
        # alpha never learned beta's address and there is no router to ask.
        alpha.endpoint.forget_address(beta.peer_id)
        assert not alpha.endpoint.send(beta.peer_id, _message(), "svc")
        assert alpha.metrics.counters().get("endpoint_no_route", 0) == 1

    def test_unhandled_service_is_counted(self, two_peers):
        alpha, beta, builder = two_peers
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        alpha.endpoint.send(beta.peer_id, _message(), "nobody.listens")
        builder.settle(rounds=2)
        assert beta.metrics.counters().get("endpoint_unhandled", 0) >= 1

    def test_listener_exception_does_not_break_endpoint(self, two_peers):
        alpha, beta, builder = two_peers

        def bad_listener(envelope, message):
            raise RuntimeError("boom")

        beta.endpoint.register_listener("svc", "", bad_listener)
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        alpha.endpoint.send(beta.peer_id, _message(), "svc")
        builder.settle(rounds=2)
        assert beta.metrics.counters().get("endpoint_listener_errors", 0) == 1

    def test_address_learned_from_traffic(self, two_peers):
        alpha, beta, builder = two_peers
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        _register(beta)
        alpha.endpoint.send(beta.peer_id, _message(), "svc")
        builder.settle(rounds=2)
        # beta learned alpha's address just from receiving the envelope.
        assert beta.endpoint.known_address(alpha.peer_id) == alpha.node.address

    def test_send_to_address_without_peer_id(self, two_peers):
        alpha, beta, builder = two_peers
        received = _register(beta, "svc")
        assert alpha.endpoint.send_to_address(beta.node.address, _message("x"), "svc")
        builder.settle(rounds=2)
        assert len(received) == 1


class TestPropagation:
    def test_propagate_reaches_all_lan_peers(self, builder):
        peers = [builder.add_peer(f"p{i}", connect_rendezvous=False) for i in range(4)]
        builder.settle(rounds=2)
        inboxes = [_register(peer, "svc") for peer in peers]
        peers[0].endpoint.propagate(_message("flood"), "svc")
        builder.settle(rounds=2)
        assert len(inboxes[0]) == 0  # no self-delivery of the multicast echo
        assert all(len(inbox) == 1 for inbox in inboxes[1:])

    def test_propagate_duplicates_suppressed(self, lan):
        builder = lan
        target = builder.peer_named("peer-1")
        source = builder.peer_named("peer-0")
        inbox = _register(target, "svc")
        source.endpoint.propagate(_message("once"), "svc")
        builder.settle(rounds=3)
        # The envelope arrives over multicast AND re-propagated by the
        # rendez-vous, but is delivered exactly once.
        assert len(inbox) == 1
        assert target.metrics.counters().get("endpoint_duplicate_suppressed", 0) >= 1

    def test_propagation_crosses_segments_through_rendezvous(self, builder):
        rendezvous = builder.add_rendezvous("rdv-0")
        near = builder.add_peer("near")
        far = builder.add_peer("far", segment="lan1", connect_rendezvous=False)
        builder.connect_segments("far", "rdv-0", LinkSpec.lan())
        far.world_group.rendezvous.connect("rdv-0")
        builder.settle(rounds=4)
        inbox = _register(far, "svc")
        near.endpoint.propagate(_message("cross"), "svc")
        builder.settle(rounds=4)
        assert len(inbox) == 1


class TestRouting:
    def test_relay_through_router_when_no_direct_route(self, builder):
        rendezvous = builder.add_rendezvous("rdv-0")
        alpha = builder.add_peer("alpha")
        # beta lives on another segment, reachable only through the rendez-vous.
        beta = builder.add_peer("beta", segment="lan1", connect_rendezvous=False)
        builder.connect_segments("beta", "rdv-0", LinkSpec.lan())
        beta.world_group.rendezvous.connect("rdv-0")
        builder.settle(rounds=4)
        inbox = _register(beta, "svc")
        # alpha knows beta's peer ID and address but has no direct link to lan1.
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        assert alpha.endpoint.send(beta.peer_id, _message("via router"), "svc")
        builder.settle(rounds=4)
        assert len(inbox) == 1
        assert rendezvous.metrics.counters().get("endpoint_forwarded", 0) >= 1

    def test_firewalled_peer_reached_over_http(self, builder):
        alpha = builder.add_peer("alpha", connect_rendezvous=False)
        guarded = builder.add_peer(
            "guarded",
            connect_rendezvous=False,
            firewall=Firewall.corporate_default(),
        )
        builder.settle(rounds=2)
        inbox = _register(guarded, "svc")
        alpha.endpoint.learn_address(guarded.peer_id, guarded.node.address)
        # Inbound TCP is blocked; the endpoint must fall back to HTTP.
        assert alpha.endpoint.send(guarded.peer_id, _message("http"), "svc")
        builder.settle(rounds=2)
        assert len(inbox) == 1

    def test_ttl_expiry_stops_relaying(self, two_peers):
        alpha, beta, builder = two_peers
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        assert not alpha.endpoint.send(beta.peer_id, _message(), "svc", ttl=0) or True
        # A ttl=0 envelope can still be sent directly; relaying is what needs
        # budget.  Force the relay path by forgetting the address:
        alpha.endpoint.forget_address(beta.peer_id)
        assert not alpha.endpoint.send(beta.peer_id, _message(), "svc", ttl=0)
