"""A JXTA-like peer-to-peer substrate, built from scratch.

The paper layers TPS on top of Sun's JXTA 1.0, "an analogous to the sockets
for P2P infrastructures".  This package reimplements the JXTA machinery the
paper relies on:

Concepts (Section 2.1 of the paper)
    :mod:`repro.jxta.ids` (IDs), :mod:`repro.jxta.peer` (peers, rendez-vous
    and router peers), :mod:`repro.jxta.pipes` (pipes),
    :mod:`repro.jxta.peergroup` (peer groups),
    :mod:`repro.jxta.advertisement` (advertisements) and
    :mod:`repro.jxta.message` (messages).

Protocols (Section 2.2)
    * Peer Discovery Protocol (PDP) -- :mod:`repro.jxta.discovery`
    * Peer Resolver Protocol (PRP) -- :mod:`repro.jxta.resolver`
    * Peer Information Protocol (PIP) -- :mod:`repro.jxta.peerinfo`
    * Peer Membership Protocol (PMP) -- :mod:`repro.jxta.membership`
    * Pipe Binding Protocol (PBP) -- :mod:`repro.jxta.pipe_binding`
    * Endpoint Routing Protocol (ERP) -- :mod:`repro.jxta.routing`

Services (Section 2 "service layer")
    * the many-to-many WIRE service -- :mod:`repro.jxta.wire`
    * the monitoring service -- :mod:`repro.jxta.monitoring`
    * a small content-management (cms-like) service -- :mod:`repro.jxta.cms`

:mod:`repro.jxta.platform` bootstraps a peer (endpoint, world peer group and
all standard services) on top of a :class:`repro.net.Node`.
"""

from __future__ import annotations

from repro.jxta.bidipipe import BidirectionalPipe, BidirectionalPipeListener
from repro.jxta.advertisement import (
    Advertisement,
    AdvertisementFactory,
    ModuleAdvertisement,
    PeerAdvertisement,
    PeerGroupAdvertisement,
    PipeAdvertisement,
    ServiceAdvertisement,
)
from repro.jxta.errors import (
    JxtaError,
    MembershipError,
    PipeError,
    ResolverError,
    ServiceNotFoundError,
)
from repro.jxta.ids import CodatID, JxtaID, ModuleID, PeerGroupID, PeerID, PipeID
from repro.jxta.message import Message, MessageElement
from repro.jxta.peer import Peer, PeerConfig
from repro.jxta.peergroup import PeerGroup
from repro.jxta.pipes import InputPipe, OutputPipe, PipeKind
from repro.jxta.platform import JxtaNetworkBuilder, create_peer
from repro.jxta.wire import WireService

__all__ = [
    "Advertisement",
    "AdvertisementFactory",
    "BidirectionalPipe",
    "BidirectionalPipeListener",
    "CodatID",
    "InputPipe",
    "JxtaError",
    "JxtaID",
    "JxtaNetworkBuilder",
    "MembershipError",
    "Message",
    "MessageElement",
    "ModuleAdvertisement",
    "ModuleID",
    "OutputPipe",
    "Peer",
    "PeerAdvertisement",
    "PeerConfig",
    "PeerGroup",
    "PeerGroupAdvertisement",
    "PeerGroupID",
    "PeerID",
    "PipeAdvertisement",
    "PipeError",
    "PipeID",
    "PipeKind",
    "ResolverError",
    "ServiceAdvertisement",
    "ServiceNotFoundError",
    "WireService",
    "create_peer",
]
