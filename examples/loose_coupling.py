#!/usr/bin/env python3
"""The paper's future work, in action: loose type knowledge and replies.

Two extensions round off the reproduction, both taken from the paper's
concluding remarks:

1. *"Representing types through XML data structures"* -- a publisher
   serialises its events with :class:`XmlEventCodec`; a peer that does NOT
   have the event class can still decode the payload into a
   :class:`DynamicEvent`, inspect its fields and check where it sits in the
   type hierarchy.
2. *"Enable a subscriber to immediately reply to a publisher"* -- the shop
   attaches a :class:`ReplyEndpoint` to its offers; an interested shopper
   calls :func:`reply` and the response travels back over a point-to-point
   pipe, outside the decoupled publish/subscribe flow.

Run it with::

    python examples/loose_coupling.py
"""

from __future__ import annotations

from repro import tps_network
from repro.apps.skirental import SkiRental
from repro.core import (
    DynamicEvent,
    ReplyEndpoint,
    Replyable,
    TPSConfig,
    TPSEngine,
    XmlEventCodec,
    reply,
)


class NegotiableSkiRental(SkiRental, Replyable):
    """A ski-rental offer the shop is willing to negotiate on."""


def xml_type_demo() -> None:
    print("=== 1. XML type descriptions: decoding without sharing code ===")
    offer = SkiRental("XTremShop", 120.0, "Salomon", 14.0)
    payload = XmlEventCodec().encode(offer)
    print(f"publisher encoded {type(offer).__name__} as {len(payload)} bytes of XML")

    # The receiving side registered nothing: it gets a DynamicEvent.
    stranger_view = XmlEventCodec().decode(payload)
    assert isinstance(stranger_view, DynamicEvent)
    print(f"peer without the class sees : {stranger_view!r}")
    print(f"  brand field               : {stranger_view.brand}")
    print(f"  is it a RentalOffer?      : {stranger_view.conforms_to('RentalOffer')}")
    print(f"  is it a SnowboardRental?  : {stranger_view.conforms_to('SnowboardRental')}")

    # A peer that does know the class gets a real typed instance back.
    knowing = XmlEventCodec()
    knowing.register(SkiRental)
    typed = knowing.decode(payload)
    print(f"peer with the class sees    : {typed} (type {type(typed).__name__})")
    print()


def reply_demo() -> None:
    print("=== 2. Replying to a publisher ===")
    net = tps_network(peers=2, seed=77)
    shop_peer, shopper_peer = net.peer(0), net.peer(1)

    publisher = TPSEngine(
        NegotiableSkiRental, peer=shop_peer, config=TPSConfig(search_timeout=2.0)
    ).new_interface("JXTA")
    net.settle(rounds=8)
    subscriber = TPSEngine(
        NegotiableSkiRental,
        peer=shopper_peer,
        config=TPSConfig(search_timeout=6.0, create_if_missing=False),
    ).new_interface("JXTA")
    offers = []
    subscriber.subscribe(offers.append)
    net.settle()

    reply_endpoint = ReplyEndpoint(shop_peer)
    net.settle(rounds=4)
    offer = reply_endpoint.attach(NegotiableSkiRental("XTremShop", 80.0, "Salomon", 7.0))
    publisher.publish(offer)
    net.settle()

    received = offers[0]
    print(f"shopper received: {received}")
    reply(shopper_peer, received, {"interested": True, "counter_offer": 70.0})
    net.settle()

    for response in reply_endpoint.replies:
        print(
            f"shop received a reply from {response.responder!r}: "
            f"counter-offer {response.body['counter_offer']:.2f}"
        )


def main() -> None:
    xml_type_demo()
    reply_demo()


if __name__ == "__main__":
    main()
