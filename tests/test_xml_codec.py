"""Tests for the XML codec (repro.serialization.xml_codec)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.serialization.xml_codec import (
    XmlElement,
    XmlParseError,
    escape_text,
    parse_xml,
    to_xml,
    unescape_text,
)


class TestEscaping:
    def test_escape_round_trip(self):
        text = 'a < b & c > "d" \'e\''
        assert unescape_text(escape_text(text)) == text

    def test_numeric_entities(self):
        assert unescape_text("&#65;&#x42;") == "AB"

    def test_unknown_entity_raises(self):
        with pytest.raises(XmlParseError):
            unescape_text("&bogus;")

    def test_unterminated_entity_raises(self):
        with pytest.raises(XmlParseError):
            unescape_text("&amp")


class TestXmlElement:
    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            XmlElement("bad name")
        with pytest.raises(ValueError):
            XmlElement("")

    def test_add_builds_children_with_attributes(self):
        root = XmlElement("Root")
        child = root.add("Child", "text", kind="demo")
        assert child.name == "Child"
        assert root.find("Child") is child
        assert root.find("Child").attributes == {"kind": "demo"}

    def test_find_and_find_all(self):
        root = XmlElement("Root")
        root.add("Item", "1")
        root.add("Item", "2")
        root.add("Other", "3")
        assert root.find("Item").text == "1"
        assert [c.text for c in root.find_all("Item")] == ["1", "2"]
        assert root.find("Missing") is None

    def test_child_text_default(self):
        root = XmlElement("Root")
        root.add("Name", "value")
        assert root.child_text("Name") == "value"
        assert root.child_text("Missing", "fallback") == "fallback"

    def test_iter_walks_depth_first(self):
        root = XmlElement("a")
        b = root.add("b")
        b.add("c")
        root.add("d")
        assert [e.name for e in root.iter()] == ["a", "b", "c", "d"]

    def test_equality(self):
        a = XmlElement("x", attributes={"k": "v"}, text="t")
        b = XmlElement("x", attributes={"k": "v"}, text="t")
        assert a == b
        b.add("child")
        assert a != b


class TestRoundTrip:
    def test_simple_document(self):
        root = XmlElement("Adv", attributes={"type": "jxta:PA"})
        root.add("Name", "peer-0")
        root.add("Nested").add("Deep", "inner text")
        document = to_xml(root)
        parsed = parse_xml(document)
        assert parsed == root

    def test_declaration_optional(self):
        root = XmlElement("A")
        assert to_xml(root).startswith("<?xml")
        assert to_xml(root, declaration=False) == "<A/>"

    def test_special_characters_survive(self):
        root = XmlElement("Doc")
        root.add("Body", "<embedded> & 'quoted' \"text\"")
        root.set_attribute("attr", "a<b&c")
        parsed = parse_xml(to_xml(root))
        assert parsed.child_text("Body") == "<embedded> & 'quoted' \"text\""
        assert parsed.attributes["attr"] == "a<b&c"

    def test_nested_document_as_text(self):
        # Discovery responses embed whole advertisement documents as text.
        inner = to_xml(XmlElement("Inner", attributes={"x": "1"}))
        outer = XmlElement("Outer")
        outer.add("Adv", inner)
        parsed = parse_xml(to_xml(outer))
        assert parse_xml(parsed.child_text("Adv")).name == "Inner"

    def test_pretty_printing_parses_back(self):
        root = XmlElement("Root")
        root.add("A", "1")
        root.add("B").add("C", "2")
        pretty = root.to_string(indent=2)
        assert "\n" in pretty
        assert parse_xml(pretty) is not None

    def test_comments_and_pi_are_skipped(self):
        document = (
            '<?xml version="1.0"?><!-- a comment --><Root><!-- inner -->'
            "<Child>x</Child></Root>"
        )
        parsed = parse_xml(document)
        assert parsed.child_text("Child") == "x"


class TestParseErrors:
    @pytest.mark.parametrize(
        "document",
        [
            "<Root>",                      # unterminated element
            "<Root></Other>",              # mismatched closing tag
            "<Root attr=value/>",          # unquoted attribute
            "<Root/><Extra/>",             # trailing content
            "<Root attr='x/>",             # unterminated attribute value
            "<1abc/>",                     # invalid name start... parsed as name error
            "plain text",                  # no element at all
        ],
    )
    def test_malformed_documents_raise(self, document):
        with pytest.raises(XmlParseError):
            parse_xml(document)

    def test_error_carries_position(self):
        try:
            parse_xml("<Root></Wrong>")
        except XmlParseError as error:
            assert error.position > 0
        else:  # pragma: no cover
            pytest.fail("expected XmlParseError")


# ----------------------------------------------------------------- property


_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=40
)
_names = st.from_regex(r"[A-Za-z][A-Za-z0-9._-]{0,10}", fullmatch=True)


@st.composite
def xml_elements(draw, depth=2):
    element = XmlElement(draw(_names))
    # Boundary whitespace is entity-encoded by the writer, so arbitrary
    # (unstripped) text round-trips.
    element.text = draw(_text)
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        key = draw(_names)
        element.attributes[key] = draw(_text)
    if depth > 0:
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            element.children.append(draw(xml_elements(depth=depth - 1)))
    return element


@settings(max_examples=60, deadline=None)
@given(element=xml_elements())
def test_property_xml_round_trip(element):
    """Any element tree the writer can produce, the parser reads back identically."""
    parsed = parse_xml(to_xml(element))
    assert parsed == element


@settings(max_examples=100, deadline=None)
@given(text=_text)
def test_property_escaping_round_trip(text):
    assert unescape_text(escape_text(text)) == text
