"""Exception hierarchy of the JXTA substrate."""

from __future__ import annotations


class JxtaError(RuntimeError):
    """Base class for every error raised by the JXTA substrate."""


class ServiceNotFoundError(JxtaError):
    """Raised when a peer group does not host the requested service."""


class ResolverError(JxtaError):
    """Raised by the Peer Resolver Protocol (unknown handler, undeliverable query...)."""


class PipeError(JxtaError):
    """Raised when a pipe cannot be created, bound or used."""


class MembershipError(JxtaError):
    """Raised by the Peer Membership Protocol (bad credentials, not a member...)."""


class RoutingError(JxtaError):
    """Raised by the Endpoint Routing Protocol when no route can be found."""


class AdvertisementError(JxtaError):
    """Raised when an advertisement is malformed or of an unknown type."""


__all__ = [
    "AdvertisementError",
    "JxtaError",
    "MembershipError",
    "PipeError",
    "ResolverError",
    "RoutingError",
    "ServiceNotFoundError",
]
