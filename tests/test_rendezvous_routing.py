"""Tests for the rendez-vous service (leases) and the ERP route inspection."""

from __future__ import annotations

import pytest

from repro.jxta.rendezvous import DEFAULT_LEASE_DURATION
from repro.net.firewall import Firewall
from repro.net.network import LinkSpec
from repro.net.transport import TransportKind


class TestRendezvousLeases:
    def test_lease_request_and_grant(self, builder):
        rendezvous = builder.add_rendezvous("rdv-0")
        client = builder.add_peer("client", connect_rendezvous=False)
        client.world_group.rendezvous.connect("rdv-0")
        builder.settle(rounds=2)
        held = client.world_group.rendezvous.held_leases()
        granted = rendezvous.world_group.rendezvous.granted_leases()
        assert client.world_group.rendezvous.is_connected()
        assert list(held) == [rendezvous.peer_id.to_urn()]
        assert list(granted) == [client.peer_id.to_urn()]
        assert held[rendezvous.peer_id.to_urn()].expires_at == pytest.approx(
            held[rendezvous.peer_id.to_urn()].granted_at + DEFAULT_LEASE_DURATION, rel=0.1
        )
        # The endpoint books reflect the connection on both sides.
        assert rendezvous.node.address in client.endpoint.rendezvous_connections().values()
        assert client.node.address in rendezvous.endpoint.client_connections().values()

    def test_non_rendezvous_peer_refuses_leases(self, builder):
        plain = builder.add_peer("plain", connect_rendezvous=False)
        client = builder.add_peer("client", connect_rendezvous=False)
        client.world_group.rendezvous.connect("plain")
        builder.settle(rounds=2)
        assert not client.world_group.rendezvous.is_connected()
        assert plain.metrics.counters().get("rendezvous_requests_refused", 0) == 1

    def test_builder_connects_new_peers_automatically(self, lan):
        builder = lan
        rendezvous = builder.peer_named("rdv-0")
        assert len(rendezvous.world_group.rendezvous.granted_leases()) == 3

    def test_disconnect_cancels_lease(self, builder):
        rendezvous = builder.add_rendezvous("rdv-0")
        client = builder.add_peer("client")
        builder.settle(rounds=2)
        client.world_group.rendezvous.disconnect(rendezvous.peer_id)
        builder.settle(rounds=2)
        assert not client.world_group.rendezvous.is_connected()
        assert rendezvous.world_group.rendezvous.granted_leases() == {}
        assert client.endpoint.rendezvous_connections() == {}

    def test_lease_expiry(self, builder):
        rendezvous = builder.add_rendezvous("rdv-0")
        client = builder.add_peer("client")
        builder.settle(rounds=2)
        builder.simulator.run_until(builder.simulator.now + DEFAULT_LEASE_DURATION + 10)
        assert rendezvous.world_group.rendezvous.expire_leases() == 1
        assert rendezvous.world_group.rendezvous.granted_leases() == {}

    def test_lease_renewal_keeps_connection_alive(self, builder):
        rendezvous = builder.add_rendezvous("rdv-0")
        client = builder.add_peer("client")
        builder.settle(rounds=2)
        client.world_group.rendezvous.start_lease_renewal(interval=DEFAULT_LEASE_DURATION / 3)
        builder.simulator.run_until(builder.simulator.now + DEFAULT_LEASE_DURATION + 20)
        # The grant has been refreshed by renewals, so nothing expires.
        assert rendezvous.world_group.rendezvous.expire_leases() == 0
        client.world_group.rendezvous.stop_lease_renewal()


class TestRouting:
    def test_direct_route_prefers_tcp(self, two_peers):
        alpha, beta, _builder = two_peers
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        route = alpha.world_group.router.find_route(beta.peer_id)
        assert route.direct
        assert route.transport == TransportKind.TCP
        assert route.hop_count == 0
        assert route.reachable

    def test_route_to_firewalled_peer_uses_http(self, builder):
        alpha = builder.add_peer("alpha", connect_rendezvous=False)
        guarded = builder.add_peer(
            "guarded", connect_rendezvous=False, firewall=Firewall.corporate_default()
        )
        builder.settle(rounds=2)
        alpha.endpoint.learn_address(guarded.peer_id, guarded.node.address)
        route = alpha.world_group.router.find_route(guarded.peer_id)
        assert route.direct
        assert route.transport == TransportKind.HTTP

    def test_relayed_route_through_rendezvous(self, builder):
        rendezvous = builder.add_rendezvous("rdv-0")
        alpha = builder.add_peer("alpha")
        beta = builder.add_peer("beta", segment="lan1", connect_rendezvous=False)
        builder.connect_segments("beta", "rdv-0", LinkSpec.lan())
        beta.world_group.rendezvous.connect("rdv-0")
        builder.settle(rounds=4)
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        route = alpha.world_group.router.find_route(beta.peer_id)
        assert not route.direct
        assert route.hops == [rendezvous.node.address]
        assert route.reachable
        assert alpha.world_group.router.can_reach(beta.peer_id)

    def test_unknown_peer_is_unreachable(self, two_peers):
        alpha, beta, _builder = two_peers
        alpha.endpoint.forget_address(beta.peer_id)
        route = alpha.world_group.router.find_route(beta.peer_id)
        assert not route.reachable

    def test_partitioned_peers_without_relay_unreachable(self, two_peers):
        alpha, beta, builder = two_peers
        alpha.endpoint.learn_address(beta.peer_id, beta.node.address)
        builder.network.partition(alpha.node.address, beta.node.address)
        route = alpha.world_group.router.find_route(beta.peer_id)
        assert not route.reachable
