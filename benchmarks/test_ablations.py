"""Ablation benches for the design choices called out in DESIGN.md (Section 5).

Each ablation flips one mechanism and measures its effect on the headline
quantities, documenting *why* the system is built the way it is:

* wire-level duplicate suppression on/off (the real JXTA-WIRE leaves it to the
  application; the SR layers add it);
* application-level duplicate filtering on/off when two advertisements exist
  for the same type;
* subtype-hierarchy matching vs. publishing the exact type only;
* substrate speed scaling (does the SR-TPS vs SR-JXTA gap stay ~1 % on faster
  hardware?);
* rendez-vous-mediated discovery vs. multicast-only discovery.
"""

from __future__ import annotations

import pytest

from repro.apps.skirental.types import PremiumSkiRental, SkiRental
from repro.bench.figures import run_invocation_time
from repro.bench.scenario import SR_JXTA, SR_TPS
from repro.core import TPSConfig, TPSEngine
from repro.jxta.platform import JxtaNetworkBuilder
from repro.net.cost import PAPER_TESTBED


def _tps_pair(builder, *, duplicate_filtering=True, padding=1910):
    """A publisher/subscriber TPS pair where *both* sides create advertisements.

    Starting both engines simultaneously makes each create its own
    advertisement for the type, so every event is published on two pipes and
    duplicates reach the subscriber -- the situation the application-level
    duplicate filter exists for.
    """
    pub_peer = builder.add_peer("ablation-pub")
    sub_peer = builder.add_peer("ablation-sub")
    config = TPSConfig(
        search_timeout=2.0, message_padding=padding, duplicate_filtering=duplicate_filtering
    )
    publisher = TPSEngine(SkiRental, peer=pub_peer, config=config).new_interface("JXTA")
    subscriber = TPSEngine(SkiRental, peer=sub_peer, config=config).new_interface("JXTA")
    received = []
    subscriber.subscribe(received.append)
    builder.settle(rounds=24)
    return publisher, subscriber, received


def test_ablation_duplicate_filtering(once):
    """Without app-level duplicate filtering, multi-advertisement delivery duplicates events."""

    def run(filtering: bool) -> int:
        builder = JxtaNetworkBuilder(seed=31)
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, received = _tps_pair(builder, duplicate_filtering=filtering)
        for index in range(5):
            receipt = publisher.publish(SkiRental("shop", 50.0 + index, "Salomon", 7))
            builder.simulator.run_until(
                max(builder.simulator.now, receipt.completion_time)
            )
        builder.settle(rounds=16)
        return len(received)

    def run_both():
        return run(True), run(False)

    with_filter, without_filter = once(run_both)
    assert with_filter == 5
    # Both engines created an advertisement, so unfiltered delivery sees each
    # event roughly twice.
    assert without_filter > with_filter


def test_ablation_subtype_vs_exact_matching(once):
    """Hierarchy-based delivery: a SkiRental subscriber sees premium offers too."""

    def run() -> tuple[int, int]:
        builder = JxtaNetworkBuilder(seed=32)
        builder.add_rendezvous("rdv-0")
        pub_peer = builder.add_peer("pub")
        ski_peer = builder.add_peer("sub-ski")
        premium_peer = builder.add_peer("sub-premium")
        config = TPSConfig(search_timeout=2.0)
        publisher = TPSEngine(SkiRental, peer=pub_peer, config=config).new_interface("JXTA")
        builder.settle(rounds=8)
        sub_config = TPSConfig(search_timeout=6.0, create_if_missing=False)
        ski_sub = TPSEngine(SkiRental, peer=ski_peer, config=sub_config).new_interface("JXTA")
        premium_sub = TPSEngine(
            PremiumSkiRental, peer=premium_peer, config=sub_config
        ).new_interface("JXTA")
        ski_received, premium_received = [], []
        ski_sub.subscribe(ski_received.append)
        premium_sub.subscribe(premium_received.append)
        builder.settle(rounds=16)
        events = [
            SkiRental("shop", 60.0, "Head", 7),
            PremiumSkiRental("shop", 160.0, "Atomic", 7, extras=("boots",)),
        ]
        for event in events:
            receipt = publisher.publish(event)
            builder.simulator.run_until(
                max(builder.simulator.now, receipt.completion_time)
            )
        builder.settle(rounds=16)
        return len(ski_received), len(premium_received)

    ski_count, premium_count = once(run)
    # The SkiRental subscriber receives both (Figure 7: type + subtypes);
    # the PremiumSkiRental subscriber only receives the premium offer.
    assert ski_count == 2
    assert premium_count == 1


@pytest.mark.parametrize("speedup", [1.0, 4.0])
def test_ablation_substrate_speed(once, speedup):
    """The SR-TPS vs SR-JXTA ordering survives a faster substrate.

    Scaling every substrate CPU cost down by ``speedup`` models running the
    same JXTA stack on faster hardware: everything gets proportionally
    quicker, and the layered variants remain within a few percent of each
    other, which is the paper's argument that the TPS abstraction's overhead
    is negligible rather than testbed-specific.
    """
    from repro.bench.scenario import ScenarioConfig, build_scenario

    def run():
        cost_model = PAPER_TESTBED.scaled(1.0 / speedup)
        means = {}
        for variant in (SR_TPS, SR_JXTA):
            scenario = build_scenario(
                ScenarioConfig(
                    variant=variant, publishers=1, subscribers=1, seed=5, cost_model=cost_model
                )
            )
            publisher = scenario.publishers[0]
            samples = []
            for _ in range(20):
                receipt = publisher.publish()
                samples.append(receipt.cpu_time * 1000.0)
                scenario.run_until(max(scenario.now, receipt.completion_time))
            means[variant] = sum(samples) / len(samples)
        return means

    means = once(run)
    tps_ms, jxta_ms = means[SR_TPS], means[SR_JXTA]
    assert abs(tps_ms - jxta_ms) / jxta_ms < 0.08
    if speedup > 1.0:
        # Sanity: the scaled substrate really is faster than the paper's.
        assert tps_ms < 80.0


def test_ablation_multicast_only_discovery(once):
    """On a single LAN segment, discovery works without any rendez-vous peer."""

    def run() -> int:
        builder = JxtaNetworkBuilder(seed=33)
        # No rendez-vous at all: peers rely on IP multicast for discovery.
        pub_peer = builder.add_peer("pub", connect_rendezvous=False)
        sub_peer = builder.add_peer("sub", connect_rendezvous=False)
        config = TPSConfig(search_timeout=2.0)
        publisher = TPSEngine(SkiRental, peer=pub_peer, config=config).new_interface("JXTA")
        builder.settle(rounds=8)
        subscriber = TPSEngine(
            SkiRental, peer=sub_peer, config=TPSConfig(search_timeout=6.0, create_if_missing=False)
        ).new_interface("JXTA")
        received = []
        subscriber.subscribe(received.append)
        builder.settle(rounds=12)
        receipt = publisher.publish(SkiRental("shop", 75.0, "Rossignol", 2))
        builder.simulator.run_until(max(builder.simulator.now, receipt.completion_time))
        builder.settle(rounds=8)
        return len(received)

    assert once(run) == 1
