"""Tests for the TPS v2 API: binding registry, handles, builder, streams, lifecycle.

Covers the four layers of the redesign:

* the pluggable binding registry (``repro.core.bindings``) with the
  self-registered ``LOCAL``/``JXTA``/``SHARDED`` bindings and third-party
  registration through the public API;
* ``SubscriptionHandle`` (exact cancellation, context manager) and the
  fluent ``subscription(cb).where(pred).on_error(h).start()`` builder with
  predicate push-down into the dispatch rows;
* ``EventStream`` pull-style consumption (drain/get/iterate, bounded
  buffers, ``drop_oldest`` vs ``block`` backpressure);
* the close lifecycle: idempotent ``close()`` on every binding and on the
  engine, uniform post-close ``PSException``, context managers.
"""

from __future__ import annotations

import threading

import pytest

from repro.apps.skirental.types import SkiRental, SnowboardRental
from repro.core import (
    CollectingExceptionHandler,
    Criteria,
    FilteringCallback,
    LocalBus,
    PSException,
    ShardedLocalBus,
    TPSConfig,
    TPSEngine,
)
from repro.core.bindings import (
    BindingRequest,
    TPSBinding,
    binding_capabilities,
    get_binding,
    register_binding,
    registered_bindings,
    unregister_binding,
)
from repro.core.local_engine import LocalTPSEngine
from repro.core.sharded_engine import DEFAULT_SHARDED_BUS
from repro.core.subscriptions import EventStream, SubscriptionHandle


def _offer(price: float = 10.0) -> SkiRental:
    return SkiRental("shop", price, "brand", 1)


@pytest.fixture
def bus():
    return LocalBus()


@pytest.fixture
def pair(bus):
    """A LOCAL publisher/subscriber interface pair on a private bus."""
    publisher = TPSEngine(SkiRental, local_bus=bus).new_interface("LOCAL")
    subscriber = TPSEngine(SkiRental, local_bus=bus).new_interface("LOCAL")
    return publisher, subscriber


# --------------------------------------------------------------- registry


class TestBindingRegistry:
    def test_builtin_bindings_are_registered(self):
        names = registered_bindings()
        assert {"JXTA", "LOCAL", "SHARDED"} <= set(names)
        assert list(names) == sorted(names)

    def test_lookup_is_case_insensitive(self):
        assert get_binding("local") is get_binding("LOCAL")
        engine = TPSEngine(SkiRental, local_bus=LocalBus())
        assert isinstance(engine.new_interface("local"), LocalTPSEngine)

    def test_unknown_binding_error_lists_registered_names(self):
        engine = TPSEngine(SkiRental, local_bus=LocalBus())
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("CORBA")
        message = str(excinfo.value)
        # The message enumerates the live registry, not a hardcoded pair.
        for name in registered_bindings():
            assert repr(name) in message

    def test_capabilities(self):
        assert "in-process" in binding_capabilities("LOCAL")
        assert "sharded" in binding_capabilities("SHARDED")
        assert "distributed" in binding_capabilities("JXTA")

    def test_third_party_binding_via_public_api(self, bus):
        requests = []

        def factory(request: BindingRequest):
            requests.append(request)
            return LocalTPSEngine(request.event_type, bus=bus)

        register_binding("CUSTOM", factory, capabilities=("test",))
        try:
            engine = TPSEngine(SkiRental, local_bus=bus)
            interface = engine.new_interface("custom", None, None, ["--flag"])
            assert isinstance(interface, LocalTPSEngine)
            assert interface in engine.interfaces
            (request,) = requests
            assert request.event_type is SkiRental
            assert request.argv == ("--flag",)
            assert request.local_bus is bus
        finally:
            assert unregister_binding("CUSTOM")
        with pytest.raises(PSException):
            get_binding("CUSTOM")

    def test_duplicate_registration_needs_replace(self):
        register_binding("DUP", lambda request: None)
        try:
            with pytest.raises(PSException):
                register_binding("DUP", lambda request: None)
            register_binding("DUP", lambda request: None, replace=True)
        finally:
            unregister_binding("DUP")

    def test_interfaces_satisfy_the_binding_protocol(self, pair):
        publisher, _ = pair
        assert isinstance(publisher, TPSBinding)

    def test_jxta_binding_still_requires_a_peer(self):
        with pytest.raises(PSException) as excinfo:
            TPSEngine(SkiRental).new_interface("JXTA")
        assert "peer" in str(excinfo.value)


class TestShardedBinding:
    def test_registered_through_public_api_only(self):
        # The engine module must not know about SHARDED: the registry does.
        import repro.core.engine as engine_module

        source = open(engine_module.__file__, encoding="utf-8").read()
        assert "SHARDED" not in source.replace('``"SHARDED"``', "")

    def test_same_hierarchy_lands_on_one_shard(self):
        sharded = ShardedLocalBus(shards=4)
        publisher = TPSEngine(SkiRental, local_bus=sharded).new_interface("SHARDED")
        subscriber = TPSEngine(SkiRental, local_bus=sharded).new_interface("SHARDED")
        root = publisher.registry.advertised_name
        shard = sharded.shard_for(root)
        assert publisher in shard._engines[root]
        assert subscriber in shard._engines[root]

    def test_delivery_matches_local_semantics(self):
        sharded = ShardedLocalBus(shards=4)
        publisher = TPSEngine(SkiRental, local_bus=sharded).new_interface("SHARDED")
        subscriber = TPSEngine(SkiRental, local_bus=sharded).new_interface("SHARDED")
        received = []
        subscriber.subscribe(received.append)
        offer = _offer()
        publisher.publish(offer)
        assert len(received) == 1
        assert received[0] == offer and received[0] is not offer
        assert publisher.objects_received() == []  # no self-delivery

    def test_type_mismatch_rejected_like_local(self):
        sharded = ShardedLocalBus(shards=2)
        publisher = TPSEngine(SkiRental, local_bus=sharded).new_interface("SHARDED")
        from repro.core.exceptions import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            publisher.publish(SnowboardRental("s", 1.0, "b", 1))

    def test_default_bus_used_when_none_given(self):
        interface = TPSEngine(SkiRental).new_interface("SHARDED")
        try:
            root = interface.registry.advertised_name
            shard = DEFAULT_SHARDED_BUS.shard_for(root)
            assert interface in shard._engines[root]
        finally:
            interface.close()

    def test_plain_local_bus_rejected(self, bus):
        with pytest.raises(PSException) as excinfo:
            TPSEngine(SkiRental, local_bus=bus).new_interface("SHARDED")
        assert "ShardedLocalBus" in str(excinfo.value)

    def test_shard_placement_is_stable(self):
        a = ShardedLocalBus(shards=8)
        b = ShardedLocalBus(shards=8)
        assert a.shard_index("some.module.Type") == b.shard_index("some.module.Type")

    def test_needs_at_least_one_shard(self):
        with pytest.raises(PSException):
            ShardedLocalBus(shards=0)


# ---------------------------------------------------------------- handles


class TestSubscriptionHandle:
    def test_subscribe_returns_an_active_handle(self, pair):
        _, subscriber = pair
        handle = subscriber.subscribe(lambda event: None)
        assert isinstance(handle, SubscriptionHandle)
        assert handle.active and len(handle) == 1
        assert handle.interface is subscriber

    def test_cancel_removes_exactly_this_subscription(self, pair):
        publisher, subscriber = pair
        first, second = [], []
        shared = lambda event: None  # noqa: E731 - identity matters here
        subscriber.subscribe(first.append)
        handle = subscriber.subscribe(shared)
        subscriber.subscribe(second.append)
        assert handle.cancel() == 1
        assert not handle.active
        publisher.publish(_offer())
        assert len(first) == 1 and len(second) == 1

    def test_cancel_is_idempotent(self, pair):
        _, subscriber = pair
        handle = subscriber.subscribe(lambda event: None)
        assert handle.cancel() == 1
        assert handle.cancel() == 0

    def test_cancel_distinguishes_same_callback_registered_twice(self, pair):
        publisher, subscriber = pair
        inbox = []
        first = subscriber.subscribe(inbox.append)
        second = subscriber.subscribe(inbox.append)
        assert first.cancel() == 1
        assert second.active
        publisher.publish(_offer())
        assert len(inbox) == 1  # the second subscription still delivers

    def test_list_subscribe_handle_covers_all_callbacks(self, pair):
        publisher, subscriber = pair
        first, second = [], []
        handle = subscriber.subscribe([first.append, second.append])
        assert len(handle) == 2
        assert handle.cancel() == 2
        publisher.publish(_offer())
        assert first == [] and second == []

    def test_handle_as_context_manager(self, pair):
        publisher, subscriber = pair
        inbox = []
        with subscriber.subscribe(inbox.append):
            publisher.publish(_offer())
        publisher.publish(_offer())
        assert len(inbox) == 1

    def test_cancel_after_blanket_unsubscribe_removes_nothing(self, pair):
        _, subscriber = pair
        handle = subscriber.subscribe(lambda event: None)
        assert subscriber.unsubscribe() == 1
        assert handle.cancel() == 0


# ---------------------------------------------------------------- builder


class TestSubscriptionBuilder:
    def test_where_filters_before_dispatch(self, pair):
        publisher, subscriber = pair
        cheap = []
        subscriber.subscription(cheap.append).where(lambda o: o.price < 100).start()
        publisher.publish(_offer(50.0))
        publisher.publish(_offer(500.0))
        assert [o.price for o in cheap] == [50.0]
        # Interface-level history still records both: the predicate is
        # per-subscription, unlike interface-level Criteria.
        assert len(subscriber.objects_received()) == 2

    def test_multiple_where_clauses_are_anded(self, pair):
        publisher, subscriber = pair
        hits = []
        (
            subscriber.subscription(hits.append)
            .where(lambda o: o.price > 10)
            .where(lambda o: o.price < 100)
            .start()
        )
        for price in (5.0, 50.0, 500.0):
            publisher.publish(_offer(price))
        assert [o.price for o in hits] == [50.0]

    def test_predicate_is_pushed_into_dispatch_rows(self, pair):
        _, subscriber = pair
        predicate = lambda o: o.price < 100  # noqa: E731
        subscriber.subscription(lambda event: None).where(predicate).start()
        ((_, _, row_predicate, _),) = subscriber.subscriber_manager._handlers
        assert row_predicate is predicate

    def test_on_error_routes_callback_exceptions(self, pair):
        publisher, subscriber = pair
        errors = CollectingExceptionHandler()

        def broken(offer):
            raise RuntimeError("boom")

        subscriber.subscription(broken).on_error(errors).start()
        publisher.publish(_offer())
        assert len(errors.errors) == 1

    def test_start_returns_cancellable_handle(self, pair):
        publisher, subscriber = pair
        inbox = []
        handle = subscriber.subscription(inbox.append).where(lambda o: True).start()
        assert handle.cancel() == 1
        publisher.publish(_offer())
        assert inbox == []

    def test_builder_without_callback_rejected(self, pair):
        _, subscriber = pair
        with pytest.raises(PSException):
            subscriber.subscription().start()

    def test_builder_is_single_use(self, pair):
        _, subscriber = pair
        builder = subscriber.subscription(lambda event: None)
        builder.start()
        with pytest.raises(PSException):
            builder.start()

    def test_non_callable_predicate_rejected(self, pair):
        _, subscriber = pair
        with pytest.raises(PSException):
            subscriber.subscription(lambda event: None).where("price < 100")

    def test_builder_works_over_criteria(self, bus):
        # Interface-level Criteria and pushed-down predicates compose.
        publisher = TPSEngine(SkiRental, local_bus=bus).new_interface("LOCAL")
        subscriber = TPSEngine(SkiRental, local_bus=bus).new_interface(
            "LOCAL", Criteria(event_predicate=lambda o: o.price < 1000)
        )
        hits = []
        subscriber.subscription(hits.append).where(lambda o: o.price < 100).start()
        for price in (50.0, 500.0, 5000.0):
            publisher.publish(_offer(price))
        assert [o.price for o in hits] == [50.0]
        assert len(subscriber.objects_received()) == 2  # criteria dropped 5000

    def test_raising_predicate_routed_to_error_handler(self, pair):
        # A broken pushed-down predicate behaves exactly like a broken
        # callback: routed to the paired handler, publisher unharmed,
        # delivery to other subscribers unaffected.
        publisher, subscriber = pair
        errors = CollectingExceptionHandler()
        filtered, plain = [], []

        def broken_predicate(offer):
            raise ValueError("broken filter")

        subscriber.subscription(filtered.append).where(broken_predicate).on_error(
            errors
        ).start()
        subscriber.subscribe(plain.append)
        publisher.publish(_offer())
        assert filtered == []
        assert len(plain) == 1
        assert len(errors.errors) == 1
        assert isinstance(errors.errors[0], ValueError)

    def test_raising_predicate_in_manager_dispatch(self, pair):
        # Same guarantee on the manager's own dispatch loop (the JXTA
        # receive path).
        _, subscriber = pair
        errors = CollectingExceptionHandler()
        hits = []
        subscriber.subscription(hits.append).where(
            lambda o: o.missing_attribute
        ).on_error(errors).start()
        assert subscriber.subscriber_manager.dispatch(_offer()) == 0
        assert hits == [] and len(errors.errors) == 1

    def test_filtering_callback_equivalent_semantics(self, pair):
        # The pre-v2 wrapper and the pushed-down predicate deliver the same
        # events; only the dispatch cost differs.
        publisher, subscriber = pair
        wrapped, pushed = [], []
        subscriber.subscribe(FilteringCallback(lambda o: o.price < 100, wrapped.append))
        subscriber.subscription(pushed.append).where(lambda o: o.price < 100).start()
        for price in (50.0, 500.0):
            publisher.publish(_offer(price))
        assert [o.price for o in wrapped] == [o.price for o in pushed] == [50.0]


# ----------------------------------------------------------------- stream


class TestEventStream:
    def test_drain_collects_published_events(self, pair):
        publisher, subscriber = pair
        with subscriber.stream() as stream:
            for price in (1.0, 2.0, 3.0):
                publisher.publish(_offer(price))
            assert stream.pending == 3
            assert [o.price for o in stream.drain()] == [1.0, 2.0, 3.0]
            assert stream.pending == 0

    def test_get_returns_events_in_order(self, pair):
        publisher, subscriber = pair
        with subscriber.stream() as stream:
            publisher.publish(_offer(1.0))
            publisher.publish(_offer(2.0))
            assert stream.get().price == 1.0
            assert stream.get().price == 2.0

    def test_get_timeout_raises(self, pair):
        _, subscriber = pair
        with subscriber.stream() as stream:
            with pytest.raises(PSException):
                stream.get(timeout=0.01)

    def test_iteration_ends_at_close(self, pair):
        publisher, subscriber = pair
        stream = subscriber.stream()
        for price in (1.0, 2.0):
            publisher.publish(_offer(price))
        stream.close()
        assert [o.price for o in stream] == [1.0, 2.0]

    def test_drop_oldest_policy_bounds_the_buffer(self, pair):
        publisher, subscriber = pair
        with subscriber.stream(maxsize=3, policy="drop_oldest") as stream:
            for price in range(6):
                publisher.publish(_offer(float(price)))
            assert stream.pending == 3
            assert stream.dropped == 3
            assert [o.price for o in stream.drain()] == [3.0, 4.0, 5.0]

    def test_block_policy_applies_backpressure_to_the_publisher(self, pair):
        publisher, subscriber = pair
        stream = subscriber.stream(maxsize=1, policy="block")
        publisher.publish(_offer(1.0))  # fills the buffer
        published = threading.Event()

        def second_publish():
            publisher.publish(_offer(2.0))  # must block until a get()
            published.set()

        worker = threading.Thread(target=second_publish, daemon=True)
        worker.start()
        assert not published.wait(timeout=0.1)  # publisher is blocked
        assert stream.get(timeout=1.0).price == 1.0
        assert published.wait(timeout=1.0)  # consuming unblocked it
        worker.join(timeout=1.0)
        assert stream.get(timeout=1.0).price == 2.0
        stream.close()

    def test_close_unblocks_a_blocked_publisher(self, pair):
        publisher, subscriber = pair
        stream = subscriber.stream(maxsize=1, policy="block")
        publisher.publish(_offer(1.0))
        done = threading.Event()

        def blocked_publish():
            publisher.publish(_offer(2.0))
            done.set()

        threading.Thread(target=blocked_publish, daemon=True).start()
        assert not done.wait(timeout=0.05)
        stream.close()
        assert done.wait(timeout=1.0)

    def test_close_cancels_the_subscription(self, pair):
        publisher, subscriber = pair
        stream = subscriber.stream()
        stream.close()
        publisher.publish(_offer())
        assert stream.pending == 0
        assert stream.closed

    def test_filtered_stream_through_the_builder(self, pair):
        publisher, subscriber = pair
        with subscriber.subscription().where(lambda o: o.price < 100).stream() as stream:
            publisher.publish(_offer(50.0))
            publisher.publish(_offer(500.0))
            assert [o.price for o in stream.drain()] == [50.0]

    def test_stream_builder_rejects_a_callback(self, pair):
        _, subscriber = pair
        with pytest.raises(PSException):
            subscriber.subscription(lambda event: None).stream()

    def test_interface_close_closes_open_streams(self, pair):
        # A consumer blocked on get() must wake up when the interface (and
        # with it the stream's subscription) goes away.
        _, subscriber = pair
        stream = subscriber.stream()
        failure: list = []

        def consume():
            try:
                stream.get(timeout=5.0)
                failure.append("get returned an event")
            except PSException:
                pass  # closed-and-empty: the expected wake-up

        worker = threading.Thread(target=consume, daemon=True)
        worker.start()
        subscriber.close()
        worker.join(timeout=2.0)
        assert not worker.is_alive()
        assert stream.closed and failure == []

    def test_blanket_unsubscribe_closes_open_streams(self, pair):
        _, subscriber = pair
        stream = subscriber.stream()
        subscriber.unsubscribe()
        assert stream.closed

    def test_closing_a_stream_unregisters_it(self, pair):
        _, subscriber = pair
        stream = subscriber.stream()
        stream.close()
        assert stream not in getattr(subscriber, "_open_streams", [])
        subscriber.close()  # must not re-close or fail

    def test_unknown_policy_rejected(self, pair):
        _, subscriber = pair
        with pytest.raises(PSException):
            subscriber.stream(maxsize=2, policy="drop_newest")

    def test_negative_maxsize_rejected(self, pair):
        _, subscriber = pair
        with pytest.raises(PSException):
            subscriber.stream(maxsize=-1)


# -------------------------------------------------------------- lifecycle


class TestInterfaceLifecycle:
    @pytest.fixture(params=["LOCAL", "SHARDED"])
    def interface(self, request):
        local_bus = LocalBus() if request.param == "LOCAL" else ShardedLocalBus(2)
        return TPSEngine(SkiRental, local_bus=local_bus).new_interface(request.param)

    def test_close_is_idempotent(self, interface):
        interface.close()
        interface.close()
        assert interface.closed

    def test_publish_after_close_raises_uniform_message(self, interface):
        interface.close()
        with pytest.raises(PSException) as excinfo:
            interface.publish(_offer())
        assert "is closed" in str(excinfo.value)

    def test_subscribe_after_close_raises_uniform_message(self, interface):
        interface.close()
        with pytest.raises(PSException) as excinfo:
            interface.subscribe(lambda event: None)
        assert "is closed" in str(excinfo.value)

    def test_builder_and_stream_after_close_raise(self, interface):
        interface.close()
        with pytest.raises(PSException):
            interface.subscription(lambda event: None)
        with pytest.raises(PSException):
            interface.stream()

    def test_history_survives_close(self, bus):
        publisher = TPSEngine(SkiRental, local_bus=bus).new_interface("LOCAL")
        publisher.publish(_offer())
        publisher.close()
        assert len(publisher.objects_sent()) == 1
        assert publisher.unsubscribe() == 0  # unsubscribe stays harmless

    def test_interface_is_a_context_manager(self, bus):
        with TPSEngine(SkiRental, local_bus=bus).new_interface("LOCAL") as interface:
            interface.publish(_offer())
        assert interface.closed
        with pytest.raises(PSException):
            interface.publish(_offer())

    def test_close_detaches_from_delivery(self, pair):
        publisher, subscriber = pair
        inbox = []
        subscriber.subscribe(inbox.append)
        subscriber.close()
        publisher.publish(_offer())
        assert inbox == []


class TestJxtaLifecycle:
    def test_jxta_close_idempotent_and_post_close_raises(self, lan):
        peer = lan.peer_named("peer-0")
        interface = TPSEngine(
            SkiRental, peer=peer, config=TPSConfig(search_timeout=2.0)
        ).new_interface("JXTA")
        lan.settle(rounds=6)
        interface.close()
        interface.close()
        assert interface.closed
        with pytest.raises(PSException) as publish_error:
            interface.publish(_offer())
        with pytest.raises(PSException) as subscribe_error:
            interface.subscribe(lambda event: None)
        assert "is closed" in str(publish_error.value)
        assert "is closed" in str(subscribe_error.value)

    def test_jxta_handle_cancel_closes_readers_when_last(self, lan):
        peer = lan.peer_named("peer-1")
        interface = TPSEngine(
            SkiRental, peer=peer, config=TPSConfig(search_timeout=2.0)
        ).new_interface("JXTA")
        lan.settle(rounds=6)
        handle = interface.subscribe(lambda event: None)
        assert any(a.input_pipe is not None for a in interface.manager.attachments)
        assert handle.cancel() == 1
        assert all(a.input_pipe is None for a in interface.manager.attachments)


class TestEngineLifecycle:
    def test_engine_close_closes_created_interfaces(self, bus):
        engine = TPSEngine(SkiRental, local_bus=bus)
        first = engine.new_interface("LOCAL")
        second = engine.new_interface("LOCAL")
        engine.close()
        assert engine.closed and first.closed and second.closed

    def test_engine_close_is_idempotent(self, bus):
        engine = TPSEngine(SkiRental, local_bus=bus)
        engine.new_interface("LOCAL")
        engine.close()
        engine.close()

    def test_new_interface_after_close_raises(self, bus):
        engine = TPSEngine(SkiRental, local_bus=bus)
        engine.close()
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("LOCAL")
        assert "is closed" in str(excinfo.value)

    def test_engine_close_attempts_every_interface(self, bus):
        # One failing interface must not strand the others, and the engine
        # must stay retryable.
        engine = TPSEngine(SkiRental, local_bus=bus)
        first = engine.new_interface("LOCAL")
        second = engine.new_interface("LOCAL")

        original = first._do_close
        calls = []

        def failing_close():
            calls.append("boom")
            raise RuntimeError("teardown failure")

        first._do_close = failing_close
        with pytest.raises(RuntimeError):
            engine.close()
        assert second.closed  # the loop kept going
        assert not engine.closed  # retryable
        first._do_close = original
        engine.close()
        assert engine.closed and first.closed

    def test_interface_close_reverts_on_teardown_failure(self, bus):
        interface = TPSEngine(SkiRental, local_bus=bus).new_interface("LOCAL")

        original = interface._do_close

        def failing_close():
            raise RuntimeError("teardown failure")

        interface._do_close = failing_close
        with pytest.raises(RuntimeError):
            interface.close()
        assert not interface.closed  # close() can be retried
        interface._do_close = original
        interface.close()
        assert interface.closed

    def test_engine_as_context_manager(self, bus):
        with TPSEngine(SkiRental, local_bus=bus) as engine:
            interface = engine.new_interface("LOCAL")
        assert engine.closed and interface.closed
