"""Replying to publishers: combining TPS with point-to-point interaction.

The paper's concluding remarks note a deliberate limitation of the pure TPS
abstraction: "our TPS API does not enable a subscriber to immediately reply
to a publisher that posted an interesting event.  This would require a
combination with a more traditional RPC kind of interaction or directly using
the underlying P2P library."

This module provides that combination.  The publisher opens a
:class:`ReplyEndpoint` (a unicast JXTA pipe dedicated to responses) and stamps
its coordinates onto outgoing events through the :class:`Replyable` mixin.
Any subscriber that finds an event interesting calls :func:`reply`, which
sends the response straight back to the publisher over the underlying pipe --
a point-to-point interaction layered beside (not through) the decoupled
publish/subscribe flow, exactly as the paper suggests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.exceptions import PSException
from repro.jxta.advertisement import PipeAdvertisement
from repro.jxta.ids import PeerID, PipeID
from repro.jxta.message import Message
from repro.jxta.peer import Peer
from repro.jxta.pipes import PipeKind
from repro.serialization.object_codec import ObjectCodec

_reply_counter = itertools.count(1)

#: Message element names used on the reply pipe.
_REPLY_BODY = "TPSReplyBody"
_REPLY_SENDER = "TPSReplySender"
_REPLY_EVENT_ID = "TPSReplyEventId"


class Replyable:
    """Mixin for event types whose publisher accepts direct replies.

    The publisher's :class:`ReplyEndpoint` stamps ``reply_address`` before the
    event is published; subscribers pass the received event to :func:`reply`.
    The attribute is plain data (strings), so it serialises through any codec.
    """

    reply_address: Optional[Dict[str, str]] = None

    def accepts_replies(self) -> bool:
        """Whether a reply endpoint has been attached to this event."""
        return bool(getattr(self, "reply_address", None))


@dataclass
class Reply:
    """One response received by a publisher's reply endpoint."""

    responder: PeerID
    event_id: str
    body: Any
    received_at: float = 0.0


class ReplyEndpoint:
    """A publisher-side unicast pipe collecting replies to published events."""

    def __init__(self, peer: Peer, *, name: Optional[str] = None) -> None:
        self.peer = peer
        self.name = name or f"reply:{peer.name}"
        self._codec = ObjectCodec(strict=False)
        self.advertisement = PipeAdvertisement(
            pipe_id=PipeID(), name=self.name, pipe_kind=PipeKind.UNICAST.value
        )
        self.replies: List[Reply] = []
        self._input_pipe = peer.world_group.pipe_service.create_input_pipe(
            self.advertisement, self._on_message
        )

    # ------------------------------------------------------------- stamping

    def attach(self, event: Replyable) -> Replyable:
        """Stamp the reply coordinates onto an outgoing event and return it."""
        if not isinstance(event, Replyable):
            raise PSException(
                f"{type(event).__name__} does not mix in Replyable; "
                "only replyable events can carry a reply address"
            )
        event.reply_address = {
            "peer": self.peer.peer_id.to_urn(),
            "pipe": self.advertisement.pipe_id.to_urn(),
            "event_id": f"{self.peer.peer_id.to_urn()}/r{next(_reply_counter)}",
        }
        return event

    # ------------------------------------------------------------- receiving

    def _on_message(self, message: Message, source: PeerID) -> None:
        try:
            body = self._codec.decode(message.get_bytes(_REPLY_BODY))
        except Exception:
            self.peer.metrics.counter("reply_malformed").increment()
            return
        self.replies.append(
            Reply(
                responder=PeerID.from_urn(message.get_text(_REPLY_SENDER)),
                event_id=message.get_text(_REPLY_EVENT_ID),
                body=body,
                received_at=self.peer.now,
            )
        )
        self.peer.metrics.counter("replies_received").increment()

    def replies_for(self, event: Replyable) -> List[Reply]:
        """The replies received so far for one specific published event."""
        if not event.accepts_replies():
            return []
        event_id = event.reply_address.get("event_id", "")
        return [reply for reply in self.replies if reply.event_id == event_id]

    def close(self) -> None:
        """Stop accepting replies."""
        self._input_pipe.close()


def reply(peer: Peer, event: Replyable, body: Any) -> bool:
    """Send ``body`` straight back to the publisher of ``event``.

    ``body`` may be any plain value (strings, numbers, lists, dicts...).
    Returns True when the response was handed to the network; raises
    :class:`PSException` when the event carries no reply address.
    """
    if not isinstance(event, Replyable) or not event.accepts_replies():
        raise PSException("this event does not accept replies (no reply address attached)")
    address = event.reply_address
    message = Message()
    message.add(_REPLY_BODY, ObjectCodec(strict=False).encode(body))
    message.add(_REPLY_SENDER, peer.peer_id.to_urn())
    message.add(_REPLY_EVENT_ID, address.get("event_id", ""))
    sent = peer.endpoint.send(
        PeerID.from_urn(address["peer"]),
        message,
        "jxta.service.pipedata",
        address["pipe"],
    )
    if sent:
        peer.metrics.counter("replies_sent").increment()
    return sent


__all__ = ["Reply", "ReplyEndpoint", "Replyable", "reply"]
