"""Inline lint suppressions: ``# repro-lint: disable=RULE``.

Two forms, both scanned from real COMMENT tokens (``tokenize``), so pragma
text inside string literals never counts:

* **line pragma** -- ``# repro-lint: disable=RL002`` (or
  ``disable=RL001,RL005``, or ``disable=all``) on a physical line silences
  those rules for findings *anchored on that line*.  Rules anchor a finding
  at the statement that violates the invariant, so the pragma sits next to
  the code it excuses -- reviewable in the same diff hunk.
* **file pragma** -- ``# repro-lint: disable-file=RL004`` anywhere in the
  file silences the rules for the whole module.  Reserved for modules whose
  *purpose* is the exception, e.g. :mod:`repro.net.entropy`, the audited
  home of the wall-clock/OS-randomness escape hatches RL004 bans everywhere
  else.

Every suppression should carry a human explanation in the same comment --
the lint gate test cannot enforce prose, but review can, and
``docs/CONCURRENCY.md`` makes it the house rule.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterable, List, Tuple

#: Matches one pragma inside a comment; ``disable`` and ``disable-file``
#: differ only in scope.
_PRAGMA = re.compile(
    r"repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: The wildcard accepted in a pragma's rule list.
ALL = "ALL"


class SuppressionIndex:
    """The pragmas of one source file, queryable per (rule, line)."""

    __slots__ = ("_line_rules", "_file_rules")

    def __init__(
        self,
        line_rules: Dict[int, FrozenSet[str]],
        file_rules: FrozenSet[str],
    ) -> None:
        self._line_rules = line_rules
        self._file_rules = file_rules

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether a finding of ``rule`` anchored at ``line`` is silenced."""
        rule = rule.upper()
        if ALL in self._file_rules or rule in self._file_rules:
            return True
        rules = self._line_rules.get(line)
        if rules is None:
            return False
        return ALL in rules or rule in rules

    @property
    def empty(self) -> bool:
        return not self._line_rules and not self._file_rules

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SuppressionIndex(lines={len(self._line_rules)}, "
            f"file_rules={sorted(self._file_rules)})"
        )


def _parse_rules(text: str) -> FrozenSet[str]:
    return frozenset(part.strip().upper() for part in text.split(",") if part.strip())


def _comments(source: str) -> Iterable[Tuple[int, str]]:
    """(line, text) of every comment token; falls back to a line scan when
    the file does not tokenize (the engine reports the syntax error itself,
    but pragmas should still work on the lines that do parse as comments)."""
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for number, line in enumerate(source.splitlines(), start=1):
            stripped = line.strip()
            if stripped.startswith("#"):
                yield number, stripped
        return
    for token in tokens:
        if token.type == tokenize.COMMENT:
            yield token.start[0], token.string


def scan_suppressions(source: str) -> SuppressionIndex:
    """Build the suppression index of one source file."""
    line_rules: Dict[int, List[str]] = {}
    file_rules: List[str] = []
    for line, comment in _comments(source):
        for match in _PRAGMA.finditer(comment):
            rules = _parse_rules(match.group("rules"))
            if match.group("scope") == "disable-file":
                file_rules.extend(rules)
            else:
                line_rules.setdefault(line, []).extend(rules)
    return SuppressionIndex(
        {line: frozenset(rules) for line, rules in line_rules.items()},
        frozenset(file_rules),
    )


__all__ = ["ALL", "SuppressionIndex", "scan_suppressions"]
