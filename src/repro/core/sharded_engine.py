"""The ``"SHARDED"`` binding: an elastic N-shard in-process bus.

The ROADMAP's sharding direction, taken through the public binding registry
(no special case anywhere in :mod:`repro.core.engine`): a
:class:`ShardedLocalBus` partitions delivery across N independent
:class:`~repro.core.local_engine.LocalBus` shards — and, since PR 7, the
shard set is *elastic*: :meth:`ShardedLocalBus.add_shard` /
:meth:`ShardedLocalBus.remove_shard` resize a **running** bus without
dropping, duplicating or reordering a single delivery.

Partition contract (the ``partition`` constructor argument and binding
parameter):

* ``"root"`` (the default) -- *inter*-hierarchy sharding.  Every engine of a
  hierarchy lands on the shard its placement selects for the hierarchy-root
  name, so delivery semantics are identical to a single bus while unrelated
  hierarchies stop sharing routing tables and locks.
* ``"content"`` -- *intra*-hierarchy sharding by event content.  Requires
  ``content_key``, the name of an event attribute; each published event is
  routed through the shard its placement selects for
  ``"<root name>:<key value>"``.  Engines attach to **every** shard (the
  partition-aware routing path: whichever shard an event hashes to must know
  the hierarchy's subscribers), each event is still delivered exactly once
  (only its own shard delivers it), and per-key ordering is preserved: a
  given key always maps to the same shard, and a shard's deliveries run
  serially in publish order -- including under
  :meth:`ShardedLocalBus.publish_all`, where each shard group runs serially
  in job order while distinct shards run in parallel.  An event *missing*
  the declared attribute raises :class:`PSException` from the publish call
  (the API's normal error path) instead of crashing with ``AttributeError``;
  the bus stays fully usable afterwards.
* a callable ``partition(event) -> key`` -- like ``"content"`` but with an
  application-supplied key function; the returned key is stringified and
  hashed.  A raising key function is wrapped in :class:`PSException` the
  same way.
* ``"ring"`` / ``"modn"`` -- aliases for ``"root"`` partitioning with the
  named placement pinned (shorthand for ``partition="root",
  placement=...``), so binding params can say ``partition="modn"`` to get
  the exact pre-PR 7 CRC-32 mod-N layout.

*Where* a key lives is delegated to :mod:`repro.core.placement` (the
``placement`` / ``virtual_nodes`` arguments): ``"ring"`` -- the default --
is a consistent-hash ring with virtual nodes over stable shard ids, so
resizing moves only ~``1/(N+1)`` of the keys; ``"modn"`` is the legacy
CRC-32 mod-N compatibility mode (identical assignment to the PR 5 bus,
nearly total reshuffle on resize -- usable, but resharding it is a bulk
move, not an incremental one).

Binding parameters (v2 registry schema): ``new_interface("SHARDED",
shards=16)`` or ``new_interface("SHARDED", shards=8, partition="content",
content_key="symbol", virtual_nodes=128)``.  Interfaces created with the
*same* parameter set share one registry-built bus (so they can talk to each
other); passing parameters together with an explicit engine-level
``local_bus`` is rejected -- the parameters describe a bus, so supply one or
the other.

:class:`~repro.core.local_engine.LocalTPSEngine` runs over the sharded bus
unchanged -- the bus is a drop-in facade with the same
``attach``/``detach``/``publish``/``engines_for`` surface -- which is the
point of the exercise: a binding built purely from public pieces.

Locking and migration model (PR 4's snapshot discipline, extended to PR 7's
ring epochs -- no new locking scheme):

* All *routing state* lives in one immutable ``_Epoch`` object -- the shard
  tuple, the placement, an optional pause gate -- swapped atomically as a
  whole, exactly like the PR 1 route rows and PR 4 handler snapshots.  The
  publish path reads ``self._epoch`` once and never takes a bus-level lock;
  two publishers on *different* shards share no lock at all.  The parallel
  cross-shard path (:meth:`ShardedLocalBus.publish_all`, backing
  ``tps.publish_many``) leans on exactly that independence, fanning
  per-shard batches out to a lazily created executor while keeping each
  shard's events in job order.
* Publishers *register* in the epoch they read (a CPython-atomic
  ``list.append`` token, re-checked against ``self._epoch`` so a token can
  never land in an epoch that was already retired) and deregister when the
  delivery returns -- giving migrations an exact "who is still delivering
  under the old placement" signal with zero cost on the steady-state path.
* Live resharding is **drain-then-switch per key range**, serialized under
  ``_topology_lock`` (shared with ``attach``/``detach``):

  1. install a *paused* epoch: same shards/placement, plus a gate that
     blocks exactly the keys whose owner differs between the old and new
     placement (everything else keeps publishing at full speed);
  2. drain the previous epoch's in-flight registrations -- after this, no
     thread is delivering an affected key anywhere;
  3. attach moved hierarchies' engines to their new owner shards (delivery
     for those keys is still gated, so double-attachment is unobservable);
  4. swap in the final epoch (new shard tuple + placement) -- the atomic
     commit point;
  5. detach moved engines from their old shards and open the gate; blocked
     publishers re-read the epoch and deliver to the new owner.

  Per-key order is preserved because an affected key's deliveries are
  strictly partitioned in time around the commit point (drained before,
  gated until after); exactly-once because at every instant exactly one
  shard delivers any given key.  ``publish_all`` registers once for the
  whole batch, so a batch can never straddle an epoch change -- it either
  drains before the switch or waits for it.  Nested publishes from
  subscriber callbacks reuse the thread's already-registered epoch instead
  of re-entering the gate, so delivery work can never deadlock a migration
  that is waiting on its own drain.  The one rule this buys: **do not call
  ``add_shard``/``remove_shard`` from inside a subscriber callback** -- the
  migration would wait for a drain that includes itself.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

from repro.core.bindings import BindingParam, BindingRequest, register_binding
from repro.core.exceptions import PSException
from repro.core.history import DEFAULT_HISTORY_SIZE, HISTORY_BINDING_PARAMS
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.placement import (
    DEFAULT_VIRTUAL_NODES,
    PLACEMENT_MODES,
    Placement,
    make_placement,
)
from repro.core.type_registry import type_name
from repro.net.entropy import brief_pause

#: Shard count of the process-wide default sharded bus.
DEFAULT_SHARD_COUNT = 8

#: The partition modes a bus accepts besides a callable key function.
PARTITION_MODES = ("root", "content")

#: Placement used when neither ``placement`` nor a partition alias pins one.
DEFAULT_PLACEMENT = "ring"

_bus_counter = itertools.count(1)

#: Seconds between drain polls while a migration waits out in-flight
#: deliveries (they are typically microseconds long).
_DRAIN_POLL_S = 0.00005


class _PauseGate:
    """Blocks publishers of exactly the keys a migration is moving.

    ``affects`` compares the *stable shard id* a key maps to under the old
    vs the new placement; unaffected keys never wait.  ``event`` opens once
    the final epoch is installed.
    """

    __slots__ = ("old_placement", "new_placement", "event")

    def __init__(self, old_placement: Placement, new_placement: Placement) -> None:
        self.old_placement = old_placement
        self.new_placement = new_placement
        self.event = threading.Event()

    def affects(self, key: str) -> bool:
        return self.old_placement.shard_id_for(key) != self.new_placement.shard_id_for(key)


class _Epoch:
    """One immutable routing snapshot: shards + placement (+ pause gate).

    Swapped whole on ``bus._epoch`` (the PR 1/PR 4 snapshot template).
    ``inflight`` is the registration list publishers enter tokens into;
    a paused epoch and the final epoch that commits it share one list, so
    the *next* migration's drain covers both.
    """

    __slots__ = ("number", "shards", "placement", "pause", "inflight")

    def __init__(
        self,
        number: int,
        shards: Tuple[LocalBus, ...],
        placement: Placement,
        pause: Optional[_PauseGate],
        inflight: List[Any],
    ) -> None:
        self.number = number
        self.shards = shards
        self.placement = placement
        self.pause = pause
        self.inflight = inflight


class ShardedLocalBus:
    """N independent :class:`LocalBus` shards with a pluggable partition
    and placement, resizable while publishing
    (:meth:`add_shard`/:meth:`remove_shard`).

    Presents the exact ``LocalBus`` surface
    (``attach``/``detach``/``publish``/``engines_for``), delegating each call
    to the owning shard.  See the module docstring for the partition
    contract and the epoch/migration model.
    """

    def __init__(
        self,
        shards: int = DEFAULT_SHARD_COUNT,
        *,
        partition: Union[str, Callable[[Any], Any]] = "root",
        content_key: Optional[str] = None,
        placement: Optional[str] = None,
        virtual_nodes: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise PSException(f"a sharded bus needs at least 1 shard, got {shards}")
        alias: Optional[str] = None
        if callable(partition):
            self.partition: Union[str, Callable[[Any], Any]] = partition
        elif partition in PARTITION_MODES:
            self.partition = partition
        elif partition in PLACEMENT_MODES:
            # "ring"/"modn" shorthand: root partitioning, placement pinned.
            alias, self.partition = partition, "root"
        else:
            raise PSException(
                f"unknown partition mode {partition!r}; expected one of "
                f"{PARTITION_MODES}, a placement alias {PLACEMENT_MODES}, "
                "or a callable key function"
            )
        if alias is not None and placement is not None and placement != alias:
            raise PSException(
                f"partition={alias!r} already pins placement={alias!r}; "
                f"got conflicting placement={placement!r}"
            )
        placement_mode = alias or placement or DEFAULT_PLACEMENT
        if placement_mode not in PLACEMENT_MODES:
            raise PSException(
                f"unknown placement {placement_mode!r}; expected one of "
                f"{PLACEMENT_MODES}"
            )
        if virtual_nodes is not None and placement_mode != "ring":
            raise PSException(
                "virtual_nodes only applies to placement='ring', got "
                f"virtual_nodes={virtual_nodes!r} with placement={placement_mode!r}"
            )
        if self.partition == "content":
            if not isinstance(content_key, str) or not content_key:
                raise PSException(
                    "partition='content' needs content_key, the name of the "
                    "event attribute to shard by"
                )
        elif content_key is not None:
            raise PSException(
                "content_key only applies to partition='content', "
                f"got content_key={content_key!r} with partition={partition!r}"
            )
        self.content_key = content_key
        self.placement_mode = placement_mode
        self.virtual_nodes = (
            DEFAULT_VIRTUAL_NODES if virtual_nodes is None else virtual_nodes
        )
        ordinal = next(_bus_counter)
        #: Process-unique token identifying this bus; composite bindings tag
        #: wire messages with it to filter same-bus echoes.
        self.bus_id = f"shardedbus-{ordinal}"
        self._ordinal = ordinal
        initial = make_placement(
            placement_mode, range(shards), virtual_nodes=self.virtual_nodes
        )
        self._epoch = _Epoch(0, tuple(LocalBus() for _ in range(shards)), initial, None, [])
        #: Next stable shard id add_shard() hands out (ids are never reused,
        #: which is what keeps surviving shards' ring points fixed).
        self._next_shard_id = shards
        #: Serializes attach/detach/add_shard/remove_shard; never touched by
        #: the publish path.
        self._topology_lock = threading.Lock()
        #: Every attached engine -> its hierarchy-root name, so a migration
        #: knows which engines to re-home.  Guarded by ``_topology_lock``.
        self._attached: Dict["LocalTPSEngine", str] = {}
        #: Executor of the cross-shard batch path, created on first use (a
        #: bus that never sees :meth:`publish_all` never starts a thread)
        #: and guarded by ``_executor_lock`` so two racing batches cannot
        #: each build one.
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        #: Thread-local re-entrancy state: ``in_worker`` is set while a
        #: thread runs a shard group, so a nested ``publish_all`` (e.g. from
        #: a subscriber callback) runs inline instead of submitting to --
        #: and then waiting on -- the very pool it is occupying; ``epoch``
        #: is the epoch the thread is already registered in, so nested
        #: publishes reuse it instead of re-entering the pause gate.
        self._local = threading.local()

    # ------------------------------------------------------------ partition

    @property
    def shards(self) -> Tuple[LocalBus, ...]:
        """The current epoch's shard tuple (an immutable snapshot)."""
        return self._epoch.shards

    @property
    def epoch_number(self) -> int:
        """The current ring epoch; bumps once per completed reshard."""
        return self._epoch.number

    @property
    def intra_hierarchy(self) -> bool:
        """Whether events of one hierarchy can spread across shards."""
        return self.partition != "root"

    def shard_index(self, root_name: str) -> int:
        """The shard owning the hierarchy advertised as ``root_name``.

        Only meaningful under ``"root"`` partitioning; intra-hierarchy
        buses attach every hierarchy to every shard and route per event
        (see :meth:`partition_index`).
        """
        epoch = self._epoch
        return epoch.placement.index_for(root_name)

    def shard_for(self, root_name: str) -> LocalBus:
        """The :class:`LocalBus` shard owning ``root_name``'s hierarchy."""
        epoch = self._epoch
        return epoch.shards[epoch.placement.index_for(root_name)]

    def partition_key(self, event: Any) -> str:
        """The content key of ``event`` under this bus's partition.

        Raises :class:`PSException` (never ``AttributeError``) when the
        declared ``content_key`` attribute is missing or the callable
        partition function fails -- the publish-side error path.
        """
        if self.partition == "content":
            try:
                value = getattr(event, self.content_key)  # type: ignore[arg-type]
            except AttributeError:
                raise PSException(
                    f"content-keyed sharding: event {type(event).__name__!r} has "
                    f"no attribute {self.content_key!r} (declared as this bus's "
                    "content_key); publish an event carrying the attribute or "
                    "re-partition the bus"
                ) from None
        else:
            try:
                value = self.partition(event)  # type: ignore[operator]
            except PSException:
                raise
            except BaseException as error:
                raise PSException(
                    f"partition key function {self.partition!r} failed on "
                    f"{type(event).__name__!r}: {error}"
                ) from error
        return str(value)

    def placement_key(self, root_name: str, event: Any) -> str:
        """The placement-layer key of one publish: the root name, or
        ``"<root>:<content key>"`` under intra-hierarchy partitioning (two
        hierarchies sharing key values still spread independently)."""
        if not self.intra_hierarchy:
            return root_name
        return f"{root_name}:{self.partition_key(event)}"

    def partition_index(self, root_name: str, event: Any) -> int:
        """The shard that delivers ``event`` published on ``root_name``.

        Under ``"root"`` partitioning this is the hierarchy's home shard;
        under content/callable partitioning the key is hashed together with
        the root name.
        """
        epoch = self._epoch
        return epoch.placement.index_for(self.placement_key(root_name, event))

    # ----------------------------------------------------- epoch entry/exit

    def _enter_epoch(self, keys: Sequence[str]) -> Tuple[_Epoch, bool]:
        """Register this thread as delivering ``keys``; returns the epoch to
        route by and whether a token was taken (False when nested inside a
        delivery already registered on this thread).

        Blocks while any of the keys is paused by a live migration.  The
        append/re-check/pop dance makes registration atomic against the
        epoch swap: a token that lands after its epoch was retired is backed
        out and the loop re-reads.
        """
        held: Optional[_Epoch] = getattr(self._local, "epoch", None)
        if held is not None:
            return held, False
        while True:
            epoch = self._epoch
            gate = epoch.pause
            if gate is not None and any(gate.affects(key) for key in keys):
                gate.event.wait()
                continue
            epoch.inflight.append(None)
            if self._epoch is not epoch:
                epoch.inflight.pop()
                continue
            self._local.epoch = epoch
            return epoch, True

    def _exit_epoch(self, epoch: _Epoch, token: bool) -> None:
        if token:
            self._local.epoch = None
            epoch.inflight.pop()

    # ------------------------------------------------- LocalBus facade

    def attach(self, engine: "LocalTPSEngine") -> None:
        """Attach an engine: its home shard, or every shard (intra mode)."""
        root = engine.registry.advertised_name
        with self._topology_lock:
            epoch = self._epoch
            if self.intra_hierarchy:
                for shard in epoch.shards:
                    shard.attach(engine)
            else:
                epoch.shards[epoch.placement.index_for(root)].attach(engine)
            self._attached[engine] = root

    def detach(self, engine: "LocalTPSEngine") -> None:
        """Detach an engine from every shard it was attached to."""
        root = engine.registry.advertised_name
        with self._topology_lock:
            epoch = self._epoch
            if self.intra_hierarchy:
                for shard in epoch.shards:
                    shard.detach(engine)
            else:
                epoch.shards[epoch.placement.index_for(root)].detach(engine)
            self._attached.pop(engine, None)

    def engines_for(self, root: Type[Any]) -> Tuple["LocalTPSEngine", ...]:
        """Every engine attached to the hierarchy rooted at ``root``.

        Intra-hierarchy buses keep identical attachment sets on every shard,
        so the first shard's snapshot is the answer.
        """
        epoch = self._epoch
        if self.intra_hierarchy:
            return epoch.shards[0].engines_for(root)
        name = type_name(root)
        return epoch.shards[epoch.placement.index_for(name)].engines_for(root)

    def publish(self, publisher: "LocalTPSEngine", event: Any) -> int:
        """Deliver through the event's shard (same semantics as LocalBus).

        Under ``"root"`` partitioning the shard is the publisher's home
        shard; under content/callable partitioning it is the event's --
        exactly one shard delivers each event, so delivery stays
        exactly-once and per-key ordering follows from per-shard seriality.
        Registers in the current epoch (and waits out a migration that is
        moving this very key) before touching any shard.
        """
        key = self.placement_key(publisher.registry.advertised_name, event)
        epoch, token = self._enter_epoch((key,))
        try:
            return epoch.shards[epoch.placement.index_for(key)].publish(
                publisher, event
            )
        finally:
            self._exit_epoch(epoch, token)

    # ------------------------------------------------- cross-shard batches

    def publish_all(
        self, jobs: Iterable[Tuple["LocalTPSEngine", Any]]
    ) -> List[int]:
        """Publish a batch of ``(publisher, event)`` jobs, shards in parallel.

        Jobs are grouped by the shard that delivers each event (the
        publisher's home shard under ``"root"`` partitioning, the event's
        content shard under intra-hierarchy partitioning); every group runs
        *serially in job order* -- so per-hierarchy (respectively per-key)
        ordering matches a plain publish loop -- while distinct groups run
        concurrently: the calling thread takes one group itself and the rest
        go to the bus executor.  Returns the per-job delivery counts in job
        order.  A single-shard batch runs inline on the calling thread: no
        executor, no handoff, identical cost to looping ``publish``.  A
        *nested* ``publish_all`` (reached from a subscriber callback already
        running on a pool worker) also runs fully inline -- workers never
        wait on the pool they occupy, so re-entrant batches cannot deadlock
        it.  The whole batch registers in **one** epoch: it can never
        straddle a reshard -- either it drains before the switch or it waits
        for the new placement and groups against that.
        """
        ordered = list(jobs)
        # Key resolution happens before any delivery, so a bad key fails the
        # batch closed -- and before epoch entry, so the pause gate sees the
        # full key set.
        keys = [
            self.placement_key(publisher.registry.advertised_name, event)
            for publisher, event in ordered
        ]
        epoch, token = self._enter_epoch(keys)
        try:
            results: List[int] = [0] * len(ordered)
            groups: Dict[int, List[int]] = {}
            for position, key in enumerate(keys):
                groups.setdefault(epoch.placement.index_for(key), []).append(position)

            def run_group(index: int, positions: Sequence[int]) -> None:
                previous_worker = getattr(self._local, "in_worker", False)
                previous_epoch = getattr(self._local, "epoch", None)
                self._local.in_worker = True
                # Pool workers inherit the batch's registration: a nested
                # publish from a subscriber callback must not re-enter the
                # pause gate while this batch blocks a migration's drain.
                self._local.epoch = epoch
                try:
                    shard = epoch.shards[index]
                    for position in positions:
                        publisher, event = ordered[position]
                        results[position] = shard.publish(publisher, event)
                finally:
                    self._local.in_worker = previous_worker
                    self._local.epoch = previous_epoch

            if len(groups) <= 1 or getattr(self._local, "in_worker", False):
                for index, positions in groups.items():
                    run_group(index, positions)
                return results
            # Executor creation and the submits share one critical section
            # so a concurrent shutdown() cannot retire the executor between
            # them (a shutdown arriving after the submits merely waits for
            # the batch).
            grouped = list(groups.items())
            with self._executor_lock:
                executor = self._executor
                if executor is None:
                    executor = self._executor = ThreadPoolExecutor(
                        max_workers=len(epoch.shards),
                        thread_name_prefix=f"repro-shard-{self._ordinal}",
                    )
                futures = [
                    # Deliberate (RL002 exception): submits must happen under
                    # _executor_lock so shutdown() cannot retire the executor
                    # between its creation above and the submits; run_group is
                    # our own worker shim, not user code.
                    executor.submit(run_group, index, positions)  # repro-lint: disable=RL002
                    for index, positions in grouped[1:]
                ]
            # The caller works one group instead of idling in result(); it
            # is also the only thread that ever waits on the pool.
            caller_error: Optional[BaseException] = None
            try:
                run_group(*grouped[0])
            except BaseException as error:  # noqa: BLE001 - re-raised below
                caller_error = error
            # Await every group before raising: a failing shard must not
            # leave the other shards delivering in the background (or their
            # exceptions unretrieved) while the caller already unwound.
            errors: List[BaseException] = []
            for future in futures:
                try:
                    future.result()
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    errors.append(error)
            if caller_error is not None:
                raise caller_error
            if errors:
                raise errors[0]
            return results
        finally:
            self._exit_epoch(epoch, token)

    def shutdown(self) -> None:
        """Stop the batch executor, if one was ever started (idempotent).

        Only the executor is affected: the shards, their engines and the
        plain ``publish`` path keep working, and a later ``publish_all``
        lazily builds a fresh executor.  A batch already submitted when the
        shutdown arrives runs to completion (``wait=True``); the executor
        swap is an atomic flip under the per-bus executor lock (shared with
        ``publish_all``'s submits), so a batch can never be caught between
        obtaining the executor and submitting to it -- and two concurrent
        ``shutdown`` calls (say, a migration retiring a stale-sized pool
        racing a user ``close()``) each take a *different* value out of the
        slot, at most one of them non-None, so neither can double-stop or
        resurrect the other's executor.
        """
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    # --------------------------------------------------- live resharding

    def add_shard(self) -> int:
        """Grow the running bus by one shard; returns its tuple position.

        Drain-then-switch (see the module docstring): only the keys the new
        shard captures pause, everything else keeps publishing.  Must not be
        called from inside a subscriber callback.
        """
        with self._topology_lock:
            old = self._epoch
            shard_id = self._next_shard_id
            self._next_shard_id += 1
            new_placement = old.placement.with_shards(
                old.placement.shard_ids + (shard_id,)
            )
            new_shard = LocalBus()
            new_shards = old.shards + (new_shard,)
            prepare: List[Tuple[LocalBus, "LocalTPSEngine"]] = []
            cleanup: List[Tuple[LocalBus, "LocalTPSEngine"]] = []
            if self.intra_hierarchy:
                prepare = [(new_shard, engine) for engine in self._attached]
            else:
                for engine, root in self._attached.items():
                    old_position = old.placement.index_for(root)
                    if (
                        old.placement.shard_ids[old_position]
                        != new_placement.shard_id_for(root)
                    ):
                        prepare.append(
                            (new_shards[new_placement.index_for(root)], engine)
                        )
                        cleanup.append((old.shards[old_position], engine))
            self._migrate(old, new_shards, new_placement, prepare, cleanup)
            position = len(new_shards) - 1
        # Outside the lock: retire the executor so the next batch builds one
        # sized to the new shard count (a running batch finishes first).
        self.shutdown()
        return position

    def remove_shard(self, index: Optional[int] = None) -> int:
        """Shrink the running bus by one shard (the last, or ``index``);
        returns the removed tuple position.  The removed shard's keys are
        re-homed onto the survivors; under ring placement nothing else
        moves.  Must not be called from inside a subscriber callback.
        """
        with self._topology_lock:
            old = self._epoch
            if len(old.shards) <= 1:
                raise PSException(
                    "a sharded bus cannot drop below 1 shard; "
                    f"remove_shard on a {len(old.shards)}-shard bus"
                )
            position = len(old.shards) - 1 if index is None else index
            if not 0 <= position < len(old.shards):
                raise PSException(
                    f"remove_shard index {index!r} out of range for "
                    f"{len(old.shards)} shards"
                )
            removed = old.shards[position]
            ids = old.placement.shard_ids
            new_placement = old.placement.with_shards(
                ids[:position] + ids[position + 1 :]
            )
            new_shards = old.shards[:position] + old.shards[position + 1 :]
            prepare: List[Tuple[LocalBus, "LocalTPSEngine"]] = []
            cleanup: List[Tuple[LocalBus, "LocalTPSEngine"]] = []
            if self.intra_hierarchy:
                cleanup = [(removed, engine) for engine in self._attached]
            else:
                for engine, root in self._attached.items():
                    if old.placement.index_for(root) == position:
                        prepare.append(
                            (new_shards[new_placement.index_for(root)], engine)
                        )
                        cleanup.append((removed, engine))
            self._migrate(old, new_shards, new_placement, prepare, cleanup)
        self.shutdown()
        return position

    def _migrate(
        self,
        old: _Epoch,
        new_shards: Tuple[LocalBus, ...],
        new_placement: Placement,
        prepare: List[Tuple[LocalBus, "LocalTPSEngine"]],
        cleanup: List[Tuple[LocalBus, "LocalTPSEngine"]],
    ) -> None:
        """Drain-then-switch core; caller holds ``_topology_lock``.

        ``prepare`` attachments happen *before* the commit (new owners learn
        the hierarchy while its keys are gated), ``cleanup`` detachments
        *after* (old owners stop seeing it once no delivery can reach them
        there).  The paused and final epochs share one in-flight list, so
        the next migration's drain covers stragglers from both.
        """
        gate = _PauseGate(old.placement, new_placement)
        shared_inflight: List[Any] = []
        self._epoch = _Epoch(
            old.number, old.shards, old.placement, gate, shared_inflight
        )
        try:
            # Drain: every token in the pre-pause epoch was taken by a
            # thread delivering under the old placement; affected keys must
            # all be out before anything moves.  (New publishers are either
            # gated, or unaffected and registering in the shared list.)
            while old.inflight:
                brief_pause(_DRAIN_POLL_S)
            for shard, engine in prepare:
                shard.attach(engine)
            self._epoch = _Epoch(
                old.number + 1, new_shards, new_placement, None, shared_inflight
            )
        except BaseException:
            # Restore a gate-free old epoch so the bus stays usable; tokens
            # already in the shared list stay valid for the next migration.
            self._epoch = _Epoch(
                old.number, old.shards, old.placement, None, shared_inflight
            )
            raise
        finally:
            gate.event.set()
        for shard, engine in cleanup:
            shard.detach(engine)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        epoch = self._epoch
        attached = sum(
            len(engines) for shard in epoch.shards for engines in shard._engines.values()
        )
        part = self.partition if isinstance(self.partition, str) else "callable"
        return (
            f"ShardedLocalBus(shards={len(epoch.shards)}, partition={part!r}, "
            f"placement={self.placement_mode!r}, epoch={epoch.number}, "
            f"engines={attached})"
        )


#: Default process-wide sharded bus, used when the engine supplies no bus
#: and no binding parameters.
DEFAULT_SHARDED_BUS = ShardedLocalBus()

#: Registry-built buses, keyed by the parameter set that described them, so
#: interfaces created with identical parameters share one bus and can talk.
_PARAM_BUSES: Dict[Tuple[Any, ...], ShardedLocalBus] = {}
#: Scoped registry-built buses (composite bindings scope by peer): the scope
#: is held weakly so caching a bus never pins a peer -- and through it a
#: whole simulated network -- in memory.
_SCOPED_BUSES: "weakref.WeakKeyDictionary[Any, Dict[Tuple[Any, ...], ShardedLocalBus]]" = None  # type: ignore[assignment]
_PARAM_BUSES_LOCK = threading.Lock()


def _positive_int(value: Any) -> Optional[str]:
    if isinstance(value, bool) or value < 1:
        return f"must be a positive shard count, got {value!r}"
    return None


def _partition_value(value: Any) -> Optional[str]:
    # Callable partitions are deliberately *not* accepted as binding params:
    # registry-built buses are shared by parameter equality, and two
    # identical-looking lambdas compare unequal -- call sites would silently
    # land on disjoint buses and never hear each other.  A callable partition
    # needs an explicitly constructed ShardedLocalBus passed as the engine's
    # local_bus, which makes the sharing decision the application's.
    if value in PARTITION_MODES or value in PLACEMENT_MODES:
        return None
    if callable(value):
        return (
            "callable partitions cannot describe a shared registry-built bus "
            "(two equal-looking callables compare unequal); construct "
            "ShardedLocalBus(partition=fn) yourself and pass it as local_bus"
        )
    return (
        f"must be one of {PARTITION_MODES + PLACEMENT_MODES}, got {value!r}"
    )


def _placement_value(value: Any) -> Optional[str]:
    if value in PLACEMENT_MODES:
        return None
    return f"must be one of {PLACEMENT_MODES}, got {value!r}"


def _virtual_nodes_value(value: Any) -> Optional[str]:
    if isinstance(value, bool) or value < 1:
        return f"must be a positive ring-point count, got {value!r}"
    return None


#: The parameter schema shared by the SHARDED and SHARDED+JXTA bindings.
SHARDED_BINDING_PARAMS = (
    BindingParam(
        "shards",
        (int,),
        "number of independent LocalBus shards",
        _positive_int,
        default=DEFAULT_SHARD_COUNT,
    ),
    BindingParam(
        "partition",
        (),  # untyped: the check below explains the callable rejection
        "'root' (per-hierarchy), 'content' (per event attribute), or a "
        "placement alias 'ring'/'modn'",
        _partition_value,
        default="root",
    ),
    BindingParam(
        "content_key",
        (str,),
        "event attribute to shard by (partition='content')",
    ),
    BindingParam(
        "placement",
        (str,),
        "'ring' (consistent-hash, elastic) or 'modn' (legacy CRC-32 mod N)",
        _placement_value,
        default=DEFAULT_PLACEMENT,
    ),
    BindingParam(
        "virtual_nodes",
        (int,),
        "ring points per shard (placement='ring')",
        _virtual_nodes_value,
        default=DEFAULT_VIRTUAL_NODES,
    ),
) + HISTORY_BINDING_PARAMS


def resolve_sharded_params(request: BindingRequest) -> Dict[str, Any]:
    """Normalise a request's sharding parameters into constructor kwargs.

    ``content_key`` alone implies ``partition="content"`` (the common case
    needs one parameter, not two).  Returns kwargs for
    :class:`ShardedLocalBus`; combination errors raise :class:`PSException`.
    """
    kwargs: Dict[str, Any] = {}
    if "shards" in request.params:
        kwargs["shards"] = request.param("shards")
    partition = request.param("partition")
    content_key = request.param("content_key")
    if content_key is not None and partition is None:
        partition = "content"
    if partition is not None:
        kwargs["partition"] = partition
    if content_key is not None:
        kwargs["content_key"] = content_key
    if "placement" in request.params:
        kwargs["placement"] = request.param("placement")
    if "virtual_nodes" in request.params:
        kwargs["virtual_nodes"] = request.param("virtual_nodes")
    return kwargs


def _bus_cache_key(kwargs: Dict[str, Any]) -> Tuple[Any, ...]:
    """Canonical cache key of a parameter set: two spellings of the same
    bus ("partition='modn'" vs "partition='root', placement='modn'") must
    share one bus, or call sites would silently stop hearing each other."""
    partition = kwargs.get("partition", "root")
    placement = kwargs.get("placement")
    if isinstance(partition, str) and partition in PLACEMENT_MODES:
        placement, partition = placement or partition, "root"
    return (
        kwargs.get("shards", DEFAULT_SHARD_COUNT),
        partition,
        kwargs.get("content_key"),
        placement or DEFAULT_PLACEMENT,
        kwargs.get("virtual_nodes", DEFAULT_VIRTUAL_NODES),
    )


def reset_param_buses() -> None:
    """Drop every registry-built shared bus (plain and scoped).

    Registered as the SHARDED/SHARDED+JXTA ``on_unregister`` hook: without
    it, an ``unregister_binding``/``register_binding`` cycle would leak the
    same-parameter bus cache -- a *re-registered* binding (possibly with a
    different factory or schema) would keep resolving ``shards=N`` requests
    onto buses built under the previous registration, silently wiring new
    interfaces to stale specs.  Interfaces already created keep their bus;
    only the caches are cleared, so the next parameterised request builds a
    fresh bus.  (:data:`DEFAULT_SHARDED_BUS` is deliberately untouched: it
    is process-wide compatibility surface, not a registry-built cache.)
    """
    global _SCOPED_BUSES
    with _PARAM_BUSES_LOCK:
        _PARAM_BUSES.clear()
        _SCOPED_BUSES = None


def shared_param_bus(
    request: BindingRequest, *, scope: Any = None
) -> ShardedLocalBus:
    """The bus a parameterised binding request resolves to.

    Identical parameter sets (within one ``scope``; composite bindings scope
    by peer) share one cached bus; no parameters and no scope resolve to the
    process-wide :data:`DEFAULT_SHARDED_BUS` for backwards compatibility.
    """
    global _SCOPED_BUSES
    kwargs = resolve_sharded_params(request)
    if not kwargs and scope is None:
        return DEFAULT_SHARDED_BUS
    key = _bus_cache_key(kwargs)
    with _PARAM_BUSES_LOCK:
        if scope is None:
            cache = _PARAM_BUSES
        else:
            if _SCOPED_BUSES is None:
                _SCOPED_BUSES = weakref.WeakKeyDictionary()
            cache = _SCOPED_BUSES.setdefault(scope, {})
        bus = cache.get(key)
        if bus is None:
            bus = cache[key] = ShardedLocalBus(**kwargs)
        return bus


def request_bus(request: BindingRequest, *, scope: Any = None) -> ShardedLocalBus:
    """Resolve the bus of a SHARDED(-composite) request: explicit or built."""
    bus = request.local_bus
    if bus is None:
        return shared_param_bus(request, scope=scope)
    if not isinstance(bus, ShardedLocalBus):
        raise PSException(
            "the SHARDED binding needs a ShardedLocalBus (or no bus at all); "
            f"got {type(bus).__name__}: construct the engine with "
            "TPSEngine(EventType, local_bus=ShardedLocalBus(shards=N))"
        )
    if resolve_sharded_params(request):
        raise PSException(
            "sharding parameters describe a registry-built bus; pass either "
            "binding params (shards/partition/content_key/placement/"
            "virtual_nodes) or an explicit local_bus, not both"
        )
    return bus


def _sharded_binding(request: BindingRequest) -> LocalTPSEngine:
    """The ``"SHARDED"`` binding factory.

    Uses the engine's ``local_bus`` when it already is a
    :class:`ShardedLocalBus`, builds (and caches) a bus from the binding
    parameters when given, falls back to the process-wide default otherwise,
    and rejects a plain ``LocalBus`` (silently unsharding would betray the
    binding's name).
    """
    return LocalTPSEngine(
        request.event_type,
        bus=request_bus(request),
        criteria=request.criteria,
        codec=request.codec,
        history=request.param("history", "ring"),
        history_size=request.param("history_size", DEFAULT_HISTORY_SIZE),
        history_path=request.param("history_path", "") or None,
    )


def register_sharded_binding() -> None:
    """(Re-)register the ``"SHARDED"`` binding with its canonical spec.

    Module import calls this once; tests that exercise the
    ``unregister_binding`` cache-reset path call it again to restore the
    built-in registration.
    """
    register_binding(
        "SHARDED",
        _sharded_binding,
        capabilities=("in-process", "sharded", "elastic"),
        params=SHARDED_BINDING_PARAMS,
        replace=True,
        on_unregister=reset_param_buses,
    )


register_sharded_binding()


__all__ = [
    "DEFAULT_PLACEMENT",
    "DEFAULT_SHARDED_BUS",
    "DEFAULT_SHARD_COUNT",
    "PARTITION_MODES",
    "SHARDED_BINDING_PARAMS",
    "ShardedLocalBus",
    "register_sharded_binding",
    "request_bus",
    "reset_param_buses",
    "resolve_sharded_params",
    "shared_param_bus",
]
