"""Tests for advertisements and the advertisement factory (repro.jxta.advertisement)."""

from __future__ import annotations

import pytest

from repro.jxta.advertisement import (
    Advertisement,
    AdvertisementFactory,
    ModuleAdvertisement,
    PeerAdvertisement,
    PeerGroupAdvertisement,
    PipeAdvertisement,
    ServiceAdvertisement,
)
from repro.jxta.errors import AdvertisementError
from repro.jxta.ids import PeerGroupID, PeerID, PipeID


class TestAgeAndExpiry:
    def test_age_and_expiry(self):
        advertisement = Advertisement(name="thing", created_at=100.0)
        advertisement.lifetime = 50.0
        advertisement.expiration = 10.0
        assert advertisement.age(120.0) == pytest.approx(20.0)
        assert not advertisement.expired(120.0)
        assert advertisement.expired(151.0)
        assert advertisement.expired(111.0, remote=True)

    def test_age_never_negative(self):
        advertisement = Advertisement(created_at=100.0)
        assert advertisement.age(50.0) == 0.0


class TestMatching:
    def test_match_by_name_and_prefix(self):
        advertisement = Advertisement(name="PS$SkiRental")
        assert advertisement.matches("Name", "PS$SkiRental")
        assert advertisement.matches("Name", "PS$*")
        assert not advertisement.matches("Name", "Other*")
        assert advertisement.matches(None, None)
        assert advertisement.matches("Name", None)

    def test_match_unknown_attribute(self):
        advertisement = Advertisement(name="x")
        assert not advertisement.matches("Color", "blue")

    def test_peer_group_matches_gid(self):
        advertisement = PeerGroupAdvertisement(name="g")
        assert advertisement.matches("GID", advertisement.group_id.to_urn())

    def test_peer_matches_pid(self):
        advertisement = PeerAdvertisement(name="p")
        assert advertisement.matches("PID", advertisement.peer_id.to_urn())


class TestXmlRoundTrips:
    def test_peer_advertisement(self):
        advertisement = PeerAdvertisement(
            peer_id=PeerID(),
            name="workstation-1",
            endpoints=["tcp://host-1", "http://host-1"],
            is_rendezvous=True,
            is_router=False,
        )
        restored = AdvertisementFactory.from_document(advertisement.to_document())
        assert isinstance(restored, PeerAdvertisement)
        assert restored.peer_id == advertisement.peer_id
        assert restored.endpoints == advertisement.endpoints
        assert restored.is_rendezvous and not restored.is_router

    def test_pipe_advertisement(self):
        advertisement = PipeAdvertisement(pipe_id=PipeID(), name="SkiRental", pipe_kind="JxtaWire")
        restored = AdvertisementFactory.from_document(advertisement.to_document())
        assert isinstance(restored, PipeAdvertisement)
        assert restored.pipe_id == advertisement.pipe_id
        assert restored.pipe_kind == "JxtaWire"

    def test_service_advertisement_with_pipe(self):
        pipe = PipeAdvertisement(name="SkiRental")
        service = ServiceAdvertisement(
            name="jxta.service.wire",
            version="2.1",
            uri="urn:jxta:wire",
            code="WireService",
            security="none",
            keywords="SkiRental",
            pipe=pipe,
            params=["p1", "p2"],
        )
        restored = AdvertisementFactory.from_document(service.to_document())
        assert isinstance(restored, ServiceAdvertisement)
        assert restored.version == "2.1"
        assert restored.get_params() == ["p1", "p2"]
        assert restored.get_pipe().pipe_id == pipe.pipe_id

    def test_peer_group_advertisement_with_services(self):
        pipe = PipeAdvertisement(name="SkiRental")
        group = PeerGroupAdvertisement(
            group_id=PeerGroupID(),
            creator_peer_id=PeerID(),
            name="PS$SkiRental",
            description="ski rental group",
            membership_password="secret",
        )
        group.add_service(
            "jxta.service.wire", ServiceAdvertisement(name="jxta.service.wire", pipe=pipe)
        )
        restored = AdvertisementFactory.from_document(group.to_document())
        assert isinstance(restored, PeerGroupAdvertisement)
        assert restored.get_gid() == group.group_id
        assert restored.get_pid() == group.creator_peer_id
        assert restored.membership_password == "secret"
        wire = restored.service("jxta.service.wire")
        assert wire is not None
        assert wire.get_pipe().name == "SkiRental"

    def test_module_advertisement(self):
        advertisement = ModuleAdvertisement(name="resolver-impl", provider="repro")
        restored = AdvertisementFactory.from_document(advertisement.to_document())
        assert isinstance(restored, ModuleAdvertisement)
        assert restored.module_id == advertisement.module_id
        assert restored.provider == "repro"

    def test_document_size_is_positive(self):
        assert PeerAdvertisement(name="x").document_size > 50


class TestJxtaStyleAccessors:
    def test_peer_group_setters(self):
        advertisement = PeerGroupAdvertisement()
        peer_id = PeerID()
        group_id = PeerGroupID()
        advertisement.set_pid(peer_id.to_urn())
        advertisement.set_gid(group_id.to_urn())
        advertisement.set_name("PS$X")
        advertisement.set_app("app")
        advertisement.set_group_impl("impl")
        advertisement.set_is_rendezvous(True)
        assert advertisement.get_pid() == peer_id
        assert advertisement.get_gid() == group_id
        assert advertisement.get_app() == "app"
        assert advertisement.get_group_impl() == "impl"
        assert advertisement.is_rendezvous

    def test_service_setters(self):
        service = ServiceAdvertisement()
        pipe = PipeAdvertisement(name="X")
        service.set_name("wire")
        service.set_version("1.0")
        service.set_uri("u")
        service.set_code("c")
        service.set_security("none")
        service.set_keywords("X")
        service.set_pipe(pipe)
        service.set_params(["a"])
        assert service.get_pipe() is pipe
        assert service.get_params() == ["a"]

    def test_unique_keys(self):
        a = PeerGroupAdvertisement()
        b = PeerGroupAdvertisement()
        assert a.unique_key() != b.unique_key()
        assert a.unique_key() == a.unique_key()
        plain = Advertisement(name="n")
        assert "n" in plain.unique_key()


class TestFactory:
    def test_new_advertisement_by_type(self):
        advertisement = AdvertisementFactory.new_advertisement("jxta:PipeAdvertisement")
        assert isinstance(advertisement, PipeAdvertisement)

    def test_unknown_type_rejected(self):
        with pytest.raises(AdvertisementError):
            AdvertisementFactory.new_advertisement("jxta:Nope")

    def test_unknown_document_type_rejected(self):
        with pytest.raises(AdvertisementError):
            AdvertisementFactory.from_document('<?xml version="1.0"?><X type="jxta:Nope"/>')

    def test_known_types_registered(self):
        known = AdvertisementFactory.known_types()
        for name in ("jxta:PA", "jxta:PGA", "jxta:PipeAdvertisement", "jxta:ServiceAdvertisement"):
            assert name in known
