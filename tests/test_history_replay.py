"""PR 10 replay tests: resumable streams, ring/log conformance, catch-up.

Three layers of the durable-history story:

* **Resumable streams** -- ``tps.stream(from_offset=...)`` replays retained
  history, then follows live events, exactly-once and in offset order;
  ``resume(offset)`` repositions the cursor.  Threaded and asyncio flavours.
* **Conformance** -- every binding (LOCAL, SHARDED, JXTA, SHARDED+JXTA,
  ASYNC) answers its history queries identically with ``history="ring"``
  and ``history="log"``.
* **Catch-up** -- a killed-and-restarted peer with a ``LogHistory``-backed
  engine re-seeds its duplicate filter and per-source offsets from disk,
  requests ``history_since(offset)`` over the wire, and observes exactly
  the missed events exactly once (the acceptance-criterion integration
  test); under :meth:`FaultPlan.chaos` the JXTA received history records
  exactly what the subscriber observed -- no duplicates, no phantom order.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.apps.skirental.types import SkiRental
from repro.core import TPSConfig, TPSEngine
from repro.core.exceptions import PSException
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.sharded_engine import ShardedLocalBus
from repro.jxta.platform import JxtaNetworkBuilder
from repro.net.faults import FaultPlan

pytestmark = [pytest.mark.durability]


def _offer(index: int) -> SkiRental:
    return SkiRental(f"shop-{index}", float(index), "Salomon", 7)


def _shops(events) -> list:
    return [event.shop for event in events]


class TestResumableStreams:
    def test_from_offset_replays_then_follows_live(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(SkiRental, bus=bus)
        subscriber = LocalTPSEngine(SkiRental, bus=bus)
        subscriber.subscribe(lambda event: None)  # populate received history
        for index in range(5):
            publisher.publish(_offer(index))
        stream = subscriber.stream(from_offset=2)
        assert stream.resumable
        assert _shops(stream.drain()) == ["shop-2", "shop-3", "shop-4"]
        publisher.publish(_offer(5))
        assert _shops(stream.drain()) == ["shop-5"]
        assert stream.offset == subscriber.history_offset == 6
        stream.close()
        publisher.close()
        subscriber.close()

    def test_from_current_offset_skips_the_backlog(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(SkiRental, bus=bus)
        subscriber = LocalTPSEngine(SkiRental, bus=bus)
        subscriber.subscribe(lambda event: None)
        for index in range(3):
            publisher.publish(_offer(index))
        stream = subscriber.stream(from_offset=subscriber.history_offset)
        assert stream.drain() == []
        publisher.publish(_offer(9))
        assert _shops(stream.drain()) == ["shop-9"]
        publisher.close()
        subscriber.close()

    def test_resume_rewinds_and_redelivers(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(SkiRental, bus=bus)
        subscriber = LocalTPSEngine(SkiRental, bus=bus)
        subscriber.subscribe(lambda event: None)
        for index in range(4):
            publisher.publish(_offer(index))
        stream = subscriber.stream(from_offset=0)
        assert len(stream.drain()) == 4
        stream.resume(1)
        assert _shops(stream.drain()) == ["shop-1", "shop-2", "shop-3"]
        # resume discards anything buffered (no duplication on re-pull).
        publisher.publish(_offer(4))
        stream.resume(3)
        assert _shops(stream.drain()) == ["shop-3", "shop-4"]
        publisher.close()
        subscriber.close()

    def test_live_streams_are_not_resumable(self):
        subscriber = LocalTPSEngine(SkiRental, bus=LocalBus())
        stream = subscriber.stream()
        assert not stream.resumable
        with pytest.raises(PSException, match="from_offset"):
            stream.resume(0)
        subscriber.close()

    def test_bounded_retention_gap_is_skipped(self):
        """Evicted offsets are silently absent -- documented contract."""
        bus = LocalBus()
        publisher = LocalTPSEngine(SkiRental, bus=bus)
        subscriber = LocalTPSEngine(SkiRental, bus=bus, history_size=3)
        subscriber.subscribe(lambda event: None)
        for index in range(10):
            publisher.publish(_offer(index))
        stream = subscriber.stream(from_offset=0)
        assert _shops(stream.drain()) == ["shop-7", "shop-8", "shop-9"]
        publisher.close()
        subscriber.close()

    def test_pull_predicate_filters_at_replay_time(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(SkiRental, bus=bus)
        subscriber = LocalTPSEngine(SkiRental, bus=bus)
        subscriber.subscribe(lambda event: None)
        for index in range(6):
            publisher.publish(_offer(index))
        stream = (
            subscriber.subscription()
            .where(lambda offer: offer.price >= 3.0)
            .stream(from_offset=0)
        )
        assert _shops(stream.drain()) == ["shop-3", "shop-4", "shop-5"]
        publisher.publish(_offer(1))  # filtered out live too
        publisher.publish(_offer(7))
        assert _shops(stream.drain()) == ["shop-7"]
        # The cursor consumed the filtered entries as well.
        assert stream.offset == subscriber.history_offset
        publisher.close()
        subscriber.close()

    def test_log_backed_stream_replays_across_engine_restart(self, tmp_path):
        """The stream resumes from durable history written by a previous
        engine life (same store directory, fresh engine)."""
        bus = LocalBus()
        path = str(tmp_path / "sub")
        publisher = LocalTPSEngine(SkiRental, bus=bus)
        subscriber = LocalTPSEngine(
            SkiRental, bus=bus, history="log", history_path=path
        )
        subscriber.subscribe(lambda event: None)
        for index in range(4):
            publisher.publish(_offer(index))
        subscriber.close()
        reborn = LocalTPSEngine(SkiRental, bus=bus, history="log", history_path=path)
        assert reborn.history_offset == 4
        stream = reborn.stream(from_offset=1)
        assert _shops(stream.drain()) == ["shop-1", "shop-2", "shop-3"]
        reborn.subscribe(lambda event: None)
        publisher.publish(_offer(4))
        assert _shops(stream.drain()) == ["shop-4"]
        publisher.close()
        reborn.close()

    @pytest.mark.asyncio
    def test_async_stream_from_offset_and_resume(self):
        async def main():
            engine = TPSEngine(SkiRental)
            publisher = engine.new_interface("ASYNC")
            subscriber = engine.new_interface("ASYNC")
            subscriber.subscribe(lambda event: None)
            for index in range(5):
                await publisher.publish(_offer(index))
            stream = subscriber.stream(from_offset=2)
            assert stream.resumable
            await asyncio.sleep(0)  # let the prefill task pump
            assert _shops(stream.drain()) == ["shop-2", "shop-3", "shop-4"]
            await publisher.publish(_offer(5))
            assert _shops(stream.drain()) == ["shop-5"]
            await stream.resume(4)
            assert _shops(stream.drain()) == ["shop-4", "shop-5"]
            live = subscriber.stream()
            with pytest.raises(PSException, match="from_offset"):
                await live.resume(0)
            await publisher.close()
            await subscriber.close()
            return True

        loop = asyncio.new_event_loop()
        try:
            assert loop.run_until_complete(main())
        finally:
            loop.close()


class _HistoryReport:
    """What one pub/sub run looked like through the history queries."""

    def __init__(self, publisher, subscriber):
        self.sent = _shops(publisher.objects_sent())
        self.received = _shops(subscriber.objects_received())
        self.sent_since = [
            (offset, event.shop) for offset, event in publisher.sent_history_since(0)
        ]
        self.received_since = [
            (offset, event.shop) for offset, event in subscriber.history_since(2)
        ]
        self.offsets = (publisher.sent_offset, subscriber.history_offset)

    def as_tuple(self):
        return (
            self.sent,
            self.received,
            self.sent_since,
            self.received_since,
            self.offsets,
        )


@pytest.mark.slow
class TestRingLogConformance:
    """All five bindings answer history queries identically for ring/log."""

    EVENTS = 6

    def _publish_all(self, publisher, pump=None):
        for index in range(self.EVENTS):
            publisher.publish(_offer(index))
            if pump is not None:
                pump()

    def _run_local(self, history, tmp_path):
        bus = LocalBus()
        kwargs = {"history": history}
        if history == "log":
            kwargs["history_path"] = str(tmp_path / "local")
        publisher = LocalTPSEngine(SkiRental, bus=bus, **kwargs)
        subscriber = LocalTPSEngine(
            SkiRental,
            bus=bus,
            history=history,
            history_path=str(tmp_path / "local-sub") if history == "log" else None,
        )
        subscriber.subscribe(lambda event: None)
        self._publish_all(publisher)
        report = _HistoryReport(publisher, subscriber)
        publisher.close()
        subscriber.close()
        return report

    def _run_sharded(self, history, tmp_path):
        bus = ShardedLocalBus(shards=2)
        params = {"history": history}
        if history == "log":
            params["history_path"] = str(tmp_path / "shard-pub")
        publisher = TPSEngine(SkiRental, local_bus=bus).new_interface(
            "SHARDED", **params
        )
        sub_params = {"history": history}
        if history == "log":
            sub_params["history_path"] = str(tmp_path / "shard-sub")
        subscriber = TPSEngine(SkiRental, local_bus=bus).new_interface(
            "SHARDED", **sub_params
        )
        subscriber.subscribe(lambda event: None)
        self._publish_all(publisher)
        report = _HistoryReport(publisher, subscriber)
        publisher.close()
        subscriber.close()
        bus.shutdown()
        return report

    def _run_async(self, history, tmp_path):
        async def main():
            params = {"history": history}
            if history == "log":
                params["history_path"] = str(tmp_path / "async-pub")
            publisher = TPSEngine(SkiRental).new_interface("ASYNC", **params)
            sub_params = {"history": history}
            if history == "log":
                sub_params["history_path"] = str(tmp_path / "async-sub")
            subscriber = TPSEngine(SkiRental).new_interface("ASYNC", **sub_params)
            subscriber.subscribe(lambda event: None)
            for index in range(self.EVENTS):
                await publisher.publish(_offer(index))
            report = _HistoryReport(publisher, subscriber)
            await publisher.close()
            await subscriber.close()
            return report

        loop = asyncio.new_event_loop()
        try:
            return loop.run_until_complete(main())
        finally:
            loop.close()

    def _run_wire(self, binding, history, tmp_path):
        builder = JxtaNetworkBuilder(seed=20021013)
        builder.add_rendezvous("rdv-0")
        pub_peer = builder.add_peer("hist-pub")
        sub_peer = builder.add_peer("hist-sub")
        builder.settle(rounds=6)
        pub_config = TPSConfig(
            search_timeout=2.0,
            history=history,
            history_path=str(tmp_path / "wire-pub") if history == "log" else "",
        )
        sub_config = TPSConfig(
            search_timeout=4.0,
            create_if_missing=False,
            history=history,
            history_path=str(tmp_path / "wire-sub") if history == "log" else "",
        )
        publisher = TPSEngine(SkiRental, peer=pub_peer, config=pub_config).new_interface(
            binding
        )
        builder.settle(rounds=8)
        subscriber = TPSEngine(SkiRental, peer=sub_peer, config=sub_config).new_interface(
            binding
        )
        subscriber.subscribe(lambda event: None)
        builder.settle(rounds=14)
        self._publish_all(publisher, pump=lambda: builder.settle(rounds=2))
        builder.settle(rounds=6)
        report = _HistoryReport(publisher, subscriber)
        publisher.close()
        subscriber.close()
        return report

    @pytest.mark.parametrize(
        "binding", ["LOCAL", "SHARDED", "ASYNC", "JXTA", "SHARDED+JXTA"]
    )
    def test_ring_and_log_answer_identically(self, binding, tmp_path):
        runners = {
            "LOCAL": self._run_local,
            "SHARDED": self._run_sharded,
            "ASYNC": self._run_async,
            "JXTA": lambda history, path: self._run_wire("JXTA", history, path),
            "SHARDED+JXTA": lambda history, path: self._run_wire(
                "SHARDED+JXTA", history, path
            ),
        }
        ring = runners[binding]("ring", tmp_path / "ring")
        log = runners[binding]("log", tmp_path / "log")
        assert ring.as_tuple() == log.as_tuple()
        # And both actually saw the traffic.
        assert ring.sent == [f"shop-{i}" for i in range(self.EVENTS)]
        assert sorted(ring.received) == sorted(ring.sent)


@pytest.mark.slow
@pytest.mark.chaos
class TestChaosHistoryIntegrity:
    """Satellite 3: JXTA history records exactly what the subscriber saw."""

    def test_history_matches_observed_delivery_under_chaos(self):
        builder = JxtaNetworkBuilder(seed=20020713)
        builder.add_rendezvous("rdv-0")
        pub_peer = builder.add_peer("chaos-pub")
        sub_peer = builder.add_peer("chaos-sub")
        builder.settle(rounds=6)
        builder.network.fault_plan = FaultPlan.chaos(seed=20020713)
        publisher = TPSEngine(
            SkiRental,
            peer=pub_peer,
            config=TPSConfig(search_timeout=2.0, reliable_delivery=True),
        ).new_interface("JXTA")
        subscriber = TPSEngine(
            SkiRental,
            peer=sub_peer,
            config=TPSConfig(
                search_timeout=4.0, create_if_missing=False, reliable_delivery=True
            ),
        ).new_interface("JXTA")
        observed = []
        subscriber.subscribe(observed.append)
        builder.settle(rounds=14)
        for index in range(25):
            publisher.publish(_offer(index))
            builder.settle(rounds=3)
        builder.settle(rounds=30)
        history = subscriber.objects_received()
        # The history is exactly the observed delivery sequence: an event
        # appears in the history iff the subscriber's callback saw it, in
        # the same order (append happens immediately before dispatch, after
        # the duplicate filter).
        assert _shops(history) == _shops(observed)
        # And chaos duplication never leaked through: each event at most once.
        assert len(set(_shops(history))) == len(history)
        # Reliable delivery got everything through despite the drops.
        assert sorted(_shops(history)) == sorted(f"shop-{i}" for i in range(25))
        publisher.close()
        subscriber.close()


@pytest.mark.slow
class TestWireCatchUp:
    """The acceptance-criterion integration test: kill, restart, replay."""

    def _network(self):
        builder = JxtaNetworkBuilder(seed=19991224)
        builder.add_rendezvous("rdv-0")
        pub_peer = builder.add_peer("durable-pub")
        sub_peer = builder.add_peer("durable-sub")
        builder.settle(rounds=6)
        return builder, pub_peer, sub_peer

    def _subscriber(self, sub_peer, path):
        config = TPSConfig(
            search_timeout=2.0,
            create_if_missing=False,
            reliable_delivery=True,
            history="log",
            history_path=path,
        )
        interface = TPSEngine(SkiRental, peer=sub_peer, config=config).new_interface(
            "JXTA"
        )
        inbox = []
        interface.subscribe(inbox.append)
        return interface, inbox

    def test_restarted_peer_replays_missed_events_exactly_once(self, tmp_path):
        builder, pub_peer, sub_peer = self._network()
        pub_config = TPSConfig(
            search_timeout=2.0,
            serve_history=True,
            reliable_delivery=True,
            history="log",
            history_path=str(tmp_path / "pub"),
        )
        publisher = TPSEngine(SkiRental, peer=pub_peer, config=pub_config).new_interface(
            "JXTA"
        )
        builder.settle(rounds=8)
        sub_path = str(tmp_path / "sub")
        subscriber, inbox = self._subscriber(sub_peer, sub_path)
        builder.settle(rounds=14)

        publisher.publish(_offer(0))
        builder.settle(rounds=4)
        publisher.publish(_offer(1))
        builder.settle(rounds=8)
        assert _shops(inbox) == ["shop-0", "shop-1"]

        # Kill the subscriber (flushes its durable stores)...
        subscriber.close()
        # ...and publish what it will miss.
        publisher.publish(_offer(2))
        builder.settle(rounds=4)
        publisher.publish(_offer(3))
        builder.settle(rounds=8)

        # Restart: same store directory, fresh engine.  Construction
        # re-seeds the duplicate filter and per-source offsets from disk
        # and schedules one automatic catch-up request.
        reborn, inbox2 = self._subscriber(sub_peer, sub_path)
        assert reborn.history_offset == 2  # the persisted prefix
        builder.settle(rounds=20)

        # Exactly the missed events arrived, exactly once, in order.
        assert _shops(inbox2) == ["shop-2", "shop-3"]
        # The durable history now holds the complete stream across both
        # engine lives, resumable by offset.
        assert _shops(reborn.objects_received()) == [
            "shop-0",
            "shop-1",
            "shop-2",
            "shop-3",
        ]
        assert [
            event.shop for _, event in reborn.history_since(2)
        ] == ["shop-2", "shop-3"]
        publisher.close()
        reborn.close()

    def test_explicit_request_history_is_idempotent(self, tmp_path):
        """A second catch-up request replays nothing new (dedup holds)."""
        builder, pub_peer, sub_peer = self._network()
        pub_config = TPSConfig(
            search_timeout=2.0,
            serve_history=True,
            reliable_delivery=True,
            history="log",
            history_path=str(tmp_path / "pub"),
        )
        publisher = TPSEngine(SkiRental, peer=pub_peer, config=pub_config).new_interface(
            "JXTA"
        )
        builder.settle(rounds=8)
        subscriber, inbox = self._subscriber(sub_peer, str(tmp_path / "sub"))
        builder.settle(rounds=14)
        for index in range(3):
            publisher.publish(_offer(index))
        builder.settle(rounds=8)
        assert len(inbox) == 3
        pipes = subscriber.request_history(since=0)
        assert pipes >= 1
        builder.settle(rounds=10)
        # Replay happened (the publisher served the request) but every
        # replayed message was recognised by its original id and dropped.
        assert _shops(inbox) == ["shop-0", "shop-1", "shop-2"]
        assert len(subscriber.objects_received()) == 3
        publisher.close()
        subscriber.close()

    def test_composite_recover_hook_survives_unattached_wire(self):
        """The membership 'recover' branch must not raise before the wire
        is attached (catch-up is best-effort there)."""
        builder = JxtaNetworkBuilder(seed=7)
        peer = builder.add_peer("solo", connect_rendezvous=False)
        engine = TPSEngine(SkiRental, peer=peer).new_interface(
            "SHARDED+JXTA", shards=2
        )
        engine._on_membership_event("recover", "urn:jxta:nowhere")  # no raise
        engine._on_membership_event("suspect", "urn:jxta:nowhere")
        engine.close()
