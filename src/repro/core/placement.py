"""Placement layer: which shard owns a partition key.

Extracted from :mod:`repro.core.sharded_engine` (which used to hard-code
``zlib.crc32(key) % shards``) so that *where a key lives* is a first-class,
swappable policy instead of an arithmetic detail of the bus.  A placement is
a pure, immutable value:

* it maps a partition key (a hierarchy-root name, or ``"<root>:<key>"``
  under content-keyed sharding) to a **position** in a tuple of shards;
* it carries the *stable shard ids* backing those positions, so that two
  placements over different shard sets can be compared key-by-key ("did this
  key move?") -- the primitive live resharding is built on;
* deriving a placement for a grown/shrunk shard set (:meth:`Placement.
  with_shards`) returns a new object; nothing is ever mutated in place.
  The sharded bus swaps whole placements atomically inside its ring epochs,
  exactly like the PR 1/PR 4 immutable route-row snapshots.

Two implementations:

``ModNPlacement`` (``mode="modn"``)
    The legacy CRC-32 mod-N mapping, bit-for-bit identical to the pre-PR 7
    hard-coded behaviour.  Kept as a compatibility mode so the PR 5 property
    tests and the existing BENCH sections retain their baselines.  Adding a
    shard under mod-N reshuffles *almost every* key -- which is exactly why
    it cannot be the default of an elastic bus.

``RingPlacement`` (``mode="ring"``, the default)
    A consistent-hash ring with virtual nodes.  Every shard id projects
    ``virtual_nodes`` points onto the 2**32 CRC-32 ring; a key is owned by
    the first point at or after its own hash (wrapping).  Assignment is a
    pure function of ``(shard_ids, virtual_nodes, key)`` -- stable across
    calls, buses and processes -- and adding one shard to N only captures
    the key ranges that fall to the new shard's points: in expectation
    ``1/(N+1)`` of the keyspace moves (modulo virtual-node variance), and no
    key ever moves *between two surviving shards*.

Hashing is CRC-32 throughout (:func:`stable_hash`), not Python's ``hash()``:
the interpreter randomises string hashes per process, and placement must
agree across processes and runs (the property the PR 5 tests pin).
"""

from __future__ import annotations

import zlib
from bisect import bisect_left
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.exceptions import PSException

#: Ring points projected per shard id.  64 keeps the per-shard load within
#: a few percent of uniform for the shard counts this bus targets (2..64)
#: while a full ring rebuild stays microseconds.
DEFAULT_VIRTUAL_NODES = 64

#: The placement modes :func:`make_placement` accepts.
PLACEMENT_MODES = ("ring", "modn")

_RING_SPAN = 1 << 32


def stable_hash(key: str) -> int:
    """CRC-32 of ``key`` -- the stable, cross-process hash placement uses."""
    return zlib.crc32(key.encode("utf-8"))


class Placement:
    """Immutable key→shard mapping over a tuple of stable shard ids.

    ``index_for`` answers in *positions* (indexes into the parallel shard
    tuple an epoch holds); ``shard_id_for`` answers in *stable ids* (what
    movement comparisons need, because positions shift when the tuple
    shrinks).  Subclasses implement :meth:`_position_of`.
    """

    mode: str = "?"

    def __init__(self, shard_ids: Sequence[int]) -> None:
        ids = tuple(int(shard_id) for shard_id in shard_ids)
        if not ids:
            raise PSException("a placement needs at least one shard id")
        if len(set(ids)) != len(ids):
            raise PSException(f"duplicate shard ids in placement: {ids!r}")
        self.shard_ids: Tuple[int, ...] = ids

    # -------------------------------------------------------------- mapping

    def _position_of(self, key_hash: int) -> int:
        raise NotImplementedError

    def index_for(self, key: str) -> int:
        """Position (into the epoch's shard tuple) owning ``key``."""
        return self._position_of(stable_hash(key))

    def shard_id_for(self, key: str) -> int:
        """Stable shard id owning ``key`` (position-independent)."""
        return self.shard_ids[self.index_for(key)]

    # ------------------------------------------------------------ derivation

    def with_shards(self, shard_ids: Sequence[int]) -> "Placement":
        """The same policy over a different shard-id tuple."""
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.shard_ids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(shard_ids={self.shard_ids!r})"


class ModNPlacement(Placement):
    """Legacy compatibility mapping: ``crc32(key) % N`` over positions.

    Identical to the pre-placement-layer ``ShardedLocalBus`` arithmetic, so
    buses built with ``placement="modn"`` assign every key exactly where the
    PR 5 bus did.  Nearly all keys move when N changes -- tolerable only
    because this mode exists for baseline continuity, not elasticity.
    """

    mode = "modn"

    def _position_of(self, key_hash: int) -> int:
        return key_hash % len(self.shard_ids)

    def with_shards(self, shard_ids: Sequence[int]) -> "ModNPlacement":
        return ModNPlacement(shard_ids)


class RingPlacement(Placement):
    """Consistent-hash ring with virtual nodes over stable shard ids.

    Shard id ``s`` projects points ``crc32("shard-{s}#vnode-{v}")`` for
    ``v`` in ``range(virtual_nodes)``; a key belongs to the first point
    clockwise from its hash.  Because points depend only on the shard *id*
    (never on the shard count or tuple position), growing or shrinking the
    shard set leaves every surviving shard's points exactly where they were
    -- the bounded-movement property.
    """

    mode = "ring"

    def __init__(
        self,
        shard_ids: Sequence[int],
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> None:
        super().__init__(shard_ids)
        if isinstance(virtual_nodes, bool) or not isinstance(virtual_nodes, int):
            raise PSException(
                f"virtual_nodes must be an int >= 1, got {virtual_nodes!r}"
            )
        if virtual_nodes < 1:
            raise PSException(
                f"virtual_nodes must be an int >= 1, got {virtual_nodes!r}"
            )
        self.virtual_nodes = virtual_nodes
        positions: Dict[int, int] = {
            shard_id: position for position, shard_id in enumerate(self.shard_ids)
        }
        # Sort by (point, shard id): the id tie-break makes point collisions
        # (possible: CRC-32 is 32 bits) deterministic across builds.
        ring: List[Tuple[int, int]] = sorted(
            (stable_hash(f"shard-{shard_id}#vnode-{vnode}"), positions[shard_id])
            for shard_id in self.shard_ids
            for vnode in range(virtual_nodes)
        )
        self._points: Tuple[int, ...] = tuple(point for point, _ in ring)
        self._owners: Tuple[int, ...] = tuple(owner for _, owner in ring)

    def _position_of(self, key_hash: int) -> int:
        points = self._points
        cursor = bisect_left(points, key_hash % _RING_SPAN)
        if cursor == len(points):  # wrap past the last point
            cursor = 0
        return self._owners[cursor]

    def with_shards(self, shard_ids: Sequence[int]) -> "RingPlacement":
        return RingPlacement(shard_ids, self.virtual_nodes)


def make_placement(
    mode: str,
    shard_ids: Sequence[int],
    *,
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
) -> Placement:
    """Build a placement by mode name (binding-parameter entry point)."""
    if mode == "ring":
        return RingPlacement(shard_ids, virtual_nodes)
    if mode == "modn":
        return ModNPlacement(shard_ids)
    raise PSException(
        f"unknown placement mode {mode!r}; expected one of {PLACEMENT_MODES}"
    )


def moved_keys(old: Placement, new: Placement, keys: Iterable[str]) -> List[str]:
    """The subset of ``keys`` whose owning *shard id* differs between
    ``old`` and ``new`` -- the keys a live reshard must pause and migrate.
    Compared by stable id, not position: a tuple shrink renumbers positions
    without moving the keys of surviving shards.
    """
    return [
        key for key in keys if old.shard_id_for(key) != new.shard_id_for(key)
    ]


__all__ = [
    "DEFAULT_VIRTUAL_NODES",
    "PLACEMENT_MODES",
    "ModNPlacement",
    "Placement",
    "RingPlacement",
    "make_placement",
    "moved_keys",
    "stable_hash",
]
