"""Version information for the TPS reproduction package."""

__version__ = "1.0.0"
