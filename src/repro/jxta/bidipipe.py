"""Bi-directional pipes.

The paper lists them among the pipe variants JXTA was growing at the time:
"The basic pipes are asynchronous and uni-directionnal but some other
variants are available (e.g., the very new bi-directional pipes or the
many-to-many pipes (called wire))."

A bi-directional pipe is built from two unicast pipes and a tiny handshake:

* the *accepting* peer opens a :class:`BidirectionalPipeListener` on a pipe
  advertisement (the "server" pipe) and publishes that advertisement like any
  other resource;
* a *connecting* peer calls :func:`connect`: it creates a private return pipe,
  sends a CONNECT message over the server pipe carrying the return pipe's
  advertisement, and gets a :class:`BidirectionalPipe` back;
* the accepting side answers with an ACCEPT message over the return pipe and
  obtains its own :class:`BidirectionalPipe` for the same session.

Both ends can then ``send`` application messages and register receive
listeners; sessions are identified so one listener can serve many clients.

The TPS layer does not use bi-directional pipes (its interaction is
deliberately decoupled); they exist as part of the substrate's completeness
and are exercised by the test suite and available to applications that need
a request/response channel below the TPS abstraction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.jxta.advertisement import AdvertisementFactory, PipeAdvertisement
from repro.jxta.errors import AdvertisementError, PipeError
from repro.jxta.ids import PeerID, PipeID
from repro.jxta.message import Message
from repro.jxta.peergroup import PeerGroup
from repro.jxta.pipes import InputPipe, OutputPipe, PipeKind

_session_counter = itertools.count(1)

#: Message element names of the handshake and data frames.
_KIND = "BidiKind"
_SESSION = "BidiSession"
_RETURN_ADV = "BidiReturnAdvertisement"
_PEER = "BidiPeer"

_CONNECT = "connect"
_ACCEPT = "accept"
_DATA = "data"
_CLOSE = "close"

#: Receive listeners get ``(message, session_id)``.
BidiListener = Callable[[Message, str], None]


class BidirectionalPipe:
    """One end of an established bi-directional session."""

    def __init__(
        self,
        group: PeerGroup,
        session_id: str,
        remote_peer: PeerID,
        send_pipe: OutputPipe,
        receive_pipe: Optional[InputPipe],
    ) -> None:
        self.group = group
        self.session_id = session_id
        self.remote_peer = remote_peer
        self._send_pipe = send_pipe
        self._receive_pipe = receive_pipe
        self._listeners: List[BidiListener] = []
        self.closed = False
        self.received: List[Message] = []

    # ------------------------------------------------------------ listeners

    def add_listener(self, listener: BidiListener) -> None:
        """Register a callback invoked for every received data message."""
        self._listeners.append(listener)

    def _deliver(self, message: Message) -> None:
        if self.closed:
            return
        self.received.append(message)
        for listener in list(self._listeners):
            listener(message, self.session_id)

    # ----------------------------------------------------------------- I/O

    def send(self, message: Message) -> int:
        """Send a data message to the other end of the session."""
        if self.closed:
            raise PipeError("cannot send on a closed bidirectional pipe")
        frame = message.dup()
        frame.add(_KIND, _DATA)
        frame.add(_SESSION, self.session_id)
        frame.add(_PEER, self.group.peer.peer_id.to_urn())
        return self._send_pipe.send(frame)

    def send_text(self, name: str, text: str) -> int:
        """Convenience: send a single-element text message."""
        message = Message()
        message.add(name, text)
        return self.send(message)

    def close(self) -> None:
        """Close this end and notify the other end.  Idempotent."""
        if self.closed:
            return
        notice = Message()
        notice.add(_KIND, _CLOSE)
        notice.add(_SESSION, self.session_id)
        notice.add(_PEER, self.group.peer.peer_id.to_urn())
        try:
            self._send_pipe.send(notice)
        except PipeError:
            pass
        self._shutdown()

    def _shutdown(self) -> None:
        self.closed = True
        if self._receive_pipe is not None:
            self._receive_pipe.close()
            self._receive_pipe = None


class BidirectionalPipeListener:
    """The accepting side: turns CONNECT handshakes into sessions."""

    def __init__(
        self,
        group: PeerGroup,
        advertisement: PipeAdvertisement,
        *,
        on_session: Optional[Callable[[BidirectionalPipe], None]] = None,
    ) -> None:
        self.group = group
        self.advertisement = advertisement
        self.sessions: Dict[str, BidirectionalPipe] = {}
        self._on_session = on_session
        self._server_pipe = group.pipe_service.create_input_pipe(
            advertisement, self._on_message
        )
        self.closed = False

    # --------------------------------------------------------------- receive

    def _on_message(self, message: Message, source: PeerID) -> None:
        kind = message.get_text(_KIND)
        if kind == _CONNECT:
            self._accept(message, source)
        elif kind == _DATA:
            session = self.sessions.get(message.get_text(_SESSION))
            if session is not None:
                session._deliver(_strip_framing(message))
        elif kind == _CLOSE:
            session = self.sessions.pop(message.get_text(_SESSION), None)
            if session is not None:
                session._shutdown()

    def _accept(self, message: Message, source: PeerID) -> None:
        session_id = message.get_text(_SESSION)
        if not session_id or session_id in self.sessions:
            return
        return_document = message.get_text(_RETURN_ADV)
        try:
            return_advertisement = AdvertisementFactory.from_document(return_document)
        except AdvertisementError:
            # A remote peer's garbage connect message must not crash dispatch.
            self.group.peer.metrics.counter("bidi_malformed_connect").increment()
            return
        if not isinstance(return_advertisement, PipeAdvertisement):
            self.group.peer.metrics.counter("bidi_malformed_connect").increment()
            return
        send_pipe = self.group.pipe_service.create_output_pipe(return_advertisement)
        session = BidirectionalPipe(
            group=self.group,
            session_id=session_id,
            remote_peer=source,
            send_pipe=send_pipe,
            receive_pipe=None,  # the listener's server pipe does the receiving
        )
        self.sessions[session_id] = session
        accept = Message()
        accept.add(_KIND, _ACCEPT)
        accept.add(_SESSION, session_id)
        accept.add(_PEER, self.group.peer.peer_id.to_urn())

        # The return pipe binding is announced asynchronously; send the ACCEPT
        # once the simulator has had a chance to deliver the announcement.
        def _send_accept() -> None:
            try:
                send_pipe.send(accept)
            except PipeError:
                self.group.peer.metrics.counter("bidi_accept_failed").increment()

        self.group.peer.simulator.schedule(0.05, _send_accept, label="bidi-accept")
        self.group.peer.metrics.counter("bidi_sessions_accepted").increment()
        if self._on_session is not None:
            self._on_session(session)

    def close(self) -> None:
        """Stop accepting new sessions and close the established ones."""
        if self.closed:
            return
        self.closed = True
        for session in list(self.sessions.values()):
            session.close()
        self.sessions.clear()
        self._server_pipe.close()


@dataclass
class PendingConnection:
    """Returned by :func:`connect`; resolves into a live pipe once accepted."""

    pipe: BidirectionalPipe
    accepted: bool = False

    def established(self) -> bool:
        """Whether the remote side has acknowledged the session."""
        return self.accepted and not self.pipe.closed


def connect(
    group: PeerGroup,
    advertisement: PipeAdvertisement,
    *,
    listener: Optional[BidiListener] = None,
) -> PendingConnection:
    """Connect to a :class:`BidirectionalPipeListener` advertised by another peer.

    Returns a :class:`PendingConnection` immediately; run the simulation to
    let the handshake complete (``established()`` turns True when the ACCEPT
    arrives).
    """
    peer = group.peer
    session_id = f"{peer.peer_id.to_urn()}/bidi{next(_session_counter)}"
    return_advertisement = PipeAdvertisement(
        pipe_id=PipeID(),
        name=f"{advertisement.name}-return-{session_id[-6:]}",
        pipe_kind=PipeKind.UNICAST.value,
    )
    send_pipe = group.pipe_service.create_output_pipe(advertisement)
    pipe = BidirectionalPipe(
        group=group,
        session_id=session_id,
        remote_peer=PeerID(),  # refined when the ACCEPT arrives
        send_pipe=send_pipe,
        receive_pipe=None,
    )
    pending = PendingConnection(pipe=pipe)

    def _on_return_message(message: Message, source: PeerID) -> None:
        kind = message.get_text(_KIND)
        if message.get_text(_SESSION) != session_id:
            return
        if kind == _ACCEPT:
            pending.accepted = True
            pipe.remote_peer = source
        elif kind == _DATA:
            pipe._deliver(_strip_framing(message))
        elif kind == _CLOSE:
            pipe._shutdown()

    return_pipe = group.pipe_service.create_input_pipe(return_advertisement, _on_return_message)
    pipe._receive_pipe = return_pipe
    if listener is not None:
        pipe.add_listener(listener)

    request = Message()
    request.add(_KIND, _CONNECT)
    request.add(_SESSION, session_id)
    request.add(_PEER, peer.peer_id.to_urn())
    request.add(_RETURN_ADV, return_advertisement.to_document())

    # The server pipe binding may still be resolving; retry the CONNECT a few
    # times on the simulation clock until it can be sent.
    def _try_connect(attempts_left: int = 10) -> None:
        try:
            send_pipe.send(request)
        except PipeError:
            if attempts_left > 0:
                peer.simulator.schedule(
                    0.5, lambda: _try_connect(attempts_left - 1), label="bidi-connect-retry"
                )
            else:
                peer.metrics.counter("bidi_connect_failed").increment()

    _try_connect()
    peer.metrics.counter("bidi_connects").increment()
    return pending


def _strip_framing(message: Message) -> Message:
    """Remove the handshake elements, leaving only the application payload."""
    stripped = message.dup()
    for name in (_KIND, _SESSION, _PEER, _RETURN_ADV):
        stripped.remove(name)
    return stripped


__all__ = [
    "BidirectionalPipe",
    "BidirectionalPipeListener",
    "PendingConnection",
    "connect",
]
