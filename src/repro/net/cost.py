"""Calibrated cost model for the paper's testbed.

The paper measured three stacked implementations of the same application on
Sun Ultra 10 workstations (440 MHz UltraSPARC-IIi, 256 MB RAM) connected by
100 Mbit/s FastEthernet, using the JXTA 1.0 build of 2001-08-24 under a beta
JDK 1.4 HotSpot VM, with 1910-byte messages.

Absolute numbers from that testbed are irreproducible (and explicitly not the
target); what matters for the figures' shape is the *relative* magnitude of

* the fixed per-message cost inside JXTA's wire service (large -- on the
  order of a hundred milliseconds in 2001 -- with a very large standard
  deviation; the paper reports ~20-30 %);
* the per-connection cost a peer pays for every attached remote pipe
  (which produces the roughly 3x degradation from one to four subscribers
  reported in Sections 5.1-5.3);
* the small additional per-message work done by the SR-JXTA and SR-TPS layers
  (duplicate suppression, multi-advertisement management, type handling) --
  the paper reports roughly a 1 % gap between SR-TPS and SR-JXTA and about
  two events/second between either and raw JXTA-WIRE.

:class:`CostModel` gathers these calibration constants.  The JXTA substrate
charges these costs to the simulation clock; the layered code above still does
its real work (serialisation, hashing, type matching), so the relative
ordering is produced by genuine extra code paths, while the absolute scale is
set here.

Calibration targets (paper -> this model, with noise disabled):

========================================  ==============  ==================
quantity                                  paper           model (derivation)
========================================  ==============  ==================
JXTA-WIRE invocation time, 1 subscriber   ~100 ms         0.050 + 0.050 = 0.100 s
JXTA-WIRE invocation time, 4 subscribers  ~3x slower      0.050 + 4*0.050 = 0.250 s
JXTA-WIRE publisher throughput, 1 sub     ~9-11 msg/s     1/0.100 = 10.0 msg/s
SR-JXTA publisher throughput, 1 sub       ~2 msg/s less   1/0.122 = 8.2 msg/s
SR-TPS vs SR-JXTA                          ~1 %            1/0.1238 = 8.1 msg/s
JXTA-WIRE subscriber throughput, 1 pub    ~7.8 msg/s      1/(0.062+0.066) = 7.8 msg/s
SR-JXTA subscriber throughput, 1 pub      ~6.1 msg/s      1/(0.128+0.035) = 6.1 msg/s
SR-TPS subscriber throughput, 1 pub       ~6.0 msg/s      1/(0.165) = 6.06 msg/s
subscriber throughput, 4 publishers       ~3x lower       per-connection receive cost
========================================  ==============  ==================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.net.entropy import seeded_rng


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual-time costs (all in seconds).

    The default values are calibrated so that the reproduction's Figures 18-20
    land in the same numeric neighbourhood as the paper's: per-message
    invocation times around a hundred milliseconds, publisher throughput of
    roughly 8-10 events/second with one subscriber, and subscriber-side
    saturation around 6-8 events/second.
    """

    #: Fixed CPU cost charged by the JXTA endpoint/wire machinery per message
    #: send (serialisation into the wire envelope, resolver dispatch, endpoint
    #: queuing), regardless of the number of attached subscribers.
    wire_send_base: float = 0.050

    #: Additional cost the publisher pays for each resolved output connection
    #: (one per attached subscriber).  Four subscribers thus cost roughly
    #: 2.5x one subscriber, reproducing the degradation in Figures 18-19.
    wire_per_connection: float = 0.050

    #: Fixed cost for a receiving peer to pull a message out of the wire
    #: service and hand it to listeners.
    wire_receive_base: float = 0.062

    #: Additional receive-side cost per distinct connected publisher (the
    #: paper attributes the ~3x drop with four publishers to connection
    #: handling on the subscriber -- Section 5.3 referring back to 5.1).
    wire_receive_per_connection: float = 0.066

    #: Per-byte serialisation/copy cost (charged on both send and receive);
    #: 1910-byte messages add a few milliseconds each way.
    per_byte: float = 1.6e-6

    #: Cost of one advertisement-cache lookup or publication in the local
    #: cache manager.
    cache_lookup: float = 0.004

    #: Cost of publishing an advertisement remotely (resolver query fan-out).
    remote_publish: float = 0.030

    #: Cost charged by the discovery service to evaluate one remote discovery
    #: query against the local cache.
    discovery_query: float = 0.012

    #: Extra per-message send cost of the SR-JXTA application layer
    #: (duplicate detection identifiers, multi-advertisement bookkeeping,
    #: per-advertisement pipe fan-out management).
    app_layer_send: float = 0.022

    #: Extra per-message send cost of the TPS layer on top of what SR-JXTA
    #: does (type registry lookup, typed serialisation, event log).  The
    #: paper reports SR-TPS within about 1 % of SR-JXTA.
    tps_layer_send: float = 0.0018

    #: Extra per-message receive-side cost for the application layers
    #: (duplicate filtering and event bookkeeping).
    app_layer_receive: float = 0.035

    #: Extra receive-side cost for TPS (deserialise into the typed event,
    #: subtype matching, callback + exception-handler dispatch).
    tps_layer_receive: float = 0.002

    #: Relative standard deviation of the lognormal noise applied to the wire
    #: service costs.  The paper reports ~20 % for one subscriber and ~30 %
    #: for four; we use a single figure in between.
    wire_jitter: float = 0.24

    #: One-way network latency (seconds) of the testbed LAN.
    lan_latency: float = 0.0006

    #: Link bandwidth in bytes/second (100 Mbit/s FastEthernet).
    lan_bandwidth: float = 100e6 / 8

    #: Probability that the (unreliable, August-2001) JXTA wire service drops
    #: a propagated (multicast) message.  The paper could not even measure
    #: latency because of this unreliability; a small loss rate reproduces the
    #: instability seen in Figures 18 and 20.
    wire_loss_rate: float = 0.02

    #: Maximum number of messages a receiving wire endpoint queues before it
    #: starts dropping (JXTA 1.0 could not keep up with flooding publishers --
    #: Section 5.3 shows the subscriber saturating well below the send rate).
    receive_queue_limit: int = 48

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every CPU cost multiplied by ``factor``.

        Useful for ablation benches exploring faster or slower substrate
        hardware while preserving the relative layer costs.
        """
        return replace(
            self,
            wire_send_base=self.wire_send_base * factor,
            wire_per_connection=self.wire_per_connection * factor,
            wire_receive_base=self.wire_receive_base * factor,
            wire_receive_per_connection=self.wire_receive_per_connection * factor,
            per_byte=self.per_byte * factor,
            cache_lookup=self.cache_lookup * factor,
            remote_publish=self.remote_publish * factor,
            discovery_query=self.discovery_query * factor,
            app_layer_send=self.app_layer_send * factor,
            tps_layer_send=self.tps_layer_send * factor,
            app_layer_receive=self.app_layer_receive * factor,
            tps_layer_receive=self.tps_layer_receive * factor,
        )

    def without_noise(self) -> "CostModel":
        """Return a copy with jitter and loss disabled (for deterministic tests)."""
        return replace(self, wire_jitter=0.0, wire_loss_rate=0.0)

    # ------------------------------------------------------------ derived

    def transmission_time(self, size_bytes: int) -> float:
        """Time to push ``size_bytes`` onto the LAN (serialisation delay)."""
        return size_bytes / self.lan_bandwidth

    def serialization_time(self, size_bytes: int) -> float:
        """CPU time to serialise or deserialise a payload of ``size_bytes``."""
        return size_bytes * self.per_byte

    def send_cost(self, connections: int, size_bytes: int) -> float:
        """Noise-free wire-service cost of sending one message to ``connections`` targets."""
        fanout = max(1, connections)
        return (
            self.wire_send_base
            + self.wire_per_connection * fanout
            + self.serialization_time(size_bytes)
        )

    def receive_cost(self, connections: int, size_bytes: int) -> float:
        """Noise-free wire-service cost of receiving one message from one of ``connections`` publishers."""
        fanin = max(1, connections)
        return (
            self.wire_receive_base
            + self.wire_receive_per_connection * fanin
            + self.serialization_time(size_bytes)
        )


#: The calibration used by all paper-reproduction benchmarks.
PAPER_TESTBED = CostModel()


class NoiseSource:
    """Deterministic pseudo-random noise shared by the simulated substrate.

    Every experiment owns one :class:`NoiseSource` seeded explicitly, so runs
    are reproducible bit-for-bit while still exhibiting the variance the paper
    reports (large standard deviations in Figures 18 and 20).
    """

    def __init__(self, seed: int = 2002) -> None:
        self._rng = seeded_rng(seed)
        self.seed = seed

    def jittered(self, base: float, relative_sigma: float) -> float:
        """Return ``base`` perturbed by lognormal noise of the given relative sigma."""
        if relative_sigma <= 0 or base <= 0:
            return base
        return base * self._rng.lognormvariate(0.0, relative_sigma)

    def uniform(self, low: float, high: float) -> float:
        """Uniform sample in ``[low, high)``."""
        return self._rng.uniform(low, high)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0:
            return False
        if probability >= 1:
            return True
        return self._rng.random() < probability

    def choice(self, items):
        """Pick a uniformly random element of ``items``."""
        return self._rng.choice(list(items))

    def fork(self, salt: int) -> "NoiseSource":
        """Derive an independent noise source (used per-node)."""
        return NoiseSource(seed=(self.seed * 1_000_003 + salt) & 0x7FFFFFFF)


__all__ = ["CostModel", "NoiseSource", "PAPER_TESTBED"]
