"""Tests for the in-process TPS binding (LocalBus / LocalTPSEngine)."""

from __future__ import annotations

import pytest

from repro.apps.skirental.types import PremiumSkiRental, RentalOffer, SkiRental, SnowboardRental
from repro.core import Criteria, TPSEngine
from repro.core.exceptions import TypeMismatchError
from repro.core.local_engine import LocalBus, LocalTPSEngine


@pytest.fixture
def bus():
    return LocalBus()


def _engine(event_type, bus, criteria=None, subscribe_to=None):
    engine = LocalTPSEngine(event_type, bus=bus, criteria=criteria)
    if subscribe_to is not None:
        engine.subscribe(subscribe_to.append)
    return engine


class TestLocalDelivery:
    def test_publish_reaches_subscribers_of_same_type(self, bus):
        received = []
        publisher = _engine(SkiRental, bus)
        _subscriber = _engine(SkiRental, bus, subscribe_to=received)
        offer = SkiRental("shop", 10.0, "b", 1)
        receipt = publisher.publish(offer)
        assert len(received) == 1
        assert receipt.pipes == 1
        # The delivered object is a codec copy, not the same instance.
        assert received[0] == offer and received[0] is not offer

    def test_publisher_does_not_receive_its_own_events(self, bus):
        received = []
        engine = _engine(SkiRental, bus, subscribe_to=received)
        engine.publish(SkiRental("shop", 10.0, "b", 1))
        assert received == []
        assert len(engine.objects_sent()) == 1

    def test_subtype_matching(self, bus):
        offers, skis, premiums = [], [], []
        publisher = _engine(RentalOffer, bus)
        _all_sub = _engine(RentalOffer, bus, subscribe_to=offers)
        _ski_sub = _engine(SkiRental, bus, subscribe_to=skis)
        _premium_sub = _engine(PremiumSkiRental, bus, subscribe_to=premiums)
        publisher.publish(RentalOffer("shop", 5.0, 1))
        publisher.publish(SkiRental("shop", 10.0, "b", 1))
        publisher.publish(PremiumSkiRental("shop", 20.0, "b", 1, extras=("x",)))
        publisher.publish(SnowboardRental("shop", 15.0, "b", 1))
        assert len(offers) == 4       # root subscriber sees everything
        assert len(skis) == 2         # ski + premium ski
        assert len(premiums) == 1     # premium only

    def test_type_mismatch_rejected(self, bus):
        publisher = _engine(SkiRental, bus)
        with pytest.raises(TypeMismatchError):
            publisher.publish(SnowboardRental("shop", 15.0, "b", 1))

    def test_subscriber_without_subscription_receives_nothing(self, bus):
        publisher = _engine(SkiRental, bus)
        idle = _engine(SkiRental, bus)
        publisher.publish(SkiRental("shop", 10.0, "b", 1))
        assert idle.objects_received() == []

    def test_criteria_event_filtering(self, bus):
        cheap = []
        publisher = _engine(SkiRental, bus)
        subscriber = LocalTPSEngine(
            SkiRental, bus=bus, criteria=Criteria(event_predicate=lambda o: o.price < 100)
        )
        subscriber.subscribe(cheap.append)
        publisher.publish(SkiRental("shop", 50.0, "b", 1))
        publisher.publish(SkiRental("shop", 500.0, "b", 1))
        assert len(cheap) == 1

    def test_objects_received_and_sent_order(self, bus):
        received = []
        publisher = _engine(SkiRental, bus)
        subscriber = _engine(SkiRental, bus, subscribe_to=received)
        offers = [SkiRental("s", float(i), "b", 1) for i in range(5)]
        for offer in offers:
            publisher.publish(offer)
        assert publisher.objects_sent() == offers
        assert subscriber.objects_received() == offers

    def test_close_detaches_from_bus(self, bus):
        received = []
        publisher = _engine(SkiRental, bus)
        subscriber = _engine(SkiRental, bus, subscribe_to=received)
        subscriber.close()
        publisher.publish(SkiRental("s", 1.0, "b", 1))
        assert received == []

    def test_exception_handler_per_subscription(self, bus):
        publisher = _engine(SkiRental, bus)
        subscriber = _engine(SkiRental, bus)
        errors = []

        def broken(offer):
            raise RuntimeError("bad callback")

        subscriber.subscribe(broken, errors.append)
        publisher.publish(SkiRental("s", 1.0, "b", 1))
        assert len(errors) == 1
        assert isinstance(errors[0], RuntimeError)

    def test_unrelated_hierarchies_are_isolated(self, bus):
        class Telemetry:
            def __init__(self, reading=0.0):
                self.reading = reading

        offers, telemetry = [], []
        offer_pub = _engine(SkiRental, bus)
        _offer_sub = _engine(SkiRental, bus, subscribe_to=offers)
        telemetry_pub = _engine(Telemetry, bus)
        _telemetry_sub = _engine(Telemetry, bus, subscribe_to=telemetry)
        offer_pub.publish(SkiRental("s", 1.0, "b", 1))
        telemetry_pub.publish(Telemetry(3.3))
        assert len(offers) == 1 and len(telemetry) == 1


class TestEngineFactory:
    def test_new_interface_local_binding(self, bus):
        engine = TPSEngine(SkiRental, local_bus=bus)
        interface = engine.new_interface("LOCAL")
        assert isinstance(interface, LocalTPSEngine)
        assert engine.interfaces == [interface]

    def test_new_interface_unknown_binding_rejected(self, bus):
        engine = TPSEngine(SkiRental, local_bus=bus)
        with pytest.raises(Exception):
            engine.new_interface("CORBA")

    def test_new_interface_jxta_requires_peer(self):
        engine = TPSEngine(SkiRental)
        with pytest.raises(Exception):
            engine.new_interface("JXTA")

    def test_instance_argument_type_checked(self, bus):
        engine = TPSEngine(SkiRental, local_bus=bus)
        # A correct instance (as the paper's listing passes) is accepted...
        engine.new_interface("LOCAL", None, SkiRental("s", 1.0, "b", 1))
        # ...a wrong one is rejected.
        with pytest.raises(Exception):
            engine.new_interface("LOCAL", None, SnowboardRental("s", 1.0, "b", 1))

    def test_camel_case_new_interface_alias(self, bus):
        engine = TPSEngine(SkiRental, local_bus=bus)
        assert isinstance(engine.newInterface("LOCAL"), LocalTPSEngine)

    def test_engine_rejects_invalid_event_type(self):
        with pytest.raises(Exception):
            TPSEngine(int)
