"""The ASYNC binding's own behavior, beyond the shared conformance matrix.

The conformance suite (``test_binding_conformance.py``) already proves the
ASYNC binding speaks the common TPS surface; this module covers what is
*specifically* asynchronous about it:

* loop ownership ("the loop is the thread"): publish/subscribe/close from a
  foreign thread, a foreign loop, or no loop at all fail with a clear
  :class:`PSException` -- never a bare ``RuntimeError`` -- and fail
  *atomically* (nothing half-registered), the async analogue of the
  composite's thread-affinity tests;
* coroutine subscribers, serial-vs-concurrent dispatch, and awaitable
  backpressure on ``"block"`` streams;
* ``async for``/``async with`` forms and awaitable close;
* the binding registry integration: the validated parameter schema, the
  per-loop shared-bus cache, and the ``unregister_binding`` cache-reset
  regression (for both ASYNC and the PR 5 sharded param-bus cache).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, List

import pytest

from repro.apps.skirental.types import SkiRental
from repro.core import TPSEngine
from repro.core.async_engine import (
    AsyncEventStream,
    AsyncLocalBus,
    AsyncTPSEngine,
    register_async_binding,
)
from repro.core.bindings import (
    binding_capabilities,
    registered_bindings,
    unregister_binding,
)
from repro.core.exceptions import PSException
from repro.core.local_engine import LocalBus
from repro.core.sharded_engine import register_sharded_binding

pytestmark = [pytest.mark.asyncio]


def _offer(shop: str = "shop", price: float = 10.0) -> SkiRental:
    return SkiRental(shop, price, "Salomon", 7)


def _pair(engine: TPSEngine, **params: Any):
    """A (publisher, subscriber) ASYNC pair; call from the owning loop."""
    return engine.new_interface("ASYNC", **params), engine.new_interface(
        "ASYNC", **params
    )


class TestLoopOwnership:
    """'The loop is the thread': misuse fails atomically with PSException."""

    def test_construction_outside_a_loop_raises_psexception(self):
        engine = TPSEngine(SkiRental)
        with pytest.raises(PSException, match="loop"):
            engine.new_interface("ASYNC")
        engine.close()

    def test_foreign_loop_publish_raises_psexception(self):
        async def build():
            engine = TPSEngine(SkiRental)
            return engine, engine.new_interface("ASYNC")

        engine, tps = asyncio.run(build())

        async def misuse():
            await tps.publish(_offer())

        with pytest.raises(PSException, match="foreign event loop"):
            asyncio.run(misuse())
        # Nothing was published and the interface is still open.
        assert tps.objects_sent() == []
        assert not tps.closed

    def test_no_loop_subscribe_leaves_no_half_registration(self):
        async def build():
            engine = TPSEngine(SkiRental)
            return engine, engine.new_interface("ASYNC")

        engine, tps = asyncio.run(build())
        with pytest.raises(PSException, match="no running event loop"):
            tps.subscribe(lambda event: None)
        assert len(tps.subscriber_manager) == 0

    def test_foreign_thread_calls_raise_psexception_not_runtimeerror(self):
        async def build():
            engine = TPSEngine(SkiRental)
            return engine, engine.new_interface("ASYNC")

        engine, tps = asyncio.run(build())
        caught: List[BaseException] = []

        def misuse() -> None:
            try:
                tps.subscribe(lambda event: None)
            except BaseException as error:  # noqa: BLE001 - collected for assert
                caught.append(error)

        thread = threading.Thread(target=misuse, daemon=True)
        thread.start()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert len(caught) == 1
        # The typed API exception, not asyncio's bare "no running event
        # loop" RuntimeError leaking through.
        assert type(caught[0]) is PSException
        assert "the loop is the thread" in str(caught[0])
        assert len(tps.subscriber_manager) == 0

    def test_foreign_loop_close_leaves_interface_open(self):
        async def build():
            engine = TPSEngine(SkiRental)
            return engine, engine.new_interface("ASYNC")

        engine, tps = asyncio.run(build())

        async def misuse():
            await tps.close()

        with pytest.raises(PSException, match="foreign event loop"):
            asyncio.run(misuse())
        assert not tps.closed

    def test_closed_interface_raises_psexception_from_anywhere(self):
        """Post-close failures are the uniform PSException even off-loop:
        the open check runs before the loop check."""

        async def build_and_close():
            engine = TPSEngine(SkiRental)
            tps = engine.new_interface("ASYNC")
            await tps.close()
            return engine, tps

        engine, tps = asyncio.run(build_and_close())
        assert tps.closed
        # The owning loop is gone (asyncio.run closed it), yet every verb
        # still fails with the binding-uniform post-close PSException.
        with pytest.raises(PSException, match="closed"):
            tps.subscribe(lambda event: None)
        with pytest.raises(PSException, match="closed"):
            tps.stream()
        # History queries keep answering, like every other binding.
        assert tps.objects_sent() == []
        assert tps.objects_received() == []


class TestCoroutineSubscribers:
    def test_coroutine_and_plain_subscribers_mix_in_order(self):
        async def main():
            engine = TPSEngine(SkiRental)
            publisher, subscriber = _pair(engine)
            log: List[Any] = []
            subscriber.subscribe(lambda event: log.append(("plain", event.shop)))

            async def coro(event: Any) -> None:
                await asyncio.sleep(0)
                log.append(("coro", event.shop))

            subscriber.subscribe(coro)
            await publisher.publish(_offer("a"))
            await publisher.publish(_offer("b"))
            engine.close()
            return log

        # Serial dispatch: per-event, rows complete in registration order;
        # across events, publish order -- even though the coroutine
        # subscriber suspends mid-delivery.
        assert asyncio.run(main()) == [
            ("plain", "a"),
            ("coro", "a"),
            ("plain", "b"),
            ("coro", "b"),
        ]

    def test_coroutine_errors_route_to_exception_handler(self):
        async def main():
            engine = TPSEngine(SkiRental)
            publisher, subscriber = _pair(engine)
            errors: List[BaseException] = []

            async def broken(event: Any) -> None:
                await asyncio.sleep(0)
                raise ValueError("async subscriber bug")

            subscriber.subscribe(broken, errors.append)
            await publisher.publish(_offer())
            engine.close()
            return errors

        errors = asyncio.run(main())
        assert len(errors) == 1 and isinstance(errors[0], ValueError)

    def test_concurrent_dispatch_overlaps_subscriber_waits(self):
        def run(dispatch: str) -> List[str]:
            async def main():
                engine = TPSEngine(SkiRental)
                publisher, subscriber = _pair(engine, dispatch=dispatch)
                log: List[str] = []

                def make(name: str):
                    async def coro(event: Any) -> None:
                        log.append(f"start-{name}")
                        await asyncio.sleep(0)
                        log.append(f"end-{name}")

                    return coro

                subscriber.subscribe([make("a"), make("b")])
                await publisher.publish(_offer())
                engine.close()
                return log

            return asyncio.run(main())

        # serial: a completes before b starts; concurrent: both start
        # before either finishes (their sleeps overlap), but publish still
        # returns only after the per-event gather barrier.
        assert run("serial") == ["start-a", "end-a", "start-b", "end-b"]
        assert run("concurrent") == ["start-a", "start-b", "end-a", "end-b"]


class TestAsyncStreams:
    def test_async_for_consumes_until_close(self):
        async def main():
            engine = TPSEngine(SkiRental)
            publisher, subscriber = _pair(engine)
            stream = subscriber.stream()

            async def consume() -> List[str]:
                shops = []
                async for event in stream:
                    shops.append(event.shop)
                return shops

            task = asyncio.create_task(consume())
            for shop in ("a", "b", "c"):
                await publisher.publish(_offer(shop))
            await asyncio.sleep(0)
            stream.close()
            shops = await task
            engine.close()
            return shops

        assert asyncio.run(main()) == ["a", "b", "c"]

    def test_block_policy_backpressure_suspends_publisher(self):
        async def main():
            engine = TPSEngine(SkiRental)
            publisher, subscriber = _pair(engine)
            consumed: List[str] = []
            async with subscriber.stream(maxsize=1, policy="block") as stream:

                async def consume() -> None:
                    for _ in range(3):
                        consumed.append((await stream.get()).shop)

                task = asyncio.create_task(consume())
                # Three events through a one-slot stream: the second and
                # third publishes must suspend until the consumer makes
                # room.  publish_many returning proves backpressure is an
                # awaitable hand-off, not a deadlock.
                receipts = await publisher.publish_many(
                    [_offer("a"), _offer("b"), _offer("c")]
                )
                await task
                assert len(receipts) == 3
            assert stream.dropped == 0
            engine.close()
            return consumed

        assert asyncio.run(main()) == ["a", "b", "c"]

    def test_drop_oldest_policy_counts_drops(self):
        async def main():
            engine = TPSEngine(SkiRental)
            publisher, subscriber = _pair(engine)
            stream = subscriber.stream(maxsize=2, policy="drop_oldest")
            await publisher.publish_many([_offer(f"s{i}") for i in range(5)])
            kept = [event.shop for event in stream.drain()]
            dropped = stream.dropped
            engine.close()
            return kept, dropped

        kept, dropped = asyncio.run(main())
        assert kept == ["s3", "s4"]
        assert dropped == 3

    def test_reentrant_only_consumer_raises_instead_of_deadlocking(self):
        """The async analogue of the threaded deadlock heuristic: if the
        publishing *task* is the stream's only consumer, a full ``"block"``
        wait could never be woken -- raise into the error route instead."""

        async def main():
            engine = TPSEngine(SkiRental)
            publisher, subscriber = _pair(engine)
            errors: List[BaseException] = []
            stream = (
                subscriber.subscription()
                .on_error(errors.append)
                .stream(maxsize=1, policy="block")
            )
            stream.drain()  # registers this task as a consumer
            await publisher.publish(_offer("fits"))
            await publisher.publish(_offer("overflows"))
            engine.close()
            return errors

        errors = asyncio.run(main())
        assert len(errors) == 1
        assert isinstance(errors[0], PSException)
        assert "deadlock" in str(errors[0])

    def test_get_timeout_raises_psexception(self):
        async def main():
            engine = TPSEngine(SkiRental)
            _, subscriber = _pair(engine)
            stream = subscriber.stream()
            with pytest.raises(PSException, match="no event arrived"):
                await stream.get(timeout=0.01)
            engine.close()

        asyncio.run(main())


class TestAsyncLifecycle:
    def test_await_close_and_async_with_are_equivalent(self):
        async def main():
            engine = TPSEngine(SkiRental)
            awaited = engine.new_interface("ASYNC")
            await awaited.close()
            assert awaited.closed
            await awaited.close()  # idempotent, awaitable form
            async with engine.new_interface("ASYNC") as scoped:
                assert not scoped.closed
            assert scoped.closed
            engine.close()

        asyncio.run(main())

    def test_engine_close_tears_down_async_interfaces_on_loop(self):
        async def main():
            engine = TPSEngine(SkiRental)
            publisher, subscriber = _pair(engine)
            engine.close()  # generic sync teardown, running on the loop
            return publisher.closed and subscriber.closed

        assert asyncio.run(main())


class TestAsyncBindingRegistry:
    def test_registered_with_capabilities_and_param_schema(self):
        assert "ASYNC" in registered_bindings()
        assert "event-loop" in binding_capabilities("ASYNC")
        report = registered_bindings(with_params=True)
        assert report["ASYNC"] == (
            "dispatch",
            "group",
            "breaker_threshold",
            "breaker_cooldown",
            "history",
            "history_size",
            "history_path",
        )

    def test_ill_typed_params_name_the_offending_key(self):
        async def main():
            engine = TPSEngine(SkiRental)
            with pytest.raises(PSException, match="dispatch"):
                engine.new_interface("ASYNC", dispatch=5)
            with pytest.raises(PSException, match="dispatch"):
                engine.new_interface("ASYNC", dispatch="bogus")
            with pytest.raises(PSException, match="group"):
                engine.new_interface("ASYNC", group=7)
            with pytest.raises(PSException, match="ring_size"):
                engine.new_interface("ASYNC", ring_size=4)  # undeclared
            engine.close()

        asyncio.run(main())

    def test_same_loop_same_params_share_one_bus(self):
        async def main():
            engine = TPSEngine(SkiRental)
            a = engine.new_interface("ASYNC", group="g", dispatch="concurrent")
            b = engine.new_interface("ASYNC", group="g", dispatch="concurrent")
            c = engine.new_interface("ASYNC", group="other")
            default = engine.new_interface("ASYNC")
            shared = a.bus is b.bus
            distinct = (
                c.bus is not a.bus
                and default.bus is not a.bus
                and default.bus is not c.bus
            )
            engine.close()
            return shared, distinct

        shared, distinct = asyncio.run(main())
        assert shared
        assert distinct

    def test_explicit_bus_rejects_params_and_wrong_bus_type(self):
        async def main():
            bus = AsyncLocalBus()
            direct = TPSEngine(SkiRental, local_bus=bus)
            tps = direct.new_interface("ASYNC")
            assert tps.bus is bus
            with pytest.raises(PSException, match="not both"):
                direct.new_interface("ASYNC", group="g")
            direct.close()
            wrong = TPSEngine(SkiRental, local_bus=LocalBus())
            with pytest.raises(PSException, match="AsyncLocalBus"):
                wrong.new_interface("ASYNC")
            wrong.close()

        asyncio.run(main())


class TestUnregisterCacheReset:
    """Satellite regression: ``unregister_binding`` then re-register must
    not resolve new interfaces onto buses cached under the old spec."""

    def test_async_reregistration_does_not_leak_loop_bus_cache(self):
        async def main():
            engine = TPSEngine(SkiRental)
            before = engine.new_interface("ASYNC", group="leak")
            try:
                assert unregister_binding("ASYNC")
                register_async_binding()
                after = engine.new_interface("ASYNC", group="leak")
                fresh = after.bus is not before.bus
            finally:
                register_async_binding()
            engine.close()
            return fresh

        assert asyncio.run(main())

    def test_sharded_reregistration_does_not_leak_param_bus_cache(self):
        engine = TPSEngine(SkiRental)
        before = engine.new_interface("SHARDED", shards=5)
        try:
            assert unregister_binding("SHARDED")
            register_sharded_binding()
            after = engine.new_interface("SHARDED", shards=5)
            assert after.bus is not before.bus
        finally:
            register_sharded_binding()
        engine.close()

    def test_parameterless_async_interfaces_still_pair_after_reset(self):
        """The per-loop default bus is re-built after a reset, and new
        interfaces pair up on it as usual."""

        async def main():
            try:
                assert unregister_binding("ASYNC")
                register_async_binding()
                engine = TPSEngine(SkiRental)
                publisher, subscriber = _pair(engine)
                inbox: List[Any] = []
                subscriber.subscribe(inbox.append)
                await publisher.publish(_offer("post-reset"))
                engine.close()
                return [event.shop for event in inbox]
            finally:
                register_async_binding()

        assert asyncio.run(main()) == ["post-reset"]


class TestAsyncEngineDirect:
    """The engine class is usable without the registry, like its siblings."""

    def test_direct_construction_and_fanout(self):
        async def main():
            bus = AsyncLocalBus()
            publisher = AsyncTPSEngine(SkiRental, bus=bus)
            subscriber = AsyncTPSEngine(SkiRental, bus=bus)
            inbox: List[Any] = []
            subscriber.subscribe(inbox.append)
            receipt = await publisher.publish(_offer("direct"))
            assert receipt.wire_receipts == [1]
            stream = subscriber.stream()
            assert isinstance(stream, AsyncEventStream)
            await publisher.publish(_offer("streamed"))
            assert [event.shop for event in stream.drain()] == ["streamed"]
            await subscriber.close()
            await publisher.close()
            return [event.shop for event in inbox]

        assert asyncio.run(main()) == ["direct", "streamed"]


class TestLoopClockBreakers:
    """Satellite: ASYNC breakers tick on ``loop.time``, not wall time."""

    def test_breaker_cooldown_follows_a_manually_advanced_loop_clock(self):
        loop = asyncio.new_event_loop()
        fake = [1_000.0]
        loop.time = lambda: fake[0]  # patched BEFORE the engine captures it

        async def main():
            engine = TPSEngine(SkiRental)
            publisher, subscriber = _pair(
                engine, breaker_threshold=2, breaker_cooldown=5.0
            )
            calls: List[Any] = []
            healthy: List[Any] = []

            def flaky(event: Any) -> None:
                calls.append(event.shop)
                raise RuntimeError("boom")

            subscriber.subscribe(flaky)
            subscriber.subscribe(lambda event: healthy.append(event.shop))
            await publisher.publish(_offer("a"))
            await publisher.publish(_offer("b"))  # second failure trips it
            assert calls == ["a", "b"]
            # Quarantined: deliveries are skipped while the (virtual)
            # cooldown runs, however fast the wall clock moves.
            await publisher.publish(_offer("c"))
            fake[0] += 4.9  # still inside the 5 s cooldown
            await publisher.publish(_offer("d"))
            assert calls == ["a", "b"]
            # Advancing the loop clock past the cooldown opens probation:
            # exactly one delivery gets through (and re-trips on failure).
            fake[0] += 0.2
            await publisher.publish(_offer("e"))
            assert calls == ["a", "b", "e"]
            await publisher.publish(_offer("f"))
            assert calls == ["a", "b", "e"]
            # The healthy subscription on the same interface never skipped.
            assert healthy == ["a", "b", "c", "d", "e", "f"]
            await publisher.close()
            await subscriber.close()
            engine.close()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()
