"""Tests for the advertisement cache manager (repro.jxta.cache)."""

from __future__ import annotations

import pytest

from repro.jxta.advertisement import Advertisement, PeerAdvertisement, PeerGroupAdvertisement
from repro.jxta.cache import CacheManager, DiscoveryKind
from repro.net.simclock import Simulator


@pytest.fixture
def simulator():
    return Simulator()


@pytest.fixture
def cache(simulator):
    return CacheManager(simulator.clock)


def test_discovery_kind_validation():
    assert DiscoveryKind.validate(DiscoveryKind.PEER) == 0
    with pytest.raises(ValueError):
        DiscoveryKind.validate(7)


def test_publish_and_search(cache):
    advertisement = PeerGroupAdvertisement(name="PS$SkiRental")
    cache.publish(advertisement, DiscoveryKind.GROUP)
    assert cache.contains(advertisement, DiscoveryKind.GROUP)
    assert cache.search(DiscoveryKind.GROUP, "Name", "PS$*") == [advertisement]
    assert cache.search(DiscoveryKind.GROUP, "Name", "Other*") == []
    assert cache.search(DiscoveryKind.PEER) == []


def test_publish_same_key_refreshes(cache, simulator):
    advertisement = PeerGroupAdvertisement(name="g")
    cache.publish(advertisement, DiscoveryKind.GROUP, lifetime=10.0)
    simulator.run_until(8.0)
    cache.publish(advertisement, DiscoveryKind.GROUP, lifetime=10.0)
    simulator.run_until(15.0)
    # Still present: the second publication refreshed the entry at t=8.
    assert cache.search(DiscoveryKind.GROUP) == [advertisement]
    assert cache.count(DiscoveryKind.GROUP) == 1


def test_expiry_is_lazy_and_explicit(cache, simulator):
    advertisement = Advertisement(name="short-lived")
    cache.publish(advertisement, DiscoveryKind.ADV, lifetime=5.0)
    simulator.run_until(10.0)
    assert cache.search(DiscoveryKind.ADV) == []          # lazily skipped
    assert cache.count(DiscoveryKind.ADV) == 0             # and removed
    fresh = Advertisement(name="fresh")
    cache.publish(fresh, DiscoveryKind.ADV, lifetime=5.0)
    simulator.run_until(20.0)
    assert cache.expire() == 1
    assert cache.count() == 0


def test_search_limit(cache):
    for index in range(10):
        cache.publish(PeerAdvertisement(name=f"peer-{index}"), DiscoveryKind.PEER)
    assert len(cache.search(DiscoveryKind.PEER, limit=3)) == 3
    assert len(cache.search(DiscoveryKind.PEER)) == 10


def test_remove(cache):
    advertisement = PeerAdvertisement(name="p")
    cache.publish(advertisement, DiscoveryKind.PEER)
    assert cache.remove(advertisement, DiscoveryKind.PEER)
    assert not cache.remove(advertisement, DiscoveryKind.PEER)
    assert cache.count(DiscoveryKind.PEER) == 0


def test_flush_by_kind_and_all(cache):
    cache.publish(PeerAdvertisement(name="p"), DiscoveryKind.PEER)
    cache.publish(PeerGroupAdvertisement(name="g"), DiscoveryKind.GROUP)
    cache.publish(Advertisement(name="a"), DiscoveryKind.ADV)
    assert cache.flush(DiscoveryKind.PEER) == 1
    assert cache.count() == 2
    assert cache.flush() == 2
    assert cache.count() == 0


def test_flush_remote_only(cache):
    local = PeerGroupAdvertisement(name="local")
    remote = PeerGroupAdvertisement(name="remote")
    cache.publish(local, DiscoveryKind.GROUP, local=True)
    cache.publish(remote, DiscoveryKind.GROUP, local=False)
    assert cache.flush(DiscoveryKind.GROUP, remote_only=True) == 1
    remaining = cache.search(DiscoveryKind.GROUP)
    assert remaining == [local]


def test_kinds_are_isolated(cache):
    advertisement = PeerGroupAdvertisement(name="g")
    cache.publish(advertisement, DiscoveryKind.GROUP)
    assert not cache.contains(advertisement, DiscoveryKind.ADV)
    assert cache.count(DiscoveryKind.ADV) == 0


def test_entries_exposes_bookkeeping(cache, simulator):
    simulator.run_until(5.0)
    advertisement = Advertisement(name="x")
    cache.publish(advertisement, DiscoveryKind.ADV, local=False)
    (entry,) = cache.entries(DiscoveryKind.ADV)
    assert entry.inserted_at == 5.0
    assert not entry.local
    assert entry.advertisement is advertisement


def test_invalid_kind_rejected_everywhere(cache):
    advertisement = Advertisement(name="x")
    with pytest.raises(ValueError):
        cache.publish(advertisement, 9)
    with pytest.raises(ValueError):
        cache.search(9)
    with pytest.raises(ValueError):
        cache.flush(9)
