"""Integration tests for the TPS engine over the JXTA substrate."""

from __future__ import annotations

import pytest

from repro.apps.skirental.types import PremiumSkiRental, SkiRental, SnowboardRental
from repro.core import (
    CollectingExceptionHandler,
    Criteria,
    PS_PREFIX,
    TPSConfig,
    TPSEngine,
)
from repro.core.exceptions import NotInitializedError, TypeMismatchError
from repro.core.jxta_engine import JxtaTPSEngine
from repro.core.type_registry import type_name
from repro.jxta.cache import DiscoveryKind


def _interface(peer, event_type=SkiRental, *, config=None, criteria=None):
    engine = TPSEngine(event_type, peer=peer, config=config)
    return engine.new_interface("JXTA", criteria)


def _pub_sub(builder, *, event_type=SkiRental, sub_type=None, subscribers=1):
    """A settled publisher interface plus subscriber interfaces with collectors."""
    pub_peer = builder.add_peer("tps-pub")
    publisher = _interface(pub_peer, event_type, config=TPSConfig(search_timeout=2.0))
    builder.settle(rounds=8)
    collected = []
    subs = []
    for index in range(subscribers):
        sub_peer = builder.add_peer(f"tps-sub-{index}")
        interface = _interface(
            sub_peer,
            sub_type or event_type,
            config=TPSConfig(search_timeout=6.0, create_if_missing=False),
        )
        inbox = []
        interface.subscribe(inbox.append)
        collected.append(inbox)
        subs.append(interface)
    builder.settle(rounds=14)
    return publisher, subs, collected


class TestInitialization:
    def test_publisher_creates_advertisement_when_none_found(self, lan):
        builder = lan
        interface = _interface(builder.peer_named("peer-0"), config=TPSConfig(search_timeout=2.0))
        assert not interface.ready
        with pytest.raises(NotInitializedError):
            interface.publish(SkiRental("s", 1.0, "b", 1))
        builder.settle(rounds=6)
        assert interface.ready
        assert interface.manager.created_own
        # The advertisement is named PS$ + the hierarchy root's type name.
        advertisement = interface.manager.attachments[0].advertisement
        assert advertisement.name.startswith(PS_PREFIX)
        assert type_name(SkiRental).split(".")[-1] not in ("",)
        assert "RentalOffer" in advertisement.name

    def test_subscriber_adopts_existing_advertisement(self, lan):
        builder = lan
        publisher, subs, _ = _pub_sub(builder)
        # The subscriber found the publisher's advertisement rather than
        # creating its own (functionality (1): advertisement minimisation).
        assert not subs[0].manager.created_own
        assert publisher.attachment_count == 1
        assert subs[0].attachment_count == 1

    def test_subscriber_without_create_waits_forever_if_nothing_published(self, lan):
        builder = lan
        interface = _interface(
            builder.peer_named("peer-0"),
            config=TPSConfig(search_timeout=1.0, create_if_missing=False),
        )
        builder.settle(rounds=10)
        assert not interface.ready

    def test_both_sides_creating_converges_to_two_attachments(self, lan):
        builder = lan
        config = TPSConfig(search_timeout=2.0)
        a = _interface(builder.peer_named("peer-0"), config=config)
        b = _interface(builder.peer_named("peer-1"), config=config)
        builder.settle(rounds=16)
        # Both created their own advertisement and then discovered the other's
        # (functionality (2): managing multiple advertisements at once).
        assert a.attachment_count == 2
        assert b.attachment_count == 2


class TestPublishSubscribe:
    def test_end_to_end_delivery(self, lan):
        builder = lan
        publisher, subs, collected = _pub_sub(builder)
        offer = SkiRental("XTremShop", 14.0, "Salomon", 100.0)
        receipt = publisher.publish(offer)
        builder.settle(rounds=6)
        assert receipt.pipes == 1
        assert receipt.cpu_time > 0
        assert len(collected[0]) == 1
        delivered = collected[0][0]
        assert isinstance(delivered, SkiRental)
        assert delivered == offer
        assert publisher.objects_sent() == [offer]
        assert subs[0].objects_received() == [offer]

    def test_multiple_subscribers_all_receive(self, lan):
        builder = lan
        publisher, _subs, collected = _pub_sub(builder, subscribers=3)
        publisher.publish(SkiRental("s", 10.0, "b", 1))
        builder.settle(rounds=6)
        assert all(len(inbox) == 1 for inbox in collected)

    def test_events_preserve_order(self, lan):
        builder = lan
        publisher, _subs, collected = _pub_sub(builder)
        offers = [SkiRental("s", float(i), "b", 1) for i in range(5)]
        for offer in offers:
            receipt = publisher.publish(offer)
            builder.simulator.run_until(
                max(builder.simulator.now, receipt.completion_time)
            )
        builder.settle(rounds=6)
        assert collected[0] == offers

    def test_type_mismatch_rejected_at_publish(self, lan):
        builder = lan
        publisher, _subs, _collected = _pub_sub(builder)
        with pytest.raises(TypeMismatchError):
            publisher.publish(SnowboardRental("s", 10.0, "b", 1))

    def test_subtype_delivery_and_filtering(self, lan):
        """Figure 7: SkiRental subscribers get premium offers, premium subscribers don't get plain ones."""
        builder = lan
        publisher, subs, collected = _pub_sub(builder, sub_type=PremiumSkiRental)
        plain = SkiRental("s", 10.0, "b", 1)
        premium = PremiumSkiRental("s", 99.0, "b", 7, extras=("helmet",))
        for offer in (plain, premium):
            receipt = publisher.publish(offer)
            builder.simulator.run_until(
                max(builder.simulator.now, receipt.completion_time)
            )
        builder.settle(rounds=6)
        # The PremiumSkiRental subscriber only sees the premium offer...
        assert collected[0] == [premium]
        # ...and the filtering is recorded, not treated as an error.
        sub_peer = subs[0].peer
        assert sub_peer.metrics.counters().get("tps_filtered_by_type", 0) == 1

    def test_content_criteria_filtering(self, lan):
        builder = lan
        pub_peer = builder.peer_named("peer-0")
        publisher = _interface(pub_peer, config=TPSConfig(search_timeout=2.0))
        builder.settle(rounds=8)
        sub_peer = builder.peer_named("peer-1")
        cheap_only = _interface(
            sub_peer,
            criteria=Criteria(event_predicate=lambda offer: offer.price <= 50),
            config=TPSConfig(search_timeout=6.0, create_if_missing=False),
        )
        inbox = []
        cheap_only.subscribe(inbox.append)
        builder.settle(rounds=12)
        for price in (30.0, 80.0, 45.0):
            receipt = publisher.publish(SkiRental("s", price, "b", 1))
            builder.simulator.run_until(max(builder.simulator.now, receipt.completion_time))
        builder.settle(rounds=6)
        assert [offer.price for offer in inbox] == [30.0, 45.0]

    def test_callback_exception_routed_to_handler(self, lan):
        builder = lan
        publisher, subs, _collected = _pub_sub(builder)
        errors = CollectingExceptionHandler()

        def broken(offer):
            raise ValueError("cannot handle this offer")

        subs[0].subscribe(broken, errors)
        receipt = publisher.publish(SkiRental("s", 10.0, "b", 1))
        builder.settle(rounds=6)
        assert len(errors.errors) == 1
        # The well-behaved collector callback still received the event.
        assert len(subs[0].objects_received()) == 1

    def test_unsubscribe_stops_delivery(self, lan):
        builder = lan
        publisher, subs, collected = _pub_sub(builder)
        publisher.publish(SkiRental("s", 1.0, "b", 1))
        builder.settle(rounds=6)
        subs[0].unsubscribe()
        publisher.publish(SkiRental("s", 2.0, "b", 1))
        builder.settle(rounds=6)
        assert len(collected[0]) == 1

    def test_duplicate_filtering_across_multiple_attachments(self, lan):
        builder = lan
        config = TPSConfig(search_timeout=2.0)
        publisher = _interface(builder.peer_named("peer-0"), config=config)
        subscriber = _interface(builder.peer_named("peer-1"), config=config)
        inbox = []
        subscriber.subscribe(inbox.append)
        builder.settle(rounds=16)
        # Both sides created advertisements, so the publisher publishes on two
        # pipes; the subscriber must still deliver each event exactly once.
        assert publisher.attachment_count == 2
        receipt = publisher.publish(SkiRental("s", 1.0, "b", 1))
        assert receipt.pipes == 2
        builder.settle(rounds=8)
        assert len(inbox) == 1
        assert (
            subscriber.peer.metrics.counters().get("tps_duplicates_filtered", 0) >= 1
        )

    def test_invocation_cost_includes_layer_overheads(self, lan):
        builder = lan
        publisher, _subs, _collected = _pub_sub(builder)
        cost_model = publisher.peer.cost_model
        receipt = publisher.publish(SkiRental("s", 1.0, "b", 1))
        assert receipt.cpu_time >= cost_model.app_layer_send + cost_model.tps_layer_send

    def test_charge_layer_costs_disabled(self, lan):
        builder = lan
        pub_peer = builder.peer_named("peer-2")
        interface = _interface(
            pub_peer, config=TPSConfig(search_timeout=2.0, charge_layer_costs=False)
        )
        builder.settle(rounds=6)
        assert interface.send_overhead == 0.0
        assert interface.receive_overhead == 0.0

    def test_close_stops_everything(self, lan):
        builder = lan
        publisher, subs, collected = _pub_sub(builder)
        subs[0].close()
        publisher.publish(SkiRental("s", 3.0, "b", 1))
        builder.settle(rounds=6)
        assert collected[0] == []

    def test_message_padding_config(self, lan):
        builder = lan
        publisher, _subs, _collected = _pub_sub(builder)
        publisher.config.message_padding = 1910
        receipt = publisher.publish(SkiRental("s", 1.0, "b", 1))
        # Padding shows up in the serialisation cost accounted by the wire.
        assert receipt.cpu_time > 1910 * publisher.peer.cost_model.per_byte


class TestThreadAffinity:
    """The engine is single-threaded by design (it mutates the simulated
    network's lock-free event loop); cross-thread use must raise a clear
    PSException instead of silently corrupting network state."""

    def _cross_thread(self, fn):
        """Run ``fn`` on a fresh thread; return the exception it raised."""
        import threading

        caught = []

        def run():
            try:
                fn()
            except BaseException as error:  # noqa: BLE001 - collected for assert
                caught.append(error)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        return caught[0] if caught else None

    def test_cross_thread_publish_raises_psexception(self, lan):
        from repro.core.exceptions import PSException

        publisher, subs, collected = _pub_sub(lan)
        error = self._cross_thread(
            lambda: publisher.publish(SkiRental("s", 1.0, "b", 1))
        )
        assert isinstance(error, PSException)
        assert "single-threaded" in str(error)
        # Nothing was sent, and the owning thread keeps working normally.
        assert publisher.objects_sent() == []
        receipt = publisher.publish(SkiRental("s", 2.0, "b", 1))
        lan.simulator.run_until(max(lan.simulator.now, receipt.completion_time))
        lan.settle(rounds=8)
        assert [e.price for e in collected[0]] == [2.0]

    def test_cross_thread_subscribe_and_unsubscribe_raise(self, lan):
        from repro.core.exceptions import PSException

        publisher, (subscriber,), _collected = _pub_sub(lan)
        error = self._cross_thread(lambda: subscriber.subscribe(lambda event: None))
        assert isinstance(error, PSException)
        assert "single-threaded" in str(error)
        error = self._cross_thread(lambda: subscriber.unsubscribe())
        assert isinstance(error, PSException)

    def test_cross_thread_handle_cancel_raises(self, lan):
        from repro.core.exceptions import PSException

        _publisher, (subscriber,), _collected = _pub_sub(lan)
        resident = len(subscriber.subscriber_manager)
        callback = lambda event: None  # noqa: E731 - needs identity for unsubscribe
        handle = subscriber.subscribe(callback)
        error = self._cross_thread(handle.cancel)
        assert isinstance(error, PSException)
        # The failed cross-thread cancel burned the handle's one-shot flag;
        # the subscription itself is still registered and removable from the
        # owning thread via the Figure 8 surface.
        assert len(subscriber.subscriber_manager) == resident + 1
        assert subscriber.unsubscribe(callback) == 1

    def test_history_queries_allowed_from_any_thread(self, lan):
        publisher, _subs, _collected = _pub_sub(lan)
        results = []
        error = self._cross_thread(
            lambda: results.append(
                (publisher.objects_sent(), publisher.objects_received())
            )
        )
        assert error is None
        assert results == [([], [])]
