"""repro.analysis: the AST lint engine that machine-checks the locking model.

The concurrency conventions this repo runs on -- locks held only via
``with``, no user-code call-outs under a lock, immutable dispatch snapshots,
simclock-only time on simulated paths -- were previously enforced by review
alone.  This package turns them into executable rules:

* :mod:`repro.analysis.engine` -- file walker + per-rule dispatch,
* :mod:`repro.analysis.registry` -- the rule registry (mirrors
  :mod:`repro.core.bindings`),
* :mod:`repro.analysis.rules` -- the built-in pack RL001..RL005 and the
  declarative per-package :data:`~repro.analysis.rules.DEFAULT_PROFILE`,
* :mod:`repro.analysis.suppress` -- ``# repro-lint: disable=...`` pragmas,
* :mod:`repro.analysis.baseline` -- the committed grandfather file,
* :mod:`repro.analysis.cli` -- ``python -m repro lint``.

The invariants themselves are documented in ``docs/CONCURRENCY.md``; the
tier-1 gate test (``tests/test_lint_gate.py``) keeps the tree clean.
"""

from repro.analysis.baseline import BASELINE_SCHEMA, Baseline, BaselineEntry
from repro.analysis.engine import LintEngine, RuleScope, collect_files, module_name
from repro.analysis.findings import (
    Finding,
    LintRun,
    PARSE_ERROR_RULE,
    SCHEMA,
    build_document,
    count_by_rule,
    format_report,
    validate_document,
)
from repro.analysis.registry import (
    LintConfigError,
    LintContext,
    LintRule,
    get_rule,
    register_rule,
    registered_rules,
    rule_titles,
    unregister_rule,
)
from repro.analysis.rules import DEFAULT_PROFILE

__all__ = [
    "BASELINE_SCHEMA",
    "Baseline",
    "BaselineEntry",
    "DEFAULT_PROFILE",
    "Finding",
    "LintConfigError",
    "LintContext",
    "LintEngine",
    "LintRule",
    "LintRun",
    "PARSE_ERROR_RULE",
    "RuleScope",
    "SCHEMA",
    "build_document",
    "collect_files",
    "count_by_rule",
    "format_report",
    "get_rule",
    "module_name",
    "register_rule",
    "registered_rules",
    "rule_titles",
    "unregister_rule",
    "validate_document",
]
