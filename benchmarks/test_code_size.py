"""Section 4.4 -- programming effort (experiment E4).

The paper reports that writing the ski-rental application directly on JXTA
costs about 5000 more lines than writing it on TPS when the full API's
functionality is re-created, and at least ~900 lines for a minimal variant.
Absolute counts are Java- and codebase-specific; the claim structure this
benchmark checks is:

* the SR-JXTA application is several times larger than the SR-TPS one;
* once the reusable TPS layer is counted (the code a JXTA programmer would
  have to write to get the same functionality), the gap grows to thousands of
  lines.
"""

from __future__ import annotations

from repro.bench.code_size import measure_code_size


def test_code_size_comparison(once):
    """Count the repository's own application and library code sizes."""
    report = once(measure_code_size)

    # The direct-JXTA application is substantially larger than the TPS one.
    assert report.tps_application > 0
    assert report.jxta_application > 2 * report.tps_application
    # Minimal saving: at least a couple hundred lines for this one application
    # (the paper's "at least 900" counts a richer Java application).
    assert report.minimal_saving >= 150
    # Full saving (including the reusable TPS layer a JXTA programmer would
    # otherwise write and maintain): an order of magnitude more than the
    # application itself, thousands of lines in the paper's Java.
    assert report.full_saving >= 1000
    assert report.full_saving >= 10 * report.tps_application
    # The wire-only baseline is the smallest of the three applications.
    assert report.wire_application < report.jxta_application
