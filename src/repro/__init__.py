"""Reproduction of "OS Support for P2P Programming: a Case for TPS" (ICDCS 2002).

This package provides a full, from-scratch Python reproduction of the system
described in the paper by Baehni, Eugster and Guerraoui:

* :mod:`repro.net` -- a discrete-event simulated wide-area network substrate
  (nodes, links, transports, firewalls, metrics) standing in for the paper's
  FastEthernet testbed of Sun Ultra 10 machines.
* :mod:`repro.serialization` -- XML and binary object codecs used for
  advertisements and application events.
* :mod:`repro.jxta` -- a JXTA-like peer-to-peer substrate: IDs, peers, peer
  groups, pipes, advertisements, messages, the six JXTA protocols
  (PDP, PRP, PIP, PMP, PBP, ERP) and the many-to-many WIRE service.
* :mod:`repro.core` -- the paper's contribution: a Type-based
  Publish/Subscribe (TPS) layer built on top of the JXTA substrate.
* :mod:`repro.apps` -- the ski-rental testbed application written three ways
  (SR-TPS, SR-JXTA, raw JXTA-WIRE), as in the paper's Sections 4 and 5.
* :mod:`repro.bench` -- the benchmark harness that regenerates the paper's
  Figures 18, 19 and 20 and the Section 4.4 programming-effort comparison.

Quickstart
----------

>>> from repro import tps_network
>>> from repro.core import TPSEngine
>>> class Greeting:
...     def __init__(self, text):
...         self.text = text
>>> net = tps_network(peers=2)
>>> pub = TPSEngine(Greeting, peer=net.peer(0))
>>> sub = TPSEngine(Greeting, peer=net.peer(1))
>>> pub_if = pub.new_interface("JXTA")
>>> sub_if = sub.new_interface("JXTA")
>>> received = []
>>> sub_if.subscribe(lambda g: received.append(g.text))
>>> net.settle()
>>> pub_if.publish(Greeting("hello, peers"))
>>> net.settle()
>>> received
['hello, peers']
"""

from __future__ import annotations

from repro._version import __version__
from repro.testbed import TPSNetwork, tps_network

__all__ = ["__version__", "TPSNetwork", "tps_network"]
