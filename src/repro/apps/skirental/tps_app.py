"""SR-TPS: the ski-rental application written against the TPS API.

This is the paper's Section 4.3: a handful of lines per phase.

Type definition phase
    :class:`~repro.apps.skirental.types.SkiRental` (already defined).

Initialisation phase
    ``TPSEngine(SkiRental, peer=...)`` then ``new_interface("JXTA")``.

Subscription phase
    a callback printing (or collecting) offers plus an exception handler.

Publication phase
    ``tps_interface.publish(SkiRental(...))``.

The publisher and subscriber classes below wrap those lines so the benchmark
harness, the examples and the tests can drive SR-TPS, SR-JXTA and JXTA-WIRE
through one uniform surface (``publish_offer`` / ``received_offers``).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.apps.skirental.types import SkiRental
from repro.core import (
    CollectingExceptionHandler,
    Criteria,
    PublishReceipt,
    TPSCallBackInterface,
    TPSConfig,
    TPSEngine,
)
from repro.core.interface import TPSInterface
from repro.jxta.peer import Peer


class MyCBInterface(TPSCallBackInterface[SkiRental]):
    """The paper's example callback: print each offer to the console.

    An optional sink lets tests and examples capture the printed lines.
    """

    def __init__(self, sink: Optional[Callable[[str], None]] = None) -> None:
        self._sink = sink if sink is not None else print

    def handle(self, ski_rental: SkiRental) -> None:
        self._sink(f"Skis that could be rented: {ski_rental}")


class SkiRentalTPSPublisher:
    """The ski-rental shop (publisher), SR-TPS flavour."""

    def __init__(
        self,
        peer: Peer,
        *,
        criteria: Optional[Criteria] = None,
        config: Optional[TPSConfig] = None,
        event_type: type = SkiRental,
    ) -> None:
        self.peer = peer
        self.engine: TPSEngine = TPSEngine(event_type, peer=peer, config=config)
        self.tps_interface: TPSInterface = self.engine.new_interface("JXTA", criteria)

    @property
    def ready(self) -> bool:
        """Whether the initialisation phase has completed (an advertisement is attached)."""
        return getattr(self.tps_interface, "ready", True)

    def publish_offer(self, offer: SkiRental) -> PublishReceipt:
        """Publish one rental offer (the paper's publication phase)."""
        return self.tps_interface.publish(offer)

    def offers_sent(self) -> List[SkiRental]:
        """Every offer published so far."""
        return self.tps_interface.objects_sent()

    def close(self) -> None:
        """Shut the underlying TPS interface down."""
        close = getattr(self.tps_interface, "close", None)
        if callable(close):
            close()


class SkiRentalTPSSubscriber:
    """The ski-rental shopper (subscriber), SR-TPS flavour."""

    def __init__(
        self,
        peer: Peer,
        *,
        criteria: Optional[Criteria] = None,
        config: Optional[TPSConfig] = None,
        event_type: type = SkiRental,
        console: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.peer = peer
        self.engine: TPSEngine = TPSEngine(event_type, peer=peer, config=config)
        self.tps_interface: TPSInterface = self.engine.new_interface("JXTA", criteria)
        self.offers: List[SkiRental] = []
        self.console_lines: List[str] = []
        self.exception_handler = CollectingExceptionHandler()
        callbacks = [self._collect]
        if console is not None:
            callbacks.append(MyCBInterface(console))
        else:
            callbacks.append(MyCBInterface(self.console_lines.append))
        # The list form of subscribe mirrors the paper's second overload:
        # one callback collects offers for later comparison, the other renders
        # them for the "GUI"/console.
        self.tps_interface.subscribe(callbacks, [self.exception_handler, self.exception_handler])

    def _collect(self, offer: SkiRental) -> None:
        self.offers.append(offer)

    @property
    def ready(self) -> bool:
        """Whether the initialisation phase has completed."""
        return getattr(self.tps_interface, "ready", True)

    def received_offers(self) -> List[SkiRental]:
        """Every offer received so far (in delivery order)."""
        return list(self.offers)

    def received_count(self) -> int:
        """Number of offers received so far."""
        return len(self.offers)

    def best_offer(self) -> Optional[SkiRental]:
        """The cheapest offer per day received so far (the shopper's goal)."""
        if not self.offers:
            return None
        return min(self.offers, key=lambda offer: offer.price_per_day)

    def unsubscribe(self) -> None:
        """Drop every subscription ("no event is received anymore")."""
        self.tps_interface.unsubscribe()

    def close(self) -> None:
        """Shut the underlying TPS interface down."""
        close = getattr(self.tps_interface, "close", None)
        if callable(close):
            close()


__all__ = ["MyCBInterface", "SkiRentalTPSPublisher", "SkiRentalTPSSubscriber"]
