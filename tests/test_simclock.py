"""Tests for the discrete-event simulator (repro.net.simclock)."""

from __future__ import annotations

import pytest

from repro.net.simclock import SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.clock.now == 0.0


def test_schedule_and_run_fires_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("late"))
    sim.schedule(1.0, lambda: fired.append("early"))
    sim.schedule(3.0, lambda: fired.append("latest"))
    sim.run()
    assert fired == ["early", "late", "latest"]
    assert sim.now == 3.0


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for index in range(5):
        sim.schedule(1.0, lambda i=index: fired.append(i))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("cancelled"))
    sim.schedule(2.0, lambda: fired.append("kept"))
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == ["kept"]


def test_cancel_twice_is_harmless():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.run() == 0


def test_run_until_stops_at_requested_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    count = sim.run_until(2.0)
    assert count == 1
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_run_until_backwards_rejected():
    sim = Simulator()
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.run_until(1.0)


def test_run_for_advances_relative_to_now():
    sim = Simulator()
    sim.run_until(10.0)
    fired = []
    sim.schedule(3.0, lambda: fired.append(sim.now))
    sim.run_for(5.0)
    assert fired == [13.0]
    assert sim.now == 15.0


def test_run_max_events_bounds_processing():
    sim = Simulator()
    fired = []
    for index in range(10):
        sim.schedule(float(index), lambda i=index: fired.append(i))
    assert sim.run(max_events=3) == 3
    assert fired == [0, 1, 2]


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("chained"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "chained"]
    assert sim.now == 2.0


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.run_until(4.0)
    sim.call_soon(lambda: times.append(sim.now))
    sim.run()
    assert times == [4.0]


def test_periodic_task_fires_repeatedly_and_stops():
    sim = Simulator()
    fired = []
    task = sim.schedule_periodic(1.0, lambda: fired.append(sim.now))
    sim.run_until(3.5)
    assert fired == [1.0, 2.0, 3.0]
    task.stop()
    sim.run_until(10.0)
    assert fired == [1.0, 2.0, 3.0]
    assert task.stopped
    assert task.fire_count == 3


def test_periodic_task_requires_positive_interval():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_periodic(0.0, lambda: None)


def test_periodic_task_cannot_restart_after_stop():
    sim = Simulator()
    task = sim.schedule_periodic(1.0, lambda: None)
    task.stop()
    with pytest.raises(SimulationError):
        task.start()


def test_periodic_task_with_jitter_clamps_delay():
    sim = Simulator()
    fired = []
    sim.schedule_periodic(1.0, lambda: fired.append(sim.now), jitter=lambda: -5.0)
    sim.run_until(0.5)
    # Jitter would make the delay negative; it is clamped to 1 % of the
    # interval, so the task keeps firing without wedging the simulation.
    assert 48 <= len(fired) <= 50  # ~every 0.01 s, modulo float accumulation
    assert all(0.0 < t <= 0.5 for t in fired)


def test_periodic_task_with_positive_jitter_spreads_firings():
    sim = Simulator()
    fired = []
    sim.schedule_periodic(1.0, lambda: fired.append(sim.now), jitter=lambda: 0.5)
    sim.run_until(4.0)
    assert fired == pytest.approx([1.5, 3.0])


def test_drain_returns_when_queue_is_empty():
    sim = Simulator()
    fired = []
    sim.schedule(0.5, lambda: fired.append(1))
    sim.drain(rounds=4, quantum=1.0)
    assert fired == [1]


def test_drain_is_bounded_with_periodic_tasks():
    sim = Simulator()
    counter = []
    sim.schedule_periodic(1.0, lambda: counter.append(1))
    sim.drain(rounds=5, quantum=1.0)
    # The periodic task never empties the queue; drain must still terminate
    # after its round budget.
    assert sim.now == pytest.approx(5.0)


def test_processed_counter_tracks_fired_events():
    sim = Simulator()
    for index in range(4):
        sim.schedule(float(index), lambda: None)
    sim.run()
    assert sim.processed == 4
    assert sim.pending == 0
