"""Figure 19 -- publisher throughput.

Paper setting: 100 published events, grouped in 10 epochs; the number of
events the publisher delivers per second is plotted for the three variants
with one and with four subscribers.

Shape to reproduce:

* JXTA-WIRE achieves roughly 9-11 events/second with one subscriber;
* SR-JXTA and SR-TPS are about two events/second slower and nearly equal;
* with four subscribers throughput drops by roughly a factor of 2-3 and the
  differences between the layers become insignificant (a few tenths of an
  event per second).
"""

from __future__ import annotations

import pytest

from repro.bench.figures import run_publisher_throughput
from repro.bench.scenario import JXTA_WIRE, SR_JXTA, SR_TPS, VARIANTS

EVENTS = 100
EPOCHS = 10


@pytest.mark.parametrize("subscribers", [1, 4])
@pytest.mark.parametrize("variant", VARIANTS)
def test_publisher_throughput(once, variant, subscribers):
    """One curve of Figure 19: 100 events in 10 epochs for one configuration."""
    series = once(
        run_publisher_throughput,
        variant,
        subscribers=subscribers,
        events=EVENTS,
        epochs=EPOCHS,
    )
    assert len(series.epoch_rates) == EPOCHS
    assert series.mean_rate > 0


def test_figure19_shape(once):
    """The relative ordering and gaps of Figure 19 hold."""

    def run_all():
        results = {}
        for subscribers in (1, 4):
            for variant in VARIANTS:
                results[(variant, subscribers)] = run_publisher_throughput(
                    variant, subscribers=subscribers, events=EVENTS, epochs=EPOCHS
                )
        return results

    results = once(run_all)

    wire_1 = results[(JXTA_WIRE, 1)].mean_rate
    jxta_1 = results[(SR_JXTA, 1)].mean_rate
    tps_1 = results[(SR_TPS, 1)].mean_rate
    wire_4 = results[(JXTA_WIRE, 4)].mean_rate
    jxta_4 = results[(SR_JXTA, 4)].mean_rate
    tps_4 = results[(SR_TPS, 4)].mean_rate

    # One subscriber: the wire alone is the fastest, by roughly 1-3 events/s.
    assert wire_1 > jxta_1 > 0
    assert wire_1 > tps_1 > 0
    assert 0.5 < (wire_1 - tps_1) < 3.5
    assert 7.0 < wire_1 < 13.0  # the paper's ballpark (~9-11 events/s)
    # SR-TPS and SR-JXTA are very close.
    assert abs(tps_1 - jxta_1) < 0.5
    # Four subscribers: overall slowdown, and the layers converge.
    assert wire_4 < wire_1 / 1.8
    assert abs(wire_4 - jxta_4) < 1.0
    assert abs(wire_4 - tps_4) < 1.0
