#!/usr/bin/env python3
"""Quickstart: publish and subscribe to a typed event across two peers.

This is the smallest complete TPS program, following the paper's four phases
(Figure 14):

1. *Type definition*  -- define a plain Python class for the event.
2. *Initialisation*   -- create a ``TPSEngine`` for the type on each peer and
   ask it for a ``TPSInterface`` bound to the (simulated) JXTA substrate.
3. *Subscription*     -- register a callback (and an exception handler).
4. *Publication*      -- publish instances of the type.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import tps_network
from repro.core import PrintingExceptionHandler, TPSEngine


# --------------------------------------------------------------------- phase 1
class Greeting:
    """The event type: any plain Python class works."""

    def __init__(self, sender: str, text: str) -> None:
        self.sender = sender
        self.text = text

    def __str__(self) -> str:
        return f"{self.sender} says: {self.text}"


def main() -> None:
    # A simulated LAN with a rendez-vous peer and two ordinary peers.
    net = tps_network(peers=2, seed=42)
    publisher_peer, subscriber_peer = net.peer(0), net.peer(1)

    # ----------------------------------------------------------------- phase 2
    publisher_engine = TPSEngine(Greeting, peer=publisher_peer)
    subscriber_engine = TPSEngine(Greeting, peer=subscriber_peer)
    publish_interface = publisher_engine.new_interface("JXTA")
    subscribe_interface = subscriber_engine.new_interface("JXTA")

    # ----------------------------------------------------------------- phase 3
    def on_greeting(greeting: Greeting) -> None:
        print(f"[subscriber] received: {greeting}")

    subscribe_interface.subscribe(on_greeting, PrintingExceptionHandler())

    # Let discovery, advertisement creation and pipe binding settle.
    net.settle()

    # ----------------------------------------------------------------- phase 4
    for index in range(3):
        receipt = publish_interface.publish(
            Greeting("peer-0", f"hello from virtual time {net.now:.1f}s (#{index})")
        )
        print(f"[publisher ] sent #{index} (invocation time {receipt.cpu_time * 1000:.0f} ms)")
        net.settle(rounds=4)

    print()
    print(f"objects sent     : {len(publish_interface.objects_sent())}")
    print(f"objects received : {len(subscribe_interface.objects_received())}")


if __name__ == "__main__":
    main()
